//! The chaos suite: fault injection and graceful degradation.
//!
//! Three families of guarantees:
//!
//! 1. **Golden neutrality** — arming the chaos machinery with an empty
//!    fault spec reproduces the pristine goldens of `tests/golden.rs`
//!    bit for bit: the injection points are strictly gated and add
//!    exact-zero durations on the untaken branches.
//! 2. **Per-scenario bounds** — each fault family's scenario holds its
//!    documented finish-rate floor (see EXPERIMENTS.md) and actually
//!    exercises its degradation path (sheds, storms, retries,
//!    starvation), with no panic or invariant trip; CI runs this file
//!    under `strict-invariants`.
//! 3. **Chaos determinism** — a faulted run is still a deterministic
//!    function of the seed.

use adainf::core::AdaInfConfig;
use adainf::driftgen::FaultSpec;
use adainf::harness::chaos::{report, run_scenario, run_suite, SCENARIOS};
use adainf::harness::sim::{run, ChaosConfig, Method, RunConfig};
use adainf::simcore::SimDuration;

fn config(method: Method, seed: u64) -> RunConfig {
    RunConfig {
        method,
        seed,
        num_apps: 3,
        duration: SimDuration::from_secs(60),
        ..RunConfig::default()
    }
}

/// Armed-but-empty chaos must reproduce the pristine goldens of
/// `tests/golden.rs` bit for bit (`chaos: Some` with an empty spec
/// builds no runtime; the injection points never fire).
#[test]
fn empty_fault_spec_reproduces_pristine_goldens() {
    let goldens = [
        (
            11u64,
            1725130u64,
            0.9030360621563216f64,
            0.9992656108706952f64,
        ),
        (23, 1518908, 0.9093875812740043, 0.9998909458453026),
        (47, 1392262, 0.9090062030500701, 0.9991235715669184),
    ];
    for &(seed, requests, accuracy, finish) in &goldens {
        let mut cfg = config(Method::AdaInf(AdaInfConfig::default()), seed);
        cfg.chaos = Some(ChaosConfig::scenario(FaultSpec::none(seed)));
        let m = run(cfg);
        let s = m.summary();
        assert_eq!(m.total_requests, requests, "seed {seed}: total_requests");
        assert_eq!(
            s.mean_accuracy.to_bits(),
            accuracy.to_bits(),
            "seed {seed}: mean_accuracy {} != golden {accuracy}",
            s.mean_accuracy
        );
        assert_eq!(
            s.mean_finish_rate.to_bits(),
            finish.to_bits(),
            "seed {seed}: mean_finish_rate {} != golden {finish}",
            s.mean_finish_rate
        );
        assert_eq!(m.fault_sessions, 0);
        assert_eq!(m.shed_requests, 0);
    }
}

/// Every scenario holds its documented finish floor, and no injection
/// point panics or trips a `strict-invariants` assert.
#[test]
fn scenarios_hold_their_documented_floors() {
    let outcomes = run_suite(11);
    let table = report(&outcomes);
    for o in &outcomes {
        assert!(
            o.passed,
            "{} violated its bound: finish {} < floor {}\n{table}",
            o.name, o.finish_rate, o.finish_floor
        );
    }
}

/// Request bursts beyond profiled capacity engage admission control:
/// requests are shed up front instead of collapsing the finish rate.
#[test]
fn rate_burst_sheds_instead_of_collapsing() {
    let o = run_scenario(&SCENARIOS[1], 11);
    assert_eq!(o.name, "rate-burst");
    assert!(o.fault_sessions > 0, "no burst window fired");
    assert!(o.shed_requests > 0, "admission control never shed");
    assert!(o.passed, "finish {} < {}", o.finish_rate, o.finish_floor);
}

/// Memory-pressure spikes force eviction storms; parameter reloads are
/// retried a bounded number of times and give up into degraded serving.
#[test]
fn memory_pressure_storms_and_bounded_reloads() {
    let o = run_scenario(&SCENARIOS[2], 11);
    assert_eq!(o.name, "memory-pressure");
    assert!(o.eviction_storms >= 1, "no pressure window opened");
    assert!(o.storm_evictions > 0, "storm evicted nothing");
    assert!(o.passed, "finish {} < {}", o.finish_rate, o.finish_floor);
}

/// Pool starvation destroys retraining samples mid-period; serving
/// continues and the finish rate barely moves (retraining is the only
/// casualty).
#[test]
fn pool_starvation_destroys_samples_not_serving() {
    let o = run_scenario(&SCENARIOS[3], 11);
    assert_eq!(o.name, "pool-starvation");
    assert!(o.starved_samples > 0, "no samples starved");
    assert!(o.passed, "finish {} < {}", o.finish_rate, o.finish_floor);
}

/// Transient device stalls inflate kernel latency; degradation (shed +
/// inference-only fallback) keeps the run above its floor.
#[test]
fn device_stall_degrades_gracefully() {
    let o = run_scenario(&SCENARIOS[4], 11);
    assert_eq!(o.name, "device-stall");
    assert!(o.fault_sessions > 0, "no stall window fired");
    assert!(o.passed, "finish {} < {}", o.finish_rate, o.finish_floor);
}

/// Predicted-latency admission through device-stall windows: the stall
/// is a regime change the online model must track. The scenario holds
/// its documented floor (admission on a temporarily mis-calibrated
/// model degrades instead of collapsing), calibration actually ran, and
/// the forgetting factor pulls the error back down — last-quartile
/// relative error beats the first quartile's warm-up-and-stall error.
#[test]
fn device_stall_predicted_reconverges() {
    let o = run_scenario(&SCENARIOS[5], 11);
    assert_eq!(o.name, "device-stall-predicted");
    assert!(o.fault_sessions > 0, "no stall window fired");
    assert!(o.passed, "finish {} < {}", o.finish_rate, o.finish_floor);
    assert!(
        o.predicted_latency_mae_us > 0.0 && o.predicted_latency_mae_us.is_finite(),
        "calibration never ran: MAE {}",
        o.predicted_latency_mae_us
    );
    assert!(
        (0.0..=1.0).contains(&o.headroom_violation_rate),
        "violation rate {}",
        o.headroom_violation_rate
    );
    assert!(
        o.predicted_rel_err_last_q < o.predicted_rel_err_first_q,
        "no re-convergence: first-quartile rel err {} ≤ last-quartile {}",
        o.predicted_rel_err_first_q,
        o.predicted_rel_err_last_q
    );
}

/// The parallel drift-artifact build stays invisible with chaos armed:
/// fault injection perturbs pools, model versions and period timing, and
/// the fan-out must still reproduce the sequential build bit for bit.
#[test]
fn parallel_drift_build_matches_sequential_under_chaos() {
    let make = |drift_parallel_build| {
        let mut cfg = config(
            Method::AdaInf(AdaInfConfig {
                drift_parallel_build,
                ..AdaInfConfig::default()
            }),
            11,
        );
        cfg.chaos = Some(ChaosConfig::scenario(FaultSpec::chaos(11)));
        run(cfg)
    };
    let (p, s) = (make(true), make(false));
    assert_eq!(p.total_requests, s.total_requests);
    assert_eq!(p.shed_requests, s.shed_requests);
    assert_eq!(p.fault_sessions, s.fault_sessions);
    assert_eq!(p.storm_evictions, s.storm_evictions);
    assert_eq!(
        p.summary().mean_accuracy.to_bits(),
        s.summary().mean_accuracy.to_bits()
    );
    assert_eq!(
        p.summary().mean_finish_rate.to_bits(),
        s.summary().mean_finish_rate.to_bits()
    );
}

/// A faulted run is bit-for-bit deterministic in its seed.
#[test]
fn chaos_runs_are_deterministic() {
    let make = || {
        let mut cfg = config(Method::AdaInf(AdaInfConfig::default()), 11);
        cfg.chaos = Some(ChaosConfig::scenario(FaultSpec::chaos(11)));
        run(cfg)
    };
    let (a, b) = (make(), make());
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.shed_requests, b.shed_requests);
    assert_eq!(a.fault_sessions, b.fault_sessions);
    assert_eq!(a.storm_evictions, b.storm_evictions);
    assert_eq!(
        a.summary().mean_accuracy.to_bits(),
        b.summary().mean_accuracy.to_bits()
    );
    assert_eq!(
        a.summary().mean_finish_rate.to_bits(),
        b.summary().mean_finish_rate.to_bits()
    );
}
