//! Golden determinism tests for the hot-path optimization work.
//!
//! The optimized engine (blocked GEMM kernels, scheduler decision
//! cache, zero-alloc session loop) must be *behavior-preserving*: for a
//! fixed seed it has to reproduce the seed engine's `RunMetrics` bit
//! for bit. The constants below were captured from the pre-optimization
//! engine (`adainf-sim --apps 3 --duration 60 --json`) at three seeds
//! per method; floats are the shortest round-trip renderings, so the
//! literals parse back to the exact bits the seed engine produced.
//!
//! The simlint determinism pass (HashMap→BTreeMap conversions, the
//! walltime boundary, unwrap annotations — see DESIGN.md § Determinism
//! invariants) left every literal below untouched: those changes are
//! behavior-preserving, and these tests also pass with the
//! `strict-invariants` runtime checks armed
//! (`cargo test --features strict-invariants --test golden`).
//!
//! The AdaInf rows were re-baselined **once** for the drift-pipeline
//! overhaul (DESIGN.md § Drift artifact cache & determinism). Two kinds
//! of change fold into the new values: (a) routing PCA randomness
//! through keyed child streams plus the GEMM covariance changed the
//! draw schedule — measured alone, mean accuracy shifted by < 1e-3 on
//! every seed (−0.00061 / +0.00099 / +0.00032); (b) the space-division
//! decision fixes (whole concurrent sessions, centi-GPU allocation
//! grid) perturb each allocation by at most half a grid step. The net
//! mean-accuracy deltas against the seed baselines are
//! −0.00062 / −0.00029 / −0.00052 — still within 1e-3 per seed — with
//! finish rates unchanged to the third decimal. Ekya and Scrooge rows
//! are untouched: neither draws from the rerouted streams nor divides
//! space through [`adainf::core::space`].
//!
//! A second one-time AdaInf re-baseline came with the warm-started PCA
//! fits (DESIGN.md § Drift data path). Cold fits are bit-compatible with
//! the old kernel (the convergence early-exit is armed only for
//! warm-started components), so the only behavioural change is the
//! warm-start chain at period boundaries with stable model versions.
//! Mean-accuracy deltas per seed: +0.000266 / exactly 0 / −0.000463 —
//! within the established 1e-3 parity bound — with total_requests and
//! finish rates bit-unchanged on every seed. Ekya and Scrooge never fit
//! PCA, so their rows are again untouched.

use adainf::core::AdaInfConfig;
use adainf::harness::sim::{run, Method, RunConfig};
use adainf::simcore::SimDuration;

fn config(method: Method, seed: u64) -> RunConfig {
    RunConfig {
        method,
        seed,
        num_apps: 3,
        duration: SimDuration::from_secs(60),
        ..RunConfig::default()
    }
}

/// `(seed, total_requests, mean_accuracy, mean_finish_rate)`.
type Golden = (u64, u64, f64, f64);

fn assert_golden(method: impl Fn() -> Method, golden: &[Golden]) {
    for &(seed, requests, accuracy, finish) in golden {
        let metrics = run(config(method(), seed));
        let summary = metrics.summary();
        assert_eq!(
            metrics.total_requests, requests,
            "{} seed {seed}: total_requests",
            summary.name
        );
        assert_eq!(
            summary.mean_accuracy.to_bits(),
            accuracy.to_bits(),
            "{} seed {seed}: mean_accuracy {} != golden {accuracy}",
            summary.name,
            summary.mean_accuracy
        );
        assert_eq!(
            summary.mean_finish_rate.to_bits(),
            finish.to_bits(),
            "{} seed {seed}: mean_finish_rate {} != golden {finish}",
            summary.name,
            summary.mean_finish_rate
        );
    }
}

#[test]
fn adainf_reproduces_seed_engine() {
    assert_golden(
        || Method::AdaInf(AdaInfConfig::default()),
        &[
            (11, 1725130, 0.9030360621563216, 0.9992656108706952),
            (23, 1518908, 0.9093875812740043, 0.9998909458453026),
            (47, 1392262, 0.9090062030500701, 0.9991235715669184),
        ],
    );
}

#[test]
fn ekya_reproduces_seed_engine() {
    assert_golden(
        || Method::Ekya,
        &[
            (11, 1725130, 0.9137245757227437, 0.8141827074093204),
            (23, 1518908, 0.9202528808347674, 0.9525421569285103),
            (47, 1392262, 0.9285268695040899, 0.9311903241349095),
        ],
    );
}

#[test]
fn scrooge_reproduces_seed_engine() {
    assert_golden(
        || Method::Scrooge,
        &[
            (11, 1725130, 0.9114882759566701, 1.0),
            (23, 1518908, 0.9197024878322877, 1.0),
            (47, 1392262, 0.9278595052706929, 1.0),
        ],
    );
}

/// The parallel drift-artifact build must be invisible in the results:
/// building a period's artifacts through the scoped-thread fan-out vs
/// sequentially on first lookup yields bit-identical metrics. Each build
/// is a pure function of its `(pool generation, model version)` key,
/// warm-start input and root stream, and the prebuild resolves warm
/// inputs before fanning out — so thread scheduling can never reorder
/// observable work.
#[test]
fn parallel_drift_build_does_not_change_decisions() {
    for seed in [11, 23, 47] {
        let parallel = run(config(Method::AdaInf(AdaInfConfig::default()), seed));
        let sequential = run(config(
            Method::AdaInf(AdaInfConfig {
                drift_parallel_build: false,
                ..AdaInfConfig::default()
            }),
            seed,
        ));
        assert_eq!(parallel.total_requests, sequential.total_requests);
        let (p, s) = (parallel.summary(), sequential.summary());
        assert_eq!(
            p.mean_accuracy.to_bits(),
            s.mean_accuracy.to_bits(),
            "seed {seed}: mean_accuracy"
        );
        assert_eq!(
            p.mean_finish_rate.to_bits(),
            s.mean_finish_rate.to_bits(),
            "seed {seed}: mean_finish_rate"
        );
        assert_eq!(
            p.mean_inference_latency_ms.to_bits(),
            s.mean_inference_latency_ms.to_bits(),
            "seed {seed}: mean_inference_latency_ms"
        );
    }
}

/// Predicted-latency admission must be invisible on pristine runs:
/// admission only fires inside fault windows, so turning the predictor
/// on cannot perturb a fault-free run — every AdaInf golden row
/// reproduces bit for bit — while the calibration stream demonstrably
/// ran (each completed job fed the model an observation, and post-warmup
/// forecasts were scored against outcomes).
#[test]
fn predictor_on_reproduces_pristine_goldens() {
    let goldens = [
        (11u64, 1725130u64, 0.9030360621563216f64, 0.9992656108706952f64),
        (23, 1518908, 0.9093875812740043, 0.9998909458453026),
        (47, 1392262, 0.9090062030500701, 0.9991235715669184),
    ];
    for &(seed, requests, accuracy, finish) in &goldens {
        let m = run(config(
            Method::AdaInf(AdaInfConfig {
                predicted_latency: true,
                ..AdaInfConfig::default()
            }),
            seed,
        ));
        let s = m.summary();
        assert_eq!(m.total_requests, requests, "seed {seed}: total_requests");
        assert_eq!(
            s.mean_accuracy.to_bits(),
            accuracy.to_bits(),
            "seed {seed}: mean_accuracy {} != golden {accuracy}",
            s.mean_accuracy
        );
        assert_eq!(
            s.mean_finish_rate.to_bits(),
            finish.to_bits(),
            "seed {seed}: mean_finish_rate {} != golden {finish}",
            s.mean_finish_rate
        );
        assert!(
            m.pred_abs_err_us.count() > 0,
            "seed {seed}: predictor never scored a forecast"
        );
        assert!(
            s.predicted_latency_mae_us > 0.0,
            "seed {seed}: zero MAE is implausible for a learned model"
        );
    }
}

/// The decision cache must be invisible in the results: cache on vs off
/// yields identical metrics (only the hit counters may differ).
#[test]
fn decision_cache_does_not_change_decisions() {
    for seed in [11, 23, 47] {
        let cached = run(config(Method::AdaInf(AdaInfConfig::default()), seed));
        let uncached = run(config(
            Method::AdaInf(AdaInfConfig {
                decision_cache: false,
                ..AdaInfConfig::default()
            }),
            seed,
        ));
        assert!(cached.cache_hits > 0, "seed {seed}: cache never hit");
        assert_eq!(uncached.cache_hits, 0, "seed {seed}: cache ran while off");
        assert_eq!(cached.total_requests, uncached.total_requests);
        let (c, u) = (cached.summary(), uncached.summary());
        assert_eq!(c.mean_accuracy.to_bits(), u.mean_accuracy.to_bits());
        assert_eq!(c.mean_finish_rate.to_bits(), u.mean_finish_rate.to_bits());
        assert_eq!(
            c.mean_inference_latency_ms.to_bits(),
            u.mean_inference_latency_ms.to_bits()
        );
    }
}
