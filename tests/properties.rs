//! Property-based tests (proptest) on the core data structures and
//! invariants across crates.

use adainf::apps::{catalog, AppRuntime};
use adainf::core::drift_cache::{build_artifacts, DetectScratch, DriftCache};
use adainf::core::regression::PowerLawScaler;
use adainf::driftgen::workload::ArrivalConfig;
use adainf::driftgen::{RetrainPool, TaskStream, TaskStreamConfig};
use adainf::gpusim::content::{ContentKey, TaskContext};
use adainf::gpusim::memory::AccessIntent;
use adainf::gpusim::{EvictionPolicyKind, GpuMemory, MemoryConfig};
use adainf::gpusim::{LatencyModel, StructureCost};
use adainf::nn::metrics::{js_divergence, normalize_hist};
use adainf::nn::Matrix;
use adainf::simcore::{Cdf, OnlineStats, Prng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Worst-case latency is monotone in the request count for any
    /// structure, batch and fraction.
    #[test]
    fn worst_case_monotone_in_requests(
        flops in 1.0e6f64..1.0e9,
        act in 1.0e4f64..1.0e7,
        batch_idx in 0usize..7,
        frac in 0.01f64..1.0,
        n in 1u32..200,
    ) {
        let model = LatencyModel::default();
        let cost = StructureCost { flops_per_sample: flops, activation_bytes: act, param_bytes: 1e7 };
        let batch = adainf::gpusim::latency::BATCH_CANDIDATES[batch_idx];
        let a = model.worst_case(&cost, n, batch, frac);
        let b = model.worst_case(&cost, n + 1, batch, frac);
        prop_assert!(b >= a, "n {n}: {a:?} > {b:?}");
    }

    /// More GPU space never hurts at a fixed configuration.
    #[test]
    fn latency_monotone_in_fraction(
        flops in 1.0e6f64..1.0e9,
        batch_idx in 0usize..7,
        lo in 0.01f64..0.5,
        delta in 0.01f64..0.5,
    ) {
        let model = LatencyModel::default();
        let cost = StructureCost { flops_per_sample: flops, activation_bytes: 1e6, param_bytes: 1e7 };
        let batch = adainf::gpusim::latency::BATCH_CANDIDATES[batch_idx];
        let slow = model.per_batch_inference(&cost, batch, lo);
        let fast = model.per_batch_inference(&cost, batch, lo + delta);
        prop_assert!(fast <= slow);
    }

    /// The optimal batch's worst case is no worse than any candidate's.
    #[test]
    fn optimal_batch_is_optimal(
        flops in 1.0e6f64..1.0e9,
        n in 1u32..256,
        frac in 0.02f64..1.0,
    ) {
        let model = LatencyModel::default();
        let cost = StructureCost { flops_per_sample: flops, activation_bytes: 1e6, param_bytes: 1e7 };
        let (_, best) = model.optimal_batch(&cost, n, frac);
        for &b in &adainf::gpusim::latency::BATCH_CANDIDATES {
            prop_assert!(best <= model.worst_case(&cost, n, b, frac));
        }
    }

    /// `samples_within` never overshoots its budget (by more than one
    /// batch's rounding).
    #[test]
    fn samples_within_respects_budget(
        flops in 1.0e6f64..5.0e8,
        batch_idx in 0usize..7,
        frac in 0.02f64..1.0,
        budget_ms in 1.0f64..2000.0,
    ) {
        let model = LatencyModel::default();
        let cost = StructureCost { flops_per_sample: flops, activation_bytes: 1e6, param_bytes: 1e7 };
        let batch = adainf::gpusim::latency::BATCH_CANDIDATES[batch_idx];
        let budget = adainf::simcore::SimDuration::from_millis_f64(budget_ms);
        let n = model.samples_within(&cost, batch, frac, budget);
        if n > 0 {
            let used = model.training_latency(&cost, n, batch, 1, frac);
            prop_assert!(used <= budget + model.per_batch_training(&cost, batch, frac));
        }
    }

    /// Retraining pools hand out each sample exactly once, whatever the
    /// priority permutation and take pattern.
    #[test]
    fn pool_consumption_is_a_partition(
        n in 1usize..120,
        takes in proptest::collection::vec(1usize..40, 1..12),
        seed in 0u64..1000,
    ) {
        let root = Prng::new(seed);
        let mut stream = TaskStream::new(TaskStreamConfig::new("t", 4, seed), &root);
        let mut pool = RetrainPool::new(stream.sample(n));
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Prng::new(seed ^ 0xF00D);
        rng.shuffle(&mut order);
        pool.set_order(&order);
        let mut seen = 0usize;
        for t in takes {
            let batch = pool.take(t);
            seen += batch.len();
        }
        prop_assert!(seen <= n);
        prop_assert_eq!(pool.used(), seen);
        prop_assert_eq!(pool.remaining(), n - seen);
        // Draining the rest never yields more than the pool held.
        let rest = pool.take(usize::MAX);
        prop_assert_eq!(seen + rest.len(), n);
    }

    /// The power-law scaler's inverse is consistent with its forward map.
    #[test]
    fn scaler_inverse_round_trips(
        theta in 0.1f64..2.0,
        latency in 1.0f64..10_000.0,
        target_ratio in 1.0f64..50.0,
    ) {
        let s = PowerLawScaler { theta };
        let target = latency * target_ratio; // reachable with g <= 1
        let g = s.required_fraction(latency, target);
        // The inverse clamps at g = 1e-4; the round trip only holds on
        // the unclamped interior.
        prop_assume!(g > 1.01e-4 && g < 0.999);
        let achieved = s.scale(latency, g);
        prop_assert!((achieved - target).abs() / target < 1e-6);
    }

    /// CDF quantiles are monotone and bounded by the sample range.
    #[test]
    fn cdf_quantiles_monotone(
        samples in proptest::collection::vec(0.0f64..1e6, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut cdf = Cdf::new();
        for s in &samples {
            cdf.add(*s);
        }
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi));
        prop_assert!(cdf.quantile(0.0) <= cdf.quantile(1.0));
        prop_assert!(cdf.quantile(1.0) <= 1e6);
    }

    /// Welford merge equals sequential accumulation.
    #[test]
    fn online_stats_merge_associative(
        a in proptest::collection::vec(-1e3f64..1e3, 0..50),
        b in proptest::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut all = OnlineStats::new();
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for x in &a { all.add(*x); left.add(*x); }
        for x in &b { all.add(*x); right.add(*x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - all.variance()).abs() < 1e-6);
    }

    /// JS divergence is symmetric, non-negative and bounded by ln 2 for
    /// arbitrary histograms.
    #[test]
    fn js_divergence_bounds(
        p_raw in proptest::collection::vec(0.0f64..10.0, 2..12),
    ) {
        let q_raw: Vec<f64> = p_raw.iter().rev().cloned().collect();
        let p = normalize_hist(&p_raw);
        let q = normalize_hist(&q_raw);
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= -1e-12);
        prop_assert!(d1 <= 2.0f64.ln() + 1e-9);
    }

    /// Matrix transpose-multiply identities: `aᵀb` equals the explicit
    /// transpose product and `a·bᵀ` matches element-wise dot products.
    #[test]
    fn matrix_transpose_identities(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut rng = Prng::new(seed);
        let data_a: Vec<f32> = (0..rows * cols).map(|_| rng.gauss() as f32).collect();
        let data_b: Vec<f32> = (0..rows * cols).map(|_| rng.gauss() as f32).collect();
        let a = Matrix::from_slice(rows, cols, &data_a);
        let b = Matrix::from_slice(rows, cols, &data_b);
        // aᵀ·b via t_matmul (cols × cols)
        let tm = a.t_matmul(&b);
        for i in 0..cols {
            for j in 0..cols {
                let mut dot = 0.0f32;
                for r in 0..rows {
                    dot += a.get(r, i) * b.get(r, j);
                }
                prop_assert!((tm.get(i, j) - dot).abs() < 1e-3);
            }
        }
        // a·bᵀ via matmul_t (rows × rows)
        let mt = a.matmul_t(&b);
        for i in 0..rows {
            for j in 0..rows {
                let mut dot = 0.0f32;
                for c in 0..cols {
                    dot += a.get(i, c) * b.get(j, c);
                }
                prop_assert!((mt.get(i, j) - dot).abs() < 1e-3);
            }
        }
    }

    /// GPU memory accounting is consistent under arbitrary access
    /// sequences: `used()` never exceeds capacity (when every block
    /// fits), every access returns a finite non-negative cost, and hits
    /// are free.
    #[test]
    fn memory_accounting_invariants(
        accesses in proptest::collection::vec(
            (0u32..4, 0u32..3, 0u16..6, 1u64..400_000, proptest::bool::ANY),
            1..120,
        ),
        policy_priority in proptest::bool::ANY,
        capacity in 500_000u64..4_000_000,
    ) {
        let policy = if policy_priority {
            EvictionPolicyKind::Priority
        } else {
            EvictionPolicyKind::Lru
        };
        let mut mem = GpuMemory::new(MemoryConfig {
            gpu_capacity: capacity,
            pin_capacity: capacity / 4,
            policy,
            record_reuse: true,
            ..MemoryConfig::default()
        });
        let mut clock = 0u64;
        for (app, model, layer, bytes, is_param) in accesses {
            clock += 37;
            let key = if is_param {
                ContentKey::param(app, model, layer)
            } else {
                ContentKey::intermediate(app, model, layer, 1)
            };
            let intent = if is_param {
                AccessIntent::Fetch
            } else {
                AccessIntent::Produce
            };
            let cost = mem.access(
                key,
                bytes,
                TaskContext::Inference,
                1,
                model,
                400.0,
                intent,
                adainf::simcore::SimTime::from_micros(clock),
            );
            prop_assert!(cost.as_micros() < 10_000_000, "absurd cost {cost:?}");
            prop_assert!(
                mem.used() <= capacity,
                "used {} over capacity {capacity}",
                mem.used()
            );
        }
        let stats = mem.stats();
        prop_assert!(stats.hits + stats.fetches + stats.produces > 0);
        // Reuse intervals are non-decreasing in the recording clock.
        for ev in mem.reuse_events() {
            prop_assert!(ev.elapsed.as_micros() < clock + 1);
        }
    }

    /// Streams stay normalised and bounded under arbitrary drift steps.
    #[test]
    fn stream_priors_stay_normalised(
        prior_drift in 0.0f64..1.0,
        mean_drift in 0.0f64..1.0,
        periods in 1u32..30,
        seed in 0u64..200,
    ) {
        let root = Prng::new(seed);
        let mut s = TaskStream::new(
            TaskStreamConfig::new("p", 5, seed).with_drift(prior_drift, mean_drift),
            &root,
        );
        for _ in 0..periods {
            s.advance_period();
        }
        let total: f64 = s.priors().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(s.priors().iter().all(|p| *p > 0.0));
        // Rotation drift preserves norms: samples stay bounded.
        let batch = s.sample(50);
        for v in batch.inputs.data() {
            prop_assert!(v.abs() < 30.0, "unbounded feature {v}");
        }
    }
}

/// Builds a small drifted runtime for the drift-cache properties.
fn small_drifted_runtime(seed: u64, periods: usize) -> AppRuntime {
    let root = Prng::new(seed);
    let mut rt = AppRuntime::new(
        catalog::video_surveillance(0),
        ArrivalConfig::default(),
        200,
        &root,
    );
    for _ in 0..periods {
        rt.advance_period();
    }
    rt
}

/// The real drift-artifact build is schedule-invariant: for three seeds,
/// [`fan_out_check`] replays the per-(app, node) build under forced
/// claim-order permutations at 1/2/4/8 workers and asserts bit-equality
/// with the sequential loop, and [`DriftCache::prebuild`] at every one
/// of those thread counts must land on the same artifact bits.
#[test]
fn drift_prebuild_survives_adversarial_schedules() {
    use adainf::simcore::parallel::fan_out_check;

    for seed in [11u64, 97, 2024] {
        let apps = [
            small_drifted_runtime(seed, 1),
            small_drifted_runtime(seed ^ 0x5EED, 2),
        ];
        let jobs: Vec<(usize, usize)> = apps
            .iter()
            .enumerate()
            .flat_map(|(a, rt)| (0..rt.spec.nodes.len()).map(move |n| (a, n)))
            .collect();
        let root = Prng::new(seed ^ 0xFA2_0A7);

        // Layer 1+2: production pool and forced schedule replays over
        // the real per-node artifact build, all bit-equal to sequential.
        let reference = fan_out_check(
            seed,
            3,
            &[1, 2, 4, 8],
            jobs.len(),
            DetectScratch::default,
            |i, scratch| {
                let (app, node) = jobs[i];
                build_artifacts(&apps[app], node, 8, &root, scratch)
            },
        );

        // Layer 3: the production prebuild entry point at each worker
        // count reproduces the same rankings, basis and carried
        // features bit-for-bit (prefix-sums are lazily extended, so
        // only the eagerly-built fields are compared).
        for threads in [1usize, 2, 4, 8] {
            let mut cache = DriftCache::new(true);
            cache.prebuild(&jobs, &apps, 8, &root, threads);
            for (j, &(app, node)) in jobs.iter().enumerate() {
                let art = cache.get(app, node).unwrap_or_else(|| {
                    panic!("prebuild({threads}) missing ({app}, {node})")
                });
                let want = &reference[j];
                assert_eq!(art.deviation, want.deviation, "deviation @{threads}t");
                assert_eq!(art.retrain, want.retrain, "retrain @{threads}t");
                assert_eq!(art.ref_order, want.ref_order, "ref_order @{threads}t");
                let bits = |m: &Matrix| -> Vec<u32> {
                    m.data().iter().map(|v| v.to_bits()).collect()
                };
                assert_eq!(bits(&art.basis), bits(&want.basis), "basis bits @{threads}t");
                assert_eq!(
                    bits(&art.pool_features),
                    bits(&want.pool_features),
                    "pool_features bits @{threads}t"
                );
            }
        }
    }
}

// Drift-artifact-cache properties run far fewer cases: each case builds
// and trains a full multi-model runtime.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The cached correctness prefix-sums reproduce `accuracy_on` over
    /// any deviation-ranked prefix bit-for-bit.
    #[test]
    fn prefix_sum_accuracy_is_exact(
        seed in 0u64..500,
        periods in 1usize..3,
        take_frac in 0.01f64..1.0,
    ) {
        let rt = small_drifted_runtime(seed, periods);
        let root = Prng::new(seed ^ 0xACC);
        let mut scratch = DetectScratch::default();
        for node in 0..rt.spec.nodes.len() {
            let art = build_artifacts(&rt, node, 8, &root, &mut scratch);
            let pool = rt.pools[node].samples();
            prop_assume!(!pool.is_empty());
            let take = ((take_frac * pool.len() as f64).ceil() as usize)
                .clamp(1, pool.len());
            let subset = pool.select(&art.deviation[..take]);
            let model = &rt.models[node];
            let direct = model.accuracy_on(&subset, model.profile.full_cut());
            let via_prefix = art.pool_prefix[take] as f64 / take as f64;
            prop_assert_eq!(direct.to_bits(), via_prefix.to_bits());
        }
    }

    /// A cache hit replays the keyed-stream build bit-for-bit: hit,
    /// rebuilt and independently fresh artifacts all agree, because the
    /// PCA stream is keyed by `(period, node)` off an unadvanced root.
    #[test]
    fn cached_artifacts_bit_equal_fresh(
        seed in 0u64..500,
        periods in 1usize..3,
    ) {
        let rt = small_drifted_runtime(seed, periods);
        let root = Prng::new(seed ^ 0xCAC4E);
        let mut cache = DriftCache::new(true);
        let node = 1;
        let first = cache.artifacts(0, &rt, node, 8, &root).clone();
        let hit = cache.artifacts(0, &rt, node, 8, &root).clone();
        prop_assert_eq!(cache.hits, 1);
        let fresh = build_artifacts(&rt, node, 8, &root, &mut DetectScratch::default());
        prop_assert_eq!(&first.deviation, &fresh.deviation);
        prop_assert_eq!(&first.retrain, &fresh.retrain);
        prop_assert_eq!(&first.ref_order, &fresh.ref_order);
        prop_assert_eq!(&hit.deviation, &fresh.deviation);
        // Lazily extending the cached entry's prefix-sums (in chunks)
        // must land on the eager build's values bit-for-bit.
        if let Some(art) = cache.get_mut(0, node) {
            let mut scratch = DetectScratch::default();
            let pool_len = fresh.deviation.len();
            if pool_len > 0 {
                art.pool_prefix_at(&rt, node, pool_len / 2 + 1, &mut scratch);
                art.pool_prefix_at(&rt, node, pool_len, &mut scratch);
            }
            let ref_len = fresh.ref_order.len();
            if ref_len > 0 {
                art.ref_prefix_at(&rt, node, ref_len, &mut scratch);
            }
            prop_assert_eq!(&art.pool_prefix, &fresh.pool_prefix);
            prop_assert_eq!(&art.ref_prefix, &fresh.ref_prefix);
        }
    }

    /// The cache key tracks both staleness sources: a pool-generation
    /// bump (new period) and a model-version bump (retraining) each
    /// force a rebuild, and the key is stable otherwise.
    #[test]
    fn cache_invalidates_on_generation_and_version(
        seed in 0u64..500,
    ) {
        let mut rt = small_drifted_runtime(seed, 1);
        let root = Prng::new(seed ^ 0x17A1E);
        let mut cache = DriftCache::new(true);
        let node = 1;
        cache.artifacts(0, &rt, node, 8, &root);
        cache.artifacts(0, &rt, node, 8, &root);
        prop_assert_eq!((cache.hits, cache.misses), (1, 1));
        rt.advance_period();
        cache.artifacts(0, &rt, node, 8, &root);
        prop_assert_eq!((cache.hits, cache.misses), (1, 2));
        let slice = rt.pools[node].samples().clone();
        prop_assume!(!slice.is_empty());
        rt.models[node].train_slice(&slice, 1);
        cache.artifacts(0, &rt, node, 8, &root);
        prop_assert_eq!((cache.hits, cache.misses), (1, 3));
        cache.artifacts(0, &rt, node, 8, &root);
        prop_assert_eq!((cache.hits, cache.misses), (2, 3));
    }
}

/// An enabled predictor that never reaches warm-up must fall back to
/// the analytic admission inputs bit-exactly — checked under chaos,
/// where admission actually runs on every impaired session, at three
/// seeds.
#[test]
fn unwarmed_predictor_falls_back_to_analytic_bit_exactly() {
    use adainf::core::AdaInfConfig;
    use adainf::driftgen::FaultSpec;
    use adainf::harness::sim::{run, ChaosConfig, Method, RunConfig};
    use adainf::simcore::SimDuration;
    let make = |predicted: bool, seed: u64| {
        let mut cfg = RunConfig {
            method: Method::AdaInf(AdaInfConfig {
                predicted_latency: predicted,
                // Unreachable warm-up: predictions never fire, only the
                // observation stream runs.
                predictor_warmup: u32::MAX,
                ..AdaInfConfig::default()
            }),
            seed,
            num_apps: 3,
            duration: SimDuration::from_secs(60),
            ..RunConfig::default()
        };
        cfg.chaos = Some(ChaosConfig::scenario(FaultSpec::device_stall(seed)));
        run(cfg)
    };
    for seed in [11u64, 23, 47] {
        let (on, off) = (make(true, seed), make(false, seed));
        assert!(on.fault_sessions > 0, "seed {seed}: no stall window fired");
        assert_eq!(on.total_requests, off.total_requests, "seed {seed}");
        assert_eq!(on.shed_requests, off.shed_requests, "seed {seed}");
        let (a, b) = (on.summary(), off.summary());
        assert_eq!(
            a.mean_accuracy.to_bits(),
            b.mean_accuracy.to_bits(),
            "seed {seed}: mean_accuracy"
        );
        assert_eq!(
            a.mean_finish_rate.to_bits(),
            b.mean_finish_rate.to_bits(),
            "seed {seed}: mean_finish_rate"
        );
        // Below warm-up the model forecasts nothing, so no calibration
        // row was ever scored.
        assert_eq!(a.predicted_latency_mae_us, 0.0, "seed {seed}");
        assert_eq!(a.headroom_violation_rate, 0.0, "seed {seed}");
    }
}

/// With the predictor off — the default — the calibration plumbing is
/// completely inert for every method: no feature vector is built, no
/// observation streamed, and the new summary columns are exactly zero,
/// at three seeds × three methods (arrival totals pin the runs to the
/// golden seed-engine traces).
#[test]
fn predictor_off_is_inert_across_methods_and_seeds() {
    use adainf::core::AdaInfConfig;
    use adainf::harness::sim::{run, Method, RunConfig};
    use adainf::simcore::SimDuration;
    let methods: [fn() -> Method; 3] = [
        || Method::AdaInf(AdaInfConfig::default()),
        || Method::Ekya,
        || Method::Scrooge,
    ];
    let golden_requests = [(11u64, 1725130u64), (23, 1518908), (47, 1392262)];
    for mk in methods {
        for (seed, requests) in golden_requests {
            let m = run(RunConfig {
                method: mk(),
                seed,
                num_apps: 3,
                duration: SimDuration::from_secs(60),
                ..RunConfig::default()
            });
            let s = m.summary();
            assert_eq!(
                m.total_requests, requests,
                "{} seed {seed}: total_requests",
                s.name
            );
            assert_eq!(
                m.pred_abs_err_us.count(),
                0,
                "{} seed {seed}: calibration ran with the predictor off",
                s.name
            );
            assert_eq!(s.predicted_latency_mae_us, 0.0, "{} seed {seed}", s.name);
            assert_eq!(s.headroom_violation_rate, 0.0, "{} seed {seed}", s.name);
        }
    }
}

/// The overlapped period pipeline is a pure performance switch: with
/// the same seed, a run that prebuilds drift artifacts on background
/// workers and fans retraining slices out across a pool is bit-identical
/// to the fully inline run, at every pool width. Verified at three
/// seeds × pool widths {1, 2, 4, 8} (driving both the drift prebuild
/// stage and the boundary training fan-out) against the inline
/// (`drift_overlap: false`, sequential training) baseline: request
/// totals, shed counts, the full fine-grained accuracy series, and the
/// summary aggregates all match to the bit.
#[test]
fn overlapped_pipeline_bit_identical_to_inline() {
    use adainf::core::AdaInfConfig;
    use adainf::harness::sim::{run, Method, RunConfig};
    use adainf::simcore::SimDuration;
    let make = |seed: u64, overlap: bool, workers: usize| {
        run(RunConfig {
            method: Method::AdaInf(AdaInfConfig {
                drift_overlap: overlap,
                drift_workers: workers,
                ..AdaInfConfig::default()
            }),
            seed,
            num_apps: 3,
            duration: SimDuration::from_secs(60),
            train_workers: workers,
            ..RunConfig::default()
        })
    };
    for seed in [11u64, 23, 47] {
        let inline = make(seed, false, 1);
        assert!(
            inline.period_overhead.count() >= 2,
            "seed {seed}: no period boundaries crossed — the pipeline never ran"
        );
        let base = inline.summary();
        let base_fine = inline.accuracy_fine.ratios();
        for workers in [1usize, 2, 4, 8] {
            let m = make(seed, true, workers);
            let s = m.summary();
            assert_eq!(
                m.total_requests, inline.total_requests,
                "seed {seed} workers {workers}: total_requests"
            );
            assert_eq!(
                m.shed_requests, inline.shed_requests,
                "seed {seed} workers {workers}: shed_requests"
            );
            assert_eq!(
                s.mean_accuracy.to_bits(),
                base.mean_accuracy.to_bits(),
                "seed {seed} workers {workers}: mean_accuracy"
            );
            assert_eq!(
                s.mean_finish_rate.to_bits(),
                base.mean_finish_rate.to_bits(),
                "seed {seed} workers {workers}: mean_finish_rate"
            );
            assert_eq!(
                s.mean_inference_latency_ms.to_bits(),
                base.mean_inference_latency_ms.to_bits(),
                "seed {seed} workers {workers}: mean_inference_latency_ms"
            );
            let fine = m.accuracy_fine.ratios();
            assert_eq!(
                fine.len(),
                base_fine.len(),
                "seed {seed} workers {workers}: accuracy window count"
            );
            for (w, (a, b)) in fine.iter().zip(&base_fine).enumerate() {
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "seed {seed} workers {workers}: accuracy window {w}"
                );
            }
        }
    }
}
