//! Cross-crate integration tests: the full pipeline from drift generation
//! through scheduling to metric collection, plus the paper's headline
//! orderings at reduced scale.

use adainf::core::plan::Scheduler;
use adainf::core::profiler::Profiler;
use adainf::core::{AdaInfConfig, AdaInfScheduler};
use adainf::driftgen::workload::ArrivalConfig;
use adainf::gpusim::{EvictionPolicyKind, ExecMode, GpuSpec};
use adainf::harness::sim::{run, Method, RunConfig};
use adainf::simcore::{Prng, SimDuration, SimTime};

/// The calibrated contention regime at a reduced horizon: the paper's
/// orderings need the default 8-application load (with fewer apps each
/// application has GPU to spare and the methods converge).
fn small(method: Method) -> RunConfig {
    RunConfig {
        seed: 4242,
        duration: SimDuration::from_secs(300),
        method,
        ..RunConfig::default()
    }
}

#[test]
fn adainf_beats_ekya_on_both_axes() {
    let adainf = run(small(Method::AdaInf(AdaInfConfig::default())));
    let ekya = run(small(Method::Ekya));
    assert!(
        adainf.mean_accuracy() > ekya.mean_accuracy(),
        "accuracy: AdaInf {} vs Ekya {}",
        adainf.mean_accuracy(),
        ekya.mean_accuracy()
    );
    assert!(
        adainf.mean_finish_rate() > ekya.mean_finish_rate() + 0.2,
        "finish: AdaInf {} vs Ekya {}",
        adainf.mean_finish_rate(),
        ekya.mean_finish_rate()
    );
}

#[test]
fn adainf_beats_scrooge_on_accuracy() {
    let adainf = run(small(Method::AdaInf(AdaInfConfig::default())));
    let scrooge = run(small(Method::Scrooge));
    assert!(
        adainf.mean_accuracy() > scrooge.mean_accuracy() + 0.02,
        "accuracy: AdaInf {} vs Scrooge {}",
        adainf.mean_accuracy(),
        scrooge.mean_accuracy()
    );
    // Scrooge is SLO-aware: its finish rate stays high.
    assert!(scrooge.mean_finish_rate() > 0.9);
    // And it ships data to the cloud, AdaInf does not.
    assert!(scrooge.edge_cloud_bytes > 0);
    assert_eq!(adainf.edge_cloud_bytes, 0);
}

#[test]
fn retraining_beats_no_retraining() {
    let with = run(small(Method::AdaInf(AdaInfConfig::default())));
    let without = run(small(Method::AdaInf(AdaInfConfig::no_retraining())));
    assert!(
        with.mean_accuracy() > without.mean_accuracy() + 0.03,
        "with {} vs without {}",
        with.mean_accuracy(),
        without.mean_accuracy()
    );
}

#[test]
fn scrooge_star_close_to_scrooge() {
    // §5.1: "Scrooge* performs similarly to Scrooge".
    let scrooge = run(small(Method::Scrooge));
    let star = run(small(Method::ScroogeStar));
    assert!((scrooge.mean_accuracy() - star.mean_accuracy()).abs() < 0.05);
    assert!((scrooge.mean_finish_rate() - star.mean_finish_rate()).abs() < 0.15);
}

#[test]
fn all_methods_fully_utilize_the_gpus() {
    // Fig 21: every method shows ~100 % smi-style utilization.
    for method in [
        Method::AdaInf(AdaInfConfig::default()),
        Method::Ekya,
        Method::Scrooge,
    ] {
        let m = run(small(method));
        let mean: f64 = m.utilization.iter().sum::<f64>() / m.utilization.len() as f64;
        assert!(mean > 0.95, "{}: utilization {mean}", m.name);
    }
}

#[test]
fn memory_strategy_ablations_order_comm_inflation() {
    // The measured communication inflation must order the strategy pairs
    // as Fig 22 orders the ablations: AdaInf < M2-off < M1-off < both-off.
    use adainf::core::profiler::measure_inflation;
    let cap = 9_000_000;
    let full = measure_inflation(ExecMode::LayerGrouped, EvictionPolicyKind::Priority, 3, cap);
    let no_m2 = measure_inflation(ExecMode::LayerGrouped, EvictionPolicyKind::Lru, 3, cap);
    let no_m1 = measure_inflation(ExecMode::PerRequest, EvictionPolicyKind::Priority, 3, cap);
    let none = measure_inflation(ExecMode::PerRequest, EvictionPolicyKind::Lru, 3, cap);
    assert!(full <= no_m2 + 0.02, "full {full} vs no_m2 {no_m2}");
    assert!(no_m2 < no_m1 + 0.1, "no_m2 {no_m2} vs no_m1 {no_m1}");
    assert!(full < none, "full {full} vs none {none}");
}

#[test]
fn scheduler_state_survives_many_periods() {
    // Drive the scheduler hooks directly across ten periods; plans must
    // stay well-formed throughout.
    let root = Prng::new(5);
    let specs = adainf::apps::apps_for_count(3);
    let mut apps: Vec<_> = specs
        .iter()
        .cloned()
        .map(|s| adainf::apps::AppRuntime::new(s, ArrivalConfig::default(), 500, &root))
        .collect();
    let server = GpuSpec::with_gpus(4);
    let mut sched = AdaInfScheduler::new(
        AdaInfConfig::default(),
        Profiler::default(),
        specs.clone(),
        1,
    );
    for period in 0..10u64 {
        let now = SimTime::from_secs(period * 50);
        let plan = sched.on_period_start(&mut apps, &server, now);
        assert_eq!(plan.apps.len(), 3);
        let predicted = vec![24u32; 3];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let ctx = adainf::core::plan::SessionCtx {
            now,
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(80),
            pool_remaining: &pools,
        };
        for job in sched.on_session(&ctx) {
            assert!(job.gpu > 0.0 && job.gpu <= 1.0);
            assert!(job.batch >= 1);
            assert_eq!(job.cuts.len(), specs[job.app].nodes.len());
            for (node, &cut) in job.cuts.iter().enumerate() {
                assert!(cut < specs[job.app].nodes[node].profile.num_layers());
            }
        }
        for rt in &mut apps {
            rt.advance_period();
        }
    }
}

#[test]
fn app_count_scaling_degrades_gracefully() {
    // Figs 18b/19b: more applications → accuracy and finish do not
    // improve; nothing panics up to the full 14-app catalogue.
    let few = run(RunConfig {
        num_apps: 2,
        ..small(Method::AdaInf(AdaInfConfig::default()))
    });
    let many = run(RunConfig {
        num_apps: 14,
        ..small(Method::AdaInf(AdaInfConfig::default()))
    });
    assert!(many.total_requests > few.total_requests);
    assert!(few.mean_finish_rate() >= many.mean_finish_rate() - 0.05);
}

#[test]
fn seeds_change_realisations_but_not_shape() {
    let a = run(RunConfig {
        seed: 1,
        ..small(Method::AdaInf(AdaInfConfig::default()))
    });
    let b = run(RunConfig {
        seed: 2,
        ..small(Method::AdaInf(AdaInfConfig::default()))
    });
    assert_ne!(a.total_requests, b.total_requests);
    for m in [&a, &b] {
        assert!(m.mean_accuracy() > 0.6, "accuracy collapsed: {}", m.mean_accuracy());
        assert!(m.mean_finish_rate() > 0.8);
    }
}

#[test]
fn extension_features_run_end_to_end() {
    // §6 extensions: CPU offload, joint batch/space decision and a
    // heterogeneous fleet all run and stay within a sane band of the
    // baseline.
    let baseline = run(RunConfig {
        duration: SimDuration::from_secs(150),
        ..small(Method::AdaInf(AdaInfConfig::default()))
    });
    let cpu = run(RunConfig {
        duration: SimDuration::from_secs(150),
        ..small(Method::AdaInf(AdaInfConfig {
            cpu_offload_threshold: 4,
            ..AdaInfConfig::default()
        }))
    });
    let joint = run(RunConfig {
        duration: SimDuration::from_secs(150),
        ..small(Method::AdaInf(AdaInfConfig {
            joint_batch_space: true,
            ..AdaInfConfig::default()
        }))
    });
    let hetero = run(RunConfig {
        duration: SimDuration::from_secs(150),
        device_factors: vec![1.0, 1.0, 0.5, 0.5, 0.5, 0.5].into(),
        ..small(Method::AdaInf(AdaInfConfig::default()))
    });
    for m in [&cpu, &joint, &hetero] {
        assert!(
            (m.mean_accuracy() - baseline.mean_accuracy()).abs() < 0.08,
            "{}: {} vs baseline {}",
            m.name,
            m.mean_accuracy(),
            baseline.mean_accuracy()
        );
        assert!(m.mean_finish_rate() > 0.9);
    }
}

#[test]
fn per_app_latency_percentiles_are_ordered() {
    let m = run(RunConfig {
        duration: SimDuration::from_secs(150),
        ..small(Method::AdaInf(AdaInfConfig::default()))
    });
    for app in 0..m.per_app_latency.len() {
        let (p50, p95, p99) = m.latency_percentiles(app);
        assert!(p50 <= p95 && p95 <= p99, "app {app}: {p50} {p95} {p99}");
        assert!(p99 < 2000.0);
    }
}

#[test]
fn variant_configs_run_end_to_end() {
    for config in [
        AdaInfConfig::variant_i(),
        AdaInfConfig::variant_u(),
        AdaInfConfig::variant_s(),
        AdaInfConfig::variant_e(),
        AdaInfConfig::variant_m1(),
        AdaInfConfig::variant_m2(),
    ] {
        let name = config.variant_name();
        let m = run(RunConfig {
            duration: SimDuration::from_secs(100),
            num_apps: 2,
            pool_size: 400,
            ..small(Method::AdaInf(config))
        });
        assert_eq!(m.name, name);
        assert!(m.mean_accuracy() > 0.4, "{name}: {}", m.mean_accuracy());
    }
}
