//! # AdaInf — data-drift adaptive scheduling for multi-model inference
//! serving at edge servers
//!
//! A from-scratch Rust reproduction of *AdaInf: Data Drift Adaptive
//! Scheduling for Accurate and SLO-guaranteed Multiple-Model Inference
//! Serving at Edge Servers* (Shubha & Shen, ACM SIGCOMM 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`simcore`] — deterministic discrete-event kernel (time, RNG,
//!   events, statistics).
//! * [`nn`] — the mini neural-network library behind every model's
//!   accuracy dynamics (dense layers, SGD, early-exit MLPs, PCA).
//! * [`driftgen`] — drifting data streams, retraining pools and the
//!   request-arrival workload.
//! * [`modelzoo`] — backbone cost profiles (TinyYOLOv3, MobileNetV2, …),
//!   early-exit structures and trainable model instances.
//! * [`gpusim`] — the edge-server GPU simulator: latency laws, memory
//!   manager with priority eviction, layer-level execution.
//! * [`apps`] — the paper's application catalogue and runtime state.
//! * [`core`] — the AdaInf scheduler itself (drift detection, RI-DAGs,
//!   GPU space/time division, memory strategies).
//! * [`baselines`] — Ekya and Scrooge, reimplemented on the same
//!   interface.
//! * [`harness`] — the end-to-end simulation driver, metrics and the
//!   per-figure experiment registry.
//!
//! ## Quick start
//!
//! ```
//! use adainf::harness::sim::{run, Method, RunConfig};
//! use adainf::core::AdaInfConfig;
//! use adainf::simcore::SimDuration;
//!
//! let config = RunConfig {
//!     duration: SimDuration::from_secs(60),
//!     num_apps: 2,
//!     pool_size: 300,
//!     ..RunConfig::default()
//! };
//! let metrics = run(config.with_method(Method::AdaInf(AdaInfConfig::default())));
//! assert!(metrics.mean_accuracy() > 0.5);
//! ```

#![forbid(unsafe_code)]

pub use adainf_apps as apps;
pub use adainf_baselines as baselines;
pub use adainf_core as core;
pub use adainf_driftgen as driftgen;
pub use adainf_gpusim as gpusim;
pub use adainf_harness as harness;
pub use adainf_modelzoo as modelzoo;
pub use adainf_nn as nn;
pub use adainf_simcore as simcore;
