//! The paper's headline workload in detail: the video-surveillance
//! application (TinyYOLOv3 → MobileNetV2 + ShuffleNet) under data drift.
//!
//! This example drives the AdaInf scheduler *manually* through its two
//! hooks to expose what it decides: the drift report and
//! retraining-inference DAG at each period boundary, and a session plan
//! (GPU fraction, batch, early-exit cuts, retraining slices).
//!
//! ```sh
//! cargo run --release --example video_surveillance
//! ```

#![forbid(unsafe_code)]

use adainf::apps::{catalog, AppRuntime};
use adainf::core::plan::{Scheduler, SessionCtx};
use adainf::core::profiler::Profiler;
use adainf::core::{AdaInfConfig, AdaInfScheduler};
use adainf::driftgen::workload::ArrivalConfig;
use adainf::gpusim::GpuSpec;
use adainf::simcore::{Prng, SimDuration, SimTime};

fn main() {
    let root = Prng::new(2024);
    let spec = catalog::video_surveillance(0);
    println!("application: {} (SLO {})", spec.name, spec.slo);
    for (i, node) in spec.nodes.iter().enumerate() {
        println!(
            "  node {i}: {:28} backbone {:12} drift {:8} {}",
            node.name,
            node.profile.name,
            node.drift.name(),
            node.upstream
                .map(|u| format!("<- node {u}"))
                .unwrap_or_else(|| "(root)".into()),
        );
    }

    let mut apps = vec![AppRuntime::new(
        spec.clone(),
        ArrivalConfig::default(),
        3000,
        &root,
    )];
    let server = GpuSpec::with_gpus(4);
    let mut sched = AdaInfScheduler::new(
        AdaInfConfig::default(),
        Profiler::default(),
        vec![spec.clone()],
        9,
    );

    for period in 0..4u64 {
        let now = SimTime::from_secs(period * 50);
        let plan = sched.on_period_start(&mut apps, &server, now);
        println!("\n=== period {period} ===");
        if let Some(report) = sched.last_reports.first() {
            if report.impacted.is_empty() {
                println!("drift detection: no model impacted (S stopped at {:.0}%)",
                    report.final_s * 100.0);
            } else {
                for (node, impact) in &report.impacted {
                    println!(
                        "drift detection: {} impacted, degree {:.2} (S stopped at {:.0}%)",
                        spec.nodes[*node].name,
                        impact,
                        report.final_s * 100.0
                    );
                }
            }
        }
        println!(
            "retraining-inference DAG: {} retraining vertex(es)",
            plan.apps[0].ri_entries.len()
        );

        // One session plan, as the harness would request it.
        let predicted = vec![32u32];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let ctx = SessionCtx {
            now,
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(60),
            pool_remaining: &pools,
        };
        for job in sched.on_session(&ctx) {
            println!(
                "session plan: gpu {:.3}, request batch {}, cuts {:?}",
                job.gpu, job.batch, job.cuts
            );
            for s in &job.retrain {
                println!(
                    "  retrain slice: {:28} {:4} samples, batch {}, budget {}",
                    spec.nodes[s.node].name, s.samples, s.batch, s.time
                );
            }
            if job.retrain.is_empty() {
                println!("  (no retraining this period)");
            }
        }

        // Consume the period: retrain on the scheduler's ordering, then
        // drift to the next period.
        for node in 0..apps[0].spec.nodes.len() {
            if plan.apps[0].ri_entries.iter().any(|e| e.node == node) {
                let batch = apps[0].pools[node].take(usize::MAX);
                apps[0].models[node].train_slice(&batch, 1);
            }
            let full = apps[0].spec.nodes[node].profile.full_cut();
            let acc = apps[0].accuracy(node, full);
            println!(
                "  accuracy after retraining  {:28}: {:.1}%",
                spec.nodes[node].name,
                acc * 100.0
            );
        }
        apps[0].advance_period();
    }
}
