//! Capacity planning: how many edge GPUs does a deployment need?
//!
//! Sweeps the GPU count for the default eight-application deployment
//! under AdaInf and under Ekya, reproducing the paper's headline
//! efficiency claim: Ekya needs ~4× the GPUs to match AdaInf's accuracy
//! (Fig 18c).
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

#![forbid(unsafe_code)]

use adainf::core::AdaInfConfig;
use adainf::harness::sim::{run, Method, RunConfig};
use adainf::simcore::SimDuration;

fn main() {
    let base = RunConfig {
        seed: 21,
        duration: SimDuration::from_secs(250),
        ..RunConfig::default()
    };

    println!("GPU sweep for the 8-application deployment (250 s horizon):\n");
    println!("{:>5} | {:>18} | {:>18}", "GPUs", "AdaInf acc/finish", "Ekya acc/finish");
    println!("{}", "-".repeat(50));

    let mut adainf_at_4 = None;
    let mut ekya_match = None;
    for gpus in [1u32, 2, 4, 8, 16] {
        let cfg = RunConfig {
            num_gpus: gpus,
            ..base.clone()
        };
        let a = run(cfg.with_method(Method::AdaInf(AdaInfConfig::default())));
        let e = run(cfg.with_method(Method::Ekya));
        println!(
            "{gpus:>5} | {:>7.1}% / {:>6.1}% | {:>7.1}% / {:>6.1}%",
            a.mean_accuracy() * 100.0,
            a.mean_finish_rate() * 100.0,
            e.mean_accuracy() * 100.0,
            e.mean_finish_rate() * 100.0,
        );
        if gpus == 4 {
            adainf_at_4 = Some(a.mean_accuracy());
        }
        if let Some(target) = adainf_at_4 {
            if ekya_match.is_none() && e.mean_accuracy() >= target - 0.01 {
                ekya_match = Some(gpus);
            }
        }
    }

    match (adainf_at_4, ekya_match) {
        (Some(target), Some(g)) => println!(
            "\nAdaInf reaches {:.1}% accuracy with 4 GPUs; Ekya needs {g} GPUs to match\n(the paper reports a 4x gap: 16 GPUs).",
            target * 100.0
        ),
        (Some(target), None) => println!(
            "\nAdaInf reaches {:.1}% accuracy with 4 GPUs; Ekya does not match it even at 16 GPUs.",
            target * 100.0
        ),
        _ => {}
    }
}
