//! Quickstart: deploy the default eight-application edge server, run
//! AdaInf for a few retraining periods, and print the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use adainf::core::AdaInfConfig;
use adainf::harness::sim::{run, Method, RunConfig};
use adainf::simcore::SimDuration;

fn main() {
    // 150 simulated seconds = 3 retraining periods; everything is
    // deterministic given the seed.
    let config = RunConfig {
        seed: 7,
        duration: SimDuration::from_secs(150),
        ..RunConfig::default()
    };

    println!("deploying 8 applications on a 4-GPU edge server …");
    let metrics = run(config.with_method(Method::AdaInf(AdaInfConfig::default())));

    let s = metrics.summary();
    println!("\nmethod               : {}", s.name);
    println!("requests served      : {}", s.total_requests);
    println!("mean accuracy        : {:.1}%", s.mean_accuracy * 100.0);
    println!("mean SLO finish rate : {:.1}%", s.mean_finish_rate * 100.0);
    println!("mean inference lat.  : {:.1} ms", s.mean_inference_latency_ms);
    println!("GPU utilization      : {:.0}%", s.mean_utilization * 100.0);

    println!("\naccuracy per 50 s period:");
    for (i, acc) in metrics.accuracy.ratios().iter().enumerate() {
        if let Some(a) = acc {
            println!("  period {i}: {:.1}%", a * 100.0);
        }
    }

    println!("\nretraining-pool consumption per period:");
    for (i, f) in metrics.samples_used.iter().enumerate() {
        println!("  period {i}: {:.0}% of samples", f * 100.0);
    }
}
