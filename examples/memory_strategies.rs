//! The CPU–GPU memory strategies (§3.4), observed directly.
//!
//! Runs the layer-granularity execution engine on the surveillance
//! application's retraining + inference tasks under memory pressure, for
//! all four combinations of AdaInf's two strategies, and prints the
//! communication cost of each — plus the content reuse-time profile that
//! drives the priority-eviction scoring.
//!
//! ```sh
//! cargo run --release --example memory_strategies
//! ```

#![forbid(unsafe_code)]

use adainf::apps::catalog;
use adainf::gpusim::content::ReuseCategory;
use adainf::gpusim::exec::{run_concurrent, TaskExec, TaskKind};
use adainf::gpusim::{
    EvictionPolicyKind, ExecMode, GpuMemory, LatencyModel, MemoryConfig,
};
use adainf::simcore::{Cdf, SimTime};

fn build_tasks(jobs: u64) -> Vec<TaskExec> {
    let app = catalog::video_surveillance(0);
    let mut tasks = Vec::new();
    for job in 0..jobs {
        let start = SimTime::from_micros(job * 60_000);
        for (node, nspec) in app.nodes.iter().enumerate() {
            let layers = nspec.profile.structure_layers(nspec.profile.full_cut());
            if node != 0 {
                tasks.push(TaskExec {
                    app: 0,
                    model: node as u32,
                    job,
                    kind: TaskKind::Retraining { samples: 16, epochs: 1 },
                    layers: layers.clone(),
                    batch: 16,
                    frac: 0.25,
                    slo_ms: 400.0,
                    input_from: None,
                    start,
                });
            }
            tasks.push(TaskExec {
                app: 0,
                model: node as u32,
                job,
                kind: TaskKind::Inference { requests: 32 },
                layers,
                batch: 16,
                frac: 0.25,
                slo_ms: 400.0,
                input_from: app.nodes[node]
                    .upstream
                    .map(|u| (u as u32, app.nodes[u].profile.full_cut() as u16)),
                start,
            });
        }
    }
    tasks
}

fn main() {
    let latency = LatencyModel::default();

    // Offline profiling pass: record reuse events once and build the
    // R_c table the priority policy scores with (§3.4.2).
    let mut profiling = GpuMemory::new(MemoryConfig {
        gpu_capacity: 40_000_000,
        pin_capacity: 10_000_000,
        policy: EvictionPolicyKind::Lru,
        record_reuse: true,
        ..MemoryConfig::default()
    });
    run_concurrent(&build_tasks(6), &latency, &mut profiling, ExecMode::LayerGrouped);
    let reuse_table = GpuMemory::profile_reuse_table(
        profiling.reuse_events(),
        MemoryConfig::default().reuse_table_ms,
    );
    println!("profiled R_c table (ms): {reuse_table:.3?}\n");

    println!("strategy comparison (6 jobs of the surveillance app, 40 MB GPU memory):\n");
    println!(
        "{:<38} {:>12} {:>12} {:>10}",
        "strategies", "compute", "comm", "comm share"
    );
    for (name, mode, policy) in [
        ("layer-grouped + priority (AdaInf)", ExecMode::LayerGrouped, EvictionPolicyKind::Priority),
        ("layer-grouped + LRU      (/M2)", ExecMode::LayerGrouped, EvictionPolicyKind::Lru),
        ("per-request  + priority  (/M1)", ExecMode::PerRequest, EvictionPolicyKind::Priority),
        ("per-request  + LRU  (baselines)", ExecMode::PerRequest, EvictionPolicyKind::Lru),
    ] {
        let mut mem = GpuMemory::new(MemoryConfig {
            gpu_capacity: 40_000_000,
            pin_capacity: 10_000_000,
            policy,
            record_reuse: false,
            reuse_table_ms: reuse_table,
            ..MemoryConfig::default()
        });
        let results = run_concurrent(&build_tasks(6), &latency, &mut mem, mode);
        let compute: f64 = results.iter().map(|r| r.compute.as_millis_f64()).sum();
        let comm: f64 = results.iter().map(|r| r.comm.as_millis_f64()).sum();
        println!(
            "{name:<38} {compute:>10.1}ms {comm:>10.1}ms {:>9.1}%",
            comm / (compute + comm) * 100.0
        );
    }

    // Reuse-time profile (what the S_c score's R_c table is built from).
    let mut mem = GpuMemory::new(MemoryConfig {
        gpu_capacity: 40_000_000,
        pin_capacity: 10_000_000,
        policy: EvictionPolicyKind::Priority,
        record_reuse: true,
        ..MemoryConfig::default()
    });
    run_concurrent(&build_tasks(6), &latency, &mut mem, ExecMode::LayerGrouped);
    println!("\ncontent reuse-time profile (drives priority eviction):");
    for cat in ReuseCategory::all() {
        let mut cdf = Cdf::new();
        for ev in mem.reuse_events() {
            if ev.category == cat {
                cdf.add(ev.elapsed.as_millis_f64());
            }
        }
        if cdf.is_empty() {
            continue;
        }
        println!(
            "  {:<26} median {:>8.3} ms  (n={})",
            cat.label(),
            cdf.quantile(0.5),
            cdf.len()
        );
    }
}
