//! Building your own multi-model application.
//!
//! Defines a three-model "parking lot analytics" application with custom
//! backbones and drift profiles, deploys it next to the stock catalogue
//! applications, and compares AdaInf against a no-retraining policy.
//!
//! ```sh
//! cargo run --release --example custom_app
//! ```

#![forbid(unsafe_code)]

use adainf::apps::{AppRuntime, AppSpec, NodeSpec};
use adainf::core::plan::Scheduler;
use adainf::core::profiler::Profiler;
use adainf::core::{AdaInfConfig, AdaInfScheduler};
use adainf::driftgen::workload::ArrivalConfig;
use adainf::driftgen::DriftProfile;
use adainf::gpusim::GpuSpec;
use adainf::modelzoo::ModelProfile;
use adainf::simcore::{Prng, SimDuration, SimTime};

fn parking_lot_app() -> AppSpec {
    // A hand-rolled backbone profile: 10 layers, ~50 MFLOPs/sample,
    // 4 MB parameters, 0.6 MB activations.
    let gate_net = ModelProfile::synth("GateNet", 10, 5.0e7, 4_000_000, 600_000);
    AppSpec::new(
        0,
        "parking lot analytics",
        SimDuration::from_millis(450),
        vec![
            NodeSpec {
                name: "vehicle detection".into(),
                profile: gate_net,
                classes: 3,
                drift: DriftProfile::Stable,
                upstream: None,
            },
            NodeSpec {
                name: "occupancy classification".into(),
                profile: ModelProfile::synth("SlotNet", 8, 2.0e7, 1_500_000, 250_000),
                classes: 4,
                drift: DriftProfile::Moderate,
                upstream: Some(0),
            },
            NodeSpec {
                name: "permit recognition".into(),
                profile: ModelProfile::synth("PermitNet", 12, 3.5e7, 2_500_000, 300_000),
                classes: 6,
                drift: DriftProfile::Severe,
                upstream: Some(0),
            },
        ],
    )
}

fn main() {
    let spec = parking_lot_app();
    println!("custom application: {}", spec.name);
    println!(
        "  full-DAG cost: {:.0} MFLOPs/sample, {:.1} MB parameters",
        spec.full_structure_cost().flops_per_sample / 1e6,
        spec.full_structure_cost().param_bytes / 1e6
    );

    // Deploy and let it drift for five periods while the AdaInf scheduler
    // detects impact and plans retraining; compare against leaving the
    // models frozen.
    let root = Prng::new(11);
    let server = GpuSpec::with_gpus(2);
    let mut adaptive = AppRuntime::new(spec.clone(), ArrivalConfig::default(), 3000, &root);
    let mut frozen = AppRuntime::new(spec.clone(), ArrivalConfig::default(), 3000, &root);
    let mut sched = AdaInfScheduler::new(
        AdaInfConfig::default(),
        Profiler::default(),
        vec![spec.clone()],
        3,
    );

    println!("\nper-period accuracy (adaptive vs frozen):");
    for period in 0..5u64 {
        let now = SimTime::from_secs(period * 50);
        let mut pair = [adaptive];
        let plan = sched.on_period_start(&mut pair, &server, now);
        [adaptive] = pair;
        for entry in &plan.apps[0].ri_entries {
            let batch = adaptive.pools[entry.node].take(usize::MAX);
            adaptive.models[entry.node].train_slice(&batch, 1);
        }
        let mut a_acc = 0.0;
        let mut f_acc = 0.0;
        for leaf in spec.leaves() {
            let cut = spec.nodes[leaf].profile.full_cut();
            a_acc += adaptive.accuracy(leaf, cut);
            f_acc += frozen.accuracy(leaf, cut);
        }
        let n = spec.leaves().len() as f64;
        println!(
            "  period {period}: adaptive {:.1}%  frozen {:.1}%  (retrained {} model(s))",
            a_acc / n * 100.0,
            f_acc / n * 100.0,
            plan.apps[0].ri_entries.len()
        );
        adaptive.advance_period();
        frozen.advance_period();
    }
    println!("\nthe drift-impacted leaves decay when frozen; AdaInf holds them up.");
}
