//! Drives every rule through its fixture trio: a violating file (must
//! produce at least one diagnostic of exactly that rule), a clean file
//! and an inline-allowlisted file (both must produce none).
//!
//! Fixtures live under `tests/fixtures/<rule-id>/` and are excluded
//! from workspace lint runs by the file walker.

use simlint::config::Config;
use simlint::rules::lint_source;
use std::path::PathBuf;

/// `(rule id, fixture file, pretend workspace path)` — the pretend path
/// places each fixture inside the rule's scope.
const CASES: &[(&str, &str, &str)] = &[
    ("no-wall-clock", "violating.rs", "crates/harness/src/fixture.rs"),
    ("no-wall-clock", "clean.rs", "crates/harness/src/fixture.rs"),
    ("no-wall-clock", "allowlisted.rs", "crates/harness/src/fixture.rs"),
    ("no-ambient-rng", "violating.rs", "crates/driftgen/src/fixture.rs"),
    ("no-ambient-rng", "clean.rs", "crates/driftgen/src/fixture.rs"),
    ("no-ambient-rng", "allowlisted.rs", "crates/driftgen/src/fixture.rs"),
    ("no-unordered-iteration", "violating.rs", "crates/gpusim/src/fixture.rs"),
    ("no-unordered-iteration", "clean.rs", "crates/gpusim/src/fixture.rs"),
    ("no-unordered-iteration", "allowlisted.rs", "crates/gpusim/src/fixture.rs"),
    ("forbid-unsafe-everywhere", "violating_lib.rs", "crates/gpusim/src/lib.rs"),
    ("forbid-unsafe-everywhere", "clean_lib.rs", "crates/gpusim/src/lib.rs"),
    ("forbid-unsafe-everywhere", "allowlisted_lib.rs", "crates/gpusim/src/lib.rs"),
    ("no-unwrap-in-lib", "violating.rs", "crates/core/src/fixture.rs"),
    ("no-unwrap-in-lib", "clean.rs", "crates/core/src/fixture.rs"),
    ("no-unwrap-in-lib", "allowlisted.rs", "crates/core/src/fixture.rs"),
    ("float-env-guard", "violating.rs", "crates/nn/src/fixture.rs"),
    ("float-env-guard", "clean.rs", "crates/nn/src/fixture.rs"),
    ("float-env-guard", "allowlisted.rs", "crates/nn/src/fixture.rs"),
    ("prng-stream-discipline", "violating.rs", "crates/core/src/fixture.rs"),
    ("prng-stream-discipline", "clean.rs", "crates/core/src/fixture.rs"),
    ("prng-stream-discipline", "allowlisted.rs", "crates/core/src/fixture.rs"),
    ("no-adhoc-threading", "violating.rs", "crates/harness/src/fixture.rs"),
    ("no-adhoc-threading", "clean.rs", "crates/harness/src/fixture.rs"),
    ("no-adhoc-threading", "allowlisted.rs", "crates/harness/src/fixture.rs"),
    ("no-shared-sync-outside-pool", "violating.rs", "crates/core/src/fixture.rs"),
    ("no-shared-sync-outside-pool", "clean.rs", "crates/core/src/fixture.rs"),
    ("no-shared-sync-outside-pool", "allowlisted.rs", "crates/core/src/fixture.rs"),
    ("no-nondet-float-reduction", "violating.rs", "crates/core/src/fixture.rs"),
    ("no-nondet-float-reduction", "clean.rs", "crates/core/src/fixture.rs"),
    ("no-nondet-float-reduction", "allowlisted.rs", "crates/core/src/fixture.rs"),
];

fn fixture(rule: &str, file: &str) -> String {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "fixtures", rule, file]
        .iter()
        .collect();
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

#[test]
fn every_rule_has_violating_clean_and_allowlisted_fixtures() {
    let config = Config::default();
    for (rule, file, pretend) in CASES {
        let source = fixture(rule, file);
        let diags = lint_source(pretend, &source, &config, true);
        let of_rule: Vec<_> = diags.iter().filter(|d| d.rule == *rule).collect();
        if file.starts_with("violating") {
            assert!(
                !of_rule.is_empty(),
                "{rule}/{file} at {pretend}: expected a {rule} diagnostic, got {diags:?}"
            );
        } else {
            assert!(
                of_rule.is_empty(),
                "{rule}/{file} at {pretend}: expected no {rule} diagnostics, got {of_rule:?}"
            );
        }
        // Fixtures must be surgical: no fixture may trip a *different*
        // rule, or the per-rule verdicts above would be ambiguous.
        assert!(
            diags.iter().all(|d| d.rule == *rule),
            "{rule}/{file}: tripped unrelated rules: {diags:?}"
        );
    }
}

#[test]
fn violating_fixtures_fail_in_unscoped_mode_too() {
    // `simlint <file>` (fixture mode) applies every rule by file name —
    // the mode CI uses to prove the binary exits non-zero per rule.
    let config = Config::default();
    for (rule, file, _) in CASES {
        if !file.starts_with("violating") {
            continue;
        }
        let name = if *rule == "forbid-unsafe-everywhere" { "lib.rs" } else { "fixture.rs" };
        let diags = lint_source(name, &fixture(rule, file), &config, false);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "{rule}/{file} unscoped: expected a {rule} diagnostic, got {diags:?}"
        );
    }
}

#[test]
fn hot_path_alloc_fixture_trio_under_a_hot_table() {
    // hot-path-alloc only arms for functions registered under [hot], so
    // its trio runs with a config naming the fixture's pretend path.
    let pretend = "crates/nn/src/fixture.rs";
    let config = Config::parse(&format!("[hot]\n\"{pretend}\" = [\"matmul_into\"]\n"))
        .expect("valid hot table");
    for file in ["violating.rs", "clean.rs", "allowlisted.rs"] {
        let source = fixture("hot-path-alloc", file);
        let diags = lint_source(pretend, &source, &config, true);
        let of_rule: Vec<_> = diags.iter().filter(|d| d.rule == "hot-path-alloc").collect();
        if file == "violating.rs" {
            assert!(!of_rule.is_empty(), "{file}: expected a finding, got {diags:?}");
        } else {
            assert!(of_rule.is_empty(), "{file}: expected none, got {of_rule:?}");
        }
        assert!(
            diags.iter().all(|d| d.rule == "hot-path-alloc"),
            "{file}: tripped unrelated rules: {diags:?}"
        );
    }
    // Without a [hot] entry the rule stays silent even on the violating
    // fixture — allocation is only policed where the registry says so.
    let diags = lint_source(
        pretend,
        &fixture("hot-path-alloc", "violating.rs"),
        &Config::default(),
        true,
    );
    assert!(diags.is_empty(), "unarmed hot rule must stay silent: {diags:?}");
}

#[test]
fn toml_allowlist_silences_a_module_boundary() {
    let config = Config::parse(
        "[allow]\nno-wall-clock = [\"crates/bench/\"]\nno-unordered-iteration = [\"crates/gpusim/src/fixture.rs\"]\n",
    )
    .expect("valid allowlist");
    let wall = fixture("no-wall-clock", "violating.rs");
    assert!(
        lint_source("crates/bench/src/fixture.rs", &wall, &config, true).is_empty(),
        "directory prefix should cover the whole bench crate"
    );
    let unordered = fixture("no-unordered-iteration", "violating.rs");
    assert!(
        lint_source("crates/gpusim/src/fixture.rs", &unordered, &config, true).is_empty(),
        "exact-file entry should cover the file"
    );
    assert!(
        !lint_source("crates/gpusim/src/other.rs", &unordered, &config, true).is_empty(),
        "a different file stays in scope"
    );
}
