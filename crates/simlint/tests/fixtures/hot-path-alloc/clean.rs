//! Fixture: the zero-alloc discipline — the hot function writes into
//! the caller-provided output and scratch; allocation happens once, in
//! the cold setup path that sizes the scratch.
pub fn matmul_into(out: &mut [f32], xs: &[f32], scratch: &mut [f32]) {
    for (s, x) in scratch.iter_mut().zip(xs) {
        *s = *x * 2.0;
    }
    out[0] = scratch[0];
}

pub fn make_scratch(n: usize) -> Vec<f32> {
    std::iter::repeat(0.0).take(n).collect()
}
