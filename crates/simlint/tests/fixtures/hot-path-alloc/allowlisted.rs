//! Fixture: an item-level annotation with the amortization argument —
//! the one sanctioned shape for an allocation inside a hot function.
// simlint: allow(hot-path-alloc) — grows once to the high-water mark, then amortizes to zero per call
pub fn matmul_into(out: &mut Vec<f32>, xs: &[f32]) {
    if out.len() < xs.len() {
        *out = xs.to_vec();
    }
    out[0] = xs[0];
}
