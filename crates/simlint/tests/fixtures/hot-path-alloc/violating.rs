//! Fixture: an allocation sneaking back into a `[hot]`-listed function.
//! The fixture test registers `matmul_into` under
//! `[hot] "crates/nn/src/fixture.rs"`; the temporary defeats the
//! scratch-buffer discipline the perf work established.
pub fn matmul_into(out: &mut [f32], xs: &[f32]) {
    let tmp = xs.to_vec();
    out[0] = tmp[0];
}
