//! Fixture: a point-lookup-only map excused inline.
// simlint: allow(no-unordered-iteration) — point lookups only, never iterated
use std::collections::HashMap;

// simlint: allow(no-unordered-iteration) — point lookups only, never iterated
pub fn lookup(m: &HashMap<u32, f64>, k: u32) -> Option<f64> {
    m.get(&k).copied()
}
