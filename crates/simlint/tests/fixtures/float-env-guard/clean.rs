//! Fixture: explicit mul+add keeps results bit-identical everywhere.
pub fn horner(a: f64, x: f64, c: f64) -> f64 {
    a * x + c + x * x * x
}
