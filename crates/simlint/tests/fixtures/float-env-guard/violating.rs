//! Fixture: environment-sensitive float ops on a simulation path.
pub fn horner(a: f64, x: f64, c: f64) -> f64 {
    a.mul_add(x, c) + x.powi(3)
}
