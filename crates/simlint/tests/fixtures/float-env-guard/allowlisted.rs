//! Fixture: a guarded use excused inline.
pub fn fast_path(a: f64, x: f64, c: f64) -> f64 {
    // simlint: allow(float-env-guard) — output is diagnostic-only, never compared bitwise
    a.mul_add(x, c)
}
