//! Fixture: parallelism expressed through the race-checked fan-outs,
//! which own all thread spawning inside simcore/src/parallel.rs.
use adainf_simcore::parallel::fan_out;

pub fn square_all(xs: &[u64]) -> Vec<u64> {
    fan_out(xs, 0, |x| x * x)
}
