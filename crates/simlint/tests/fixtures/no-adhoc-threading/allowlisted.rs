//! Fixture: an inline-annotated spawn whose invariant is documented —
//! e.g. a watchdog thread in tooling code that never touches simulated
//! state.
pub fn spawn_watchdog(work: impl FnOnce() + Send + 'static) {
    // simlint: allow(no-adhoc-threading) — watchdog owns no simulated state; it only signals the harness on timeout
    std::thread::spawn(work);
}
