//! Fixture: ad-hoc thread creation outside the sanctioned pool module.
//! Raw spawns get none of the race-check ledger, the index-addressed
//! slot writes, or the schedule-replay coverage of simcore::parallel.
pub fn rebuild_in_background(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}
