//! Fixture: a wall-clock site excused inline with a justification.
// simlint: allow(no-wall-clock) — overhead metric, never simulated time
use std::time::Instant;

pub fn overhead_ms() -> f64 {
    // simlint: allow(no-wall-clock) — overhead metric, never simulated time
    Instant::now().elapsed().as_secs_f64() * 1e3
}
