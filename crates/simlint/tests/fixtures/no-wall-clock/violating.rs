//! Fixture: reads the host clock from simulation code.
use std::time::Instant;

pub fn decision_overhead() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
