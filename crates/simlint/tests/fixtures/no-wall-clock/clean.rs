//! Fixture: timing routed through the simulated clock only.
pub fn decision_overhead(start_us: u64, end_us: u64) -> u64 {
    end_us - start_us
}
