//! Fixture: a crate root missing the unsafe forbid.
pub fn f() -> u32 {
    7
}
