// simlint: allow(forbid-unsafe-everywhere) — generated shim, no code of its own
pub fn f() -> u32 {
    7
}
