//! Fixture: a second root Prng stream constructed inside library code.
//! The run seed must enter once, at the bin/test entry point; library
//! functions accept a Prng (or a split child) from the caller.
use adainf_simcore::Prng;

pub fn jitter_stream() -> Prng {
    Prng::new(7)
}
