//! Fixture: the sanctioned stream discipline. Library code receives a
//! Prng from its caller; per-item randomness inside a fan_out* closure
//! is a split child keyed by stable item identity, never by worker or
//! claim order. Tests may construct roots freely.
use adainf_simcore::parallel::fan_out_indexed;
use adainf_simcore::Prng;

pub fn build_all(root: &Prng, jobs: usize) -> Vec<u64> {
    fan_out_indexed(jobs, 0, Scratch::default, |i, _scratch| {
        let mut rng = root.split(0xD21F ^ i as u64);
        rng.next_u64()
    })
}

#[derive(Default)]
pub struct Scratch;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_fine_in_tests() {
        let root = Prng::new(42);
        assert_eq!(build_all(&root, 2).len(), 2);
    }
}
