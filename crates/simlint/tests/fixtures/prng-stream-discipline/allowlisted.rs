//! Fixture: an item-level annotation. This library function IS the
//! sanctioned seed boundary for its subsystem, so the allow sits on the
//! item and covers its whole body, naming the invariant.
use adainf_simcore::Prng;

// simlint: allow(prng-stream-discipline) — calibration's seed boundary; the run seed enters here exactly once
pub fn calibration_stream(run_seed: u64) -> Prng {
    Prng::new(run_seed ^ 0xCA11)
}
