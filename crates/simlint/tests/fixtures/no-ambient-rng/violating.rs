//! Fixture: ambient randomness instead of a seeded Prng.
pub fn jitter() -> u64 {
    let mut r = rand::thread_rng();
    r.next_u64()
}
