//! Fixture: randomness threaded from an explicit seed.
pub fn jitter(seed: u64) -> u64 {
    let mut prng = adainf_simcore::Prng::new(seed);
    prng.next_u64()
}
