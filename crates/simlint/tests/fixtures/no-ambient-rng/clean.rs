//! Fixture: randomness threaded from the caller's Prng stream.
pub fn jitter(rng: &adainf_simcore::Prng) -> u64 {
    let mut child = rng.split(0x4A17);
    child.next_u64()
}
