//! Fixture: an entropy source excused inline.
pub fn entropy_probe(buf: &mut [u8]) {
    // simlint: allow(no-ambient-rng) — diagnostics only, never drives the sim
    getrandom::fill(buf).ok();
}
