//! Fixture: a shared-mutability primitive in a deterministic crate.
//! Results must flow through index-addressed per-slot writes owned by
//! simcore::parallel, not through lock-ordered shared state.
use std::sync::Mutex;

pub struct CarrySlots {
    pub slots: Vec<Mutex<Vec<f32>>>,
}
