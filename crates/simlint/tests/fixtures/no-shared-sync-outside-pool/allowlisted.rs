//! Fixture: an item-level annotation — the allow above the function
//! excuses the construct throughout its body, with the determinism
//! argument stated once.
// simlint: allow(no-shared-sync-outside-pool) — table is immutable after first build; its value is a pure function of constants
pub fn kernel_table() -> &'static [u32] {
    static TABLE: std::sync::OnceLock<Vec<u32>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| (0..16u32).collect())
}
