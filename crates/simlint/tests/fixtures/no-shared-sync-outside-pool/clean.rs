//! Fixture: the sanctioned shape — owned jobs in, owned results out.
//! Each worker writes its own index-addressed slot inside
//! simcore::parallel; no shared-mutability primitive is needed.
use adainf_simcore::parallel::fan_out_indexed_owned;

pub fn rebuild(jobs: Vec<Vec<f32>>) -> Vec<f32> {
    let out = fan_out_indexed_owned(jobs, 0, Scratch::default, |_i, job, _s| {
        job.iter().copied().sum::<f32>()
    });
    out
}

#[derive(Default)]
pub struct Scratch;
