//! Fixture: an invariant-backed expect, annotated in place.
pub fn head(xs: &[u32]) -> u32 {
    // simlint: allow(no-unwrap-in-lib) — callers guarantee non-empty input
    *xs.first().expect("non-empty by construction")
}
