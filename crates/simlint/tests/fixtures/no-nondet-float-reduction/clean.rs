//! Fixture: structurally ordered reductions — the `.iter()`/`.map()`
//! chain in the same statement witnesses a fixed iteration order, so
//! the float sum is reproducible bit-for-bit.
pub fn norm_sq(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum()
}

pub fn weighted(v: &[f64], w: &[f64]) -> f64 {
    v.iter().zip(w).map(|(x, y)| x * y).fold(0.0, |a, b| a + b)
}
