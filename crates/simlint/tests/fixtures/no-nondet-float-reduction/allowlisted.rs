//! Fixture: an inline-annotated reduction whose order is fixed by a
//! caller contract the statement cannot show.
pub fn total(samples: impl Iterator<Item = f64>) -> f64 {
    let acc = samples;
    // simlint: allow(no-nondet-float-reduction) — caller contract: samples arrive in ascending node-index order
    acc.sum()
}
