//! Fixture: a float reduction over an iterator handed in from
//! elsewhere — the iteration order (and so the result bits) is decided
//! at every call site, invisibly to this reduction.
pub fn total(samples: impl Iterator<Item = f64>) -> f64 {
    let acc = samples;
    acc.sum()
}
