//! The live workspace must be lint-clean: this is the same check CI
//! runs via `cargo run -p simlint --release`, wired into `cargo test`
//! so a violation fails the ordinary test suite too.

use simlint::{lint_workspace, workspace_root};

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    assert!(
        root.join("simlint.toml").is_file(),
        "workspace root {} is missing simlint.toml",
        root.display()
    );
    let report = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
