//! The live workspace must be lint-clean: this is the same check CI
//! runs via `cargo run -p simlint --release`, wired into `cargo test`
//! so a violation fails the ordinary test suite too. The structural
//! pass rides along: the full rule catalog (including the scope-aware
//! concurrency/determinism rules) runs over every file, and the
//! `[hot]` registry in simlint.toml is validated against the tree so
//! renamed or deleted hot functions cannot leave stale entries behind.

use simlint::rules::RULES;
use simlint::{lint_workspace, load_config, workspace_root};

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    assert!(
        root.join("simlint.toml").is_file(),
        "workspace root {} is missing simlint.toml",
        root.display()
    );
    let report = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}

/// The scope-aware rules must stay in the catalog — the workspace-clean
/// assertion above is only meaningful if they actually ran.
#[test]
fn structural_rules_are_in_the_catalog() {
    for id in [
        "prng-stream-discipline",
        "no-adhoc-threading",
        "no-shared-sync-outside-pool",
        "hot-path-alloc",
        "no-nondet-float-reduction",
    ] {
        assert!(
            RULES.iter().any(|r| r.id == id),
            "rule `{id}` missing from the catalog"
        );
    }
    for rule in RULES {
        assert!(
            !rule.explanation.trim().is_empty(),
            "rule `{}` has no --explain text",
            rule.id
        );
    }
}

/// Every `[hot]` entry in simlint.toml must name a real file and a
/// function that still exists in it — a rename must not quietly disarm
/// the zero-alloc guard.
#[test]
fn hot_registry_matches_the_tree() {
    let root = workspace_root();
    let config = load_config(&root).expect("simlint.toml parses");
    let mut entries = 0;
    for (path, fns) in config.hot_entries() {
        let source = std::fs::read_to_string(root.join(path))
            .unwrap_or_else(|e| panic!("[hot] lists missing file {path}: {e}"));
        for f in fns {
            assert!(
                source.contains(&format!("fn {f}(")),
                "[hot] {path} lists `{f}`, but no `fn {f}(` exists there"
            );
            entries += 1;
        }
    }
    assert!(entries > 0, "the [hot] registry is empty — the zero-alloc guard is unarmed");
}
