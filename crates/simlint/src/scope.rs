//! Structural scope layer over the lexical token stream.
//!
//! [`ScopeTree::build`] runs one forward pass over a [`LexedFile`] and
//! recovers just enough item structure for the scope-aware rules:
//!
//! * `fn` items with their names — so `[hot]`-listed functions can be
//!   checked for allocations, and `#[test]` functions skipped;
//! * `mod` items and any other `#[cfg(test)]`-attributed item — the
//!   scope-aware replacement for line-range test tracking;
//! * closures, each tagged with the name of the call they are an
//!   argument of — so "inside a `fan_out*` closure" is a structural
//!   fact, not a guess;
//! * item-level `// simlint: allow(rule)` annotations: an annotation on
//!   (or directly above) an item's first line excuses the rule for the
//!   *whole item body*, not just one line.
//!
//! The tracker is deliberately not a parser. It matches braces, walks
//! `fn`/`mod` headers to their bodies, and applies a closure-start
//! heuristic pinned by unit tests. Where Rust syntax is ambiguous at
//! the token level (`|` in or-patterns, `#[cfg(not(test))]`), it errs
//! toward *not* creating a scope / *not* marking test, so rules stay
//! conservative: a missed scope can cause a spurious diagnostic (fixed
//! with an inline allow), never a silently suppressed one.

use crate::lexer::{LexedFile, Token, TokenKind};

/// What kind of item a scope represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file.
    Root,
    /// A `mod name { … }` item, or any non-fn `#[cfg(test)]` item.
    Module,
    /// A `fn` item (free or associated).
    Fn,
    /// A closure expression.
    Closure,
}

/// One scope: a token-index span plus the item facts rules query.
#[derive(Clone, Debug)]
pub struct Scope {
    /// What the scope is.
    pub kind: ScopeKind,
    /// `fn`/`mod` name; `None` for root, closures and attributed items.
    pub name: Option<String>,
    /// For closures: the name of the call this closure is an argument
    /// of (`fan_out_indexed(…, |i, s| …)` → `"fan_out_indexed"`).
    pub call: Option<String>,
    /// First token of the item (its attributes included).
    pub start_tok: usize,
    /// Last token of the item body (inclusive).
    pub end_tok: usize,
    /// Index of the enclosing scope (root points at itself).
    pub parent: usize,
    /// Whether this item is test-only (`#[cfg(test)]` / `#[test]`).
    pub test: bool,
    /// Rules excused for the whole item by an annotation on (or above)
    /// its first line.
    pub allows: Vec<String>,
}

/// The file's scopes in source (start-token) order; index 0 is root.
#[derive(Debug)]
pub struct ScopeTree {
    /// All scopes; nested scopes appear after their parents.
    pub scopes: Vec<Scope>,
}

impl ScopeTree {
    /// Builds the tree for a lexed file.
    pub fn build(lexed: &LexedFile) -> ScopeTree {
        Builder::new(lexed).run()
    }

    /// Index of the innermost scope containing token `tok`.
    pub fn innermost(&self, tok: usize) -> usize {
        let mut best = 0usize;
        for (idx, s) in self.scopes.iter().enumerate().skip(1) {
            if s.start_tok <= tok && tok <= s.end_tok && s.start_tok >= self.scopes[best].start_tok
            {
                best = idx;
            }
        }
        best
    }

    fn ancestors(&self, tok: usize) -> impl Iterator<Item = &Scope> {
        let mut idx = self.innermost(tok);
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let scope = &self.scopes[idx];
            if idx == 0 {
                done = true;
            }
            idx = scope.parent;
            Some(scope)
        })
    }

    /// Whether `tok` sits inside test-only code.
    pub fn in_test(&self, tok: usize) -> bool {
        self.ancestors(tok).any(|s| s.test)
    }

    /// Whether `tok` sits inside a closure passed to a `fan_out*` call.
    pub fn in_fan_out_closure(&self, tok: usize) -> bool {
        self.ancestors(tok).any(|s| {
            s.kind == ScopeKind::Closure
                && s.call.as_deref().is_some_and(|c| c.starts_with("fan_out"))
        })
    }

    /// Name of the innermost enclosing `fn`, if any.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&str> {
        self.ancestors(tok)
            .find(|s| s.kind == ScopeKind::Fn)
            .and_then(|s| s.name.as_deref())
    }

    /// Whether an enclosing item carries an item-level allow for `rule`.
    pub fn item_allowed(&self, tok: usize, rule: &str) -> bool {
        self.ancestors(tok)
            .any(|s| s.allows.iter().any(|r| r == rule))
    }
}

/// Single-pass builder state.
struct Builder<'a> {
    lexed: &'a LexedFile,
    scopes: Vec<Scope>,
    /// Open scopes (indices into `scopes`), innermost last.
    stack: Vec<usize>,
    /// `(call name, paren depth of its argument list)`, innermost last.
    calls: Vec<(String, i64)>,
    paren_depth: i64,
    /// `(first attr token, test flag)` of a pending attribute run.
    pending_attr: Option<(usize, bool)>,
}

/// Idents that look like calls but are control flow, never a closure's
/// call context.
const NOT_CALLS: &[&str] = &["if", "while", "match", "for", "return", "in"];

impl<'a> Builder<'a> {
    fn new(lexed: &'a LexedFile) -> Self {
        let end = lexed.tokens.len().saturating_sub(1);
        Builder {
            lexed,
            scopes: vec![Scope {
                kind: ScopeKind::Root,
                name: None,
                call: None,
                start_tok: 0,
                end_tok: end,
                parent: 0,
                test: false,
                allows: Vec::new(),
            }],
            stack: vec![0],
            calls: Vec::new(),
            paren_depth: 0,
            pending_attr: None,
        }
    }

    fn run(mut self) -> ScopeTree {
        let tokens = &self.lexed.tokens;
        let close_of = brace_matches(tokens);
        let mut i = 0usize;
        while i < tokens.len() {
            while self.stack.len() > 1
                && self.scopes[*self.stack.last().unwrap_or(&0)].end_tok < i
            {
                self.stack.pop();
            }
            match &tokens[i].kind {
                TokenKind::Punct('#')
                    if matches!(tokens.get(i + 1).map(|t| &t.kind), Some(TokenKind::Punct('['))) =>
                {
                    let end = skip_attr(tokens, i);
                    let test = attr_marks_test(&tokens[i..end]);
                    self.pending_attr = match self.pending_attr.take() {
                        Some((start, t)) => Some((start, t || test)),
                        None => Some((i, test)),
                    };
                    i = end;
                }
                TokenKind::Punct('(') => {
                    self.paren_depth += 1;
                    if i > 0 {
                        if let TokenKind::Ident(name) = &tokens[i - 1].kind {
                            if !NOT_CALLS.contains(&name.as_str()) {
                                self.calls.push((name.clone(), self.paren_depth));
                            }
                        }
                    }
                    i += 1;
                }
                TokenKind::Punct(')') => {
                    if self
                        .calls
                        .last()
                        .is_some_and(|(_, d)| *d == self.paren_depth)
                    {
                        self.calls.pop();
                    }
                    self.paren_depth -= 1;
                    i += 1;
                }
                TokenKind::Ident(kw) if kw == "fn" => {
                    self.open_fn_or_mod(ScopeKind::Fn, i, &close_of);
                    i += 1;
                }
                TokenKind::Ident(kw) if kw == "mod" => {
                    self.open_fn_or_mod(ScopeKind::Module, i, &close_of);
                    i += 1;
                }
                TokenKind::Punct('|') if is_closure_start(tokens, i) => {
                    if let Some(end_tok) = closure_end(tokens, i, &close_of) {
                        let call = self.calls.last().map(|(n, _)| n.clone());
                        self.open(Scope {
                            kind: ScopeKind::Closure,
                            name: None,
                            call,
                            start_tok: i,
                            end_tok,
                            parent: *self.stack.last().unwrap_or(&0),
                            test: false,
                            allows: self.item_allows(tokens[i].line),
                        });
                    }
                    i += 1;
                }
                TokenKind::Ident(_) | TokenKind::Punct(_) => {
                    // Any other token consumes a pending attribute run.
                    // A `#[cfg(test)]` on a non-fn/mod item (impl block,
                    // use, const) still spans the whole item, mirroring
                    // the line-range tracker this layer replaces.
                    if let Some((start, test)) = self.pending_attr.take() {
                        if test {
                            let end = item_end(tokens, i, &close_of);
                            self.open(Scope {
                                kind: ScopeKind::Module,
                                name: None,
                                call: None,
                                start_tok: start,
                                end_tok: end,
                                parent: *self.stack.last().unwrap_or(&0),
                                test: true,
                                allows: self.item_allows(tokens[start].line),
                            });
                        }
                    }
                    i += 1;
                }
            }
        }
        self.scopes.sort_by_key(|s| s.start_tok);
        // Re-point parents after the sort: recompute by containment.
        let spans: Vec<(usize, usize)> =
            self.scopes.iter().map(|s| (s.start_tok, s.end_tok)).collect();
        for idx in 1..self.scopes.len() {
            let (start, end) = spans[idx];
            let mut parent = 0usize;
            for (j, &(s, e)) in spans.iter().enumerate() {
                if j != idx && s <= start && end <= e && s >= spans[parent].0 {
                    parent = j;
                }
            }
            self.scopes[idx].parent = parent;
        }
        ScopeTree { scopes: self.scopes }
    }

    /// Handles `fn name … { … }` / `mod name { … }` at keyword index `i`.
    fn open_fn_or_mod(&mut self, kind: ScopeKind, i: usize, close_of: &[usize]) {
        let tokens = &self.lexed.tokens;
        let (attr_start, test) = self.pending_attr.take().unwrap_or((i, false));
        let name = match tokens.get(i + 1).map(|t| &t.kind) {
            Some(TokenKind::Ident(n)) => Some(n.clone()),
            _ => None,
        };
        // Walk the header to the body `{` (or `;` — no body: trait
        // method signatures, file modules). Parens/brackets in the
        // signature are balanced, so a depth-0 `{` is the body.
        let mut depth = 0i64;
        let mut j = i + 1;
        let body = loop {
            match tokens.get(j).map(|t| &t.kind) {
                None => break None,
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth -= 1,
                Some(TokenKind::Punct('{')) if depth == 0 => break Some(j),
                Some(TokenKind::Punct(';')) if depth == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body else { return };
        let end_tok = close_of.get(open).copied().unwrap_or(tokens.len() - 1);
        let start_line = tokens[attr_start].line;
        self.open(Scope {
            kind,
            name,
            call: None,
            start_tok: attr_start,
            end_tok,
            parent: *self.stack.last().unwrap_or(&0),
            test,
            allows: self.item_allows(start_line),
        });
    }

    fn open(&mut self, scope: Scope) {
        let idx = self.scopes.len();
        self.scopes.push(scope);
        self.stack.push(idx);
    }

    /// Rules excused for an item starting on `start_line` by an
    /// annotation on that line or the line above.
    fn item_allows(&self, start_line: u32) -> Vec<String> {
        self.lexed
            .allows
            .iter()
            .filter(|(l, _)| *l == start_line || *l + 1 == start_line)
            .map(|(_, r)| r.clone())
            .collect()
    }
}

/// For every token index holding `{`, the index of its matching `}`
/// (or the last token when unbalanced). Non-`{` indices hold 0 and are
/// never read.
fn brace_matches(tokens: &[Token]) -> Vec<usize> {
    let mut out = vec![0usize; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Punct('{') => stack.push(i),
            TokenKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    out[open] = i;
                }
            }
            _ => {}
        }
    }
    let last = tokens.len().saturating_sub(1);
    for open in stack {
        out[open] = last;
    }
    out
}

/// Given `tokens[i] == '#'` starting an attribute, returns the index
/// just past the matching `]`.
pub(crate) fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Whether an attribute's tokens mark a test item: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, …))]` — but not `#[cfg(not(test))]`,
/// which is production-only code and must stay linted.
fn attr_marks_test(attr: &[Token]) -> bool {
    let has = |name: &str| {
        attr.iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == name))
    };
    has("test") && !has("not")
}

/// Closure-start heuristic: a `|` opens a closure when the previous
/// token could not end an expression (so it cannot be bitwise/pattern
/// or). `a | b` has an ident/`)` before the bar; `(|x| …`, `, |x| …`,
/// `= |x| …`, `move |x| …` do not.
fn is_closure_start(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|j| &tokens[j].kind) else {
        return false;
    };
    match prev {
        TokenKind::Punct('(' | ',' | '=' | '{' | ';' | ':') => true,
        TokenKind::Ident(kw) => matches!(kw.as_str(), "move" | "return" | "else"),
        _ => false,
    }
}

/// Finds the last token of the closure starting at `|` index `i`:
/// locates the closing `|`, then spans a `{ … }` body via the brace
/// map, or an expression body to the first `,`/`;` at depth 0 or the
/// `)` closing the enclosing call. Returns `None` when the bar turns
/// out not to head a closure (e.g. an or-pattern that slipped past the
/// start heuristic).
fn closure_end(tokens: &[Token], i: usize, close_of: &[usize]) -> Option<usize> {
    // Closing bar: scan a bounded window; abort on statement
    // boundaries or an unbalanced `)` — those mean "not a closure".
    let mut depth = 0i64;
    let mut j = i + 1;
    let close_bar = loop {
        if j >= tokens.len() || j - i > 64 {
            return None;
        }
        match tokens[j].kind {
            TokenKind::Punct('(' | '[') => depth += 1,
            TokenKind::Punct(')' | ']') => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            TokenKind::Punct('{' | '}' | ';') => return None,
            TokenKind::Punct('|') if depth == 0 => break j,
            _ => {}
        }
        j += 1;
    };
    let body = close_bar + 1;
    match tokens.get(body).map(|t| &t.kind) {
        None => None,
        Some(TokenKind::Punct('{')) => Some(close_of.get(body).copied().unwrap_or(i)),
        _ => {
            // Expression body: ends before the first `,`/`;` at depth 0
            // or the `)` that closes the call the closure is inside.
            let mut depth = 0i64;
            let mut k = body;
            while k < tokens.len() {
                match tokens[k].kind {
                    TokenKind::Punct('(' | '[' | '{') => depth += 1,
                    TokenKind::Punct(')' | ']' | '}') => {
                        if depth == 0 {
                            return Some(k.saturating_sub(1).max(close_bar));
                        }
                        depth -= 1;
                    }
                    TokenKind::Punct(',' | ';') if depth == 0 => {
                        return Some(k.saturating_sub(1).max(close_bar));
                    }
                    _ => {}
                }
                k += 1;
            }
            Some(tokens.len() - 1)
        }
    }
}

/// Span of a generic attributed item starting at token `i`: to the
/// first `;` at depth 0, or the matching `}` of its first `{`.
fn item_end(tokens: &[Token], i: usize, close_of: &[usize]) -> usize {
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('{') => return close_of.get(j).copied().unwrap_or(j),
            TokenKind::Punct(';') => return j,
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Token index of the `n`th occurrence of ident `name`.
    fn ident_at(lexed: &LexedFile, name: &str, n: usize) -> usize {
        lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.kind, TokenKind::Ident(s) if s == name))
            .map(|(i, _)| i)
            .nth(n)
            .unwrap_or_else(|| panic!("ident {name} #{n} not found"))
    }

    #[test]
    fn fn_scopes_carry_names_and_nest() {
        let src = "fn outer() { fn inner() { marker(); } other(); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        let marker = ident_at(&lexed, "marker", 0);
        let other = ident_at(&lexed, "other", 0);
        assert_eq!(tree.enclosing_fn(marker), Some("inner"));
        assert_eq!(tree.enclosing_fn(other), Some("outer"));
    }

    #[test]
    fn cfg_test_mod_and_test_fn_are_test_scopes() {
        let src = "fn prod() { a(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn helper() { b(); }\n}\n\
                   #[test]\nfn unit() { c(); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        assert!(!tree.in_test(ident_at(&lexed, "a", 0)));
        assert!(tree.in_test(ident_at(&lexed, "b", 0)));
        assert!(tree.in_test(ident_at(&lexed, "c", 0)));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_scope() {
        let src = "#[cfg(not(test))]\nfn prod() { a(); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        assert!(!tree.in_test(ident_at(&lexed, "a", 0)));
    }

    #[test]
    fn cfg_test_impl_block_spans_whole_item() {
        let src = "#[cfg(test)]\nimpl Foo {\n  fn helper(&self) { a(); }\n}\nfn prod() { b(); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        assert!(tree.in_test(ident_at(&lexed, "a", 0)));
        assert!(!tree.in_test(ident_at(&lexed, "b", 0)));
    }

    #[test]
    fn closures_know_their_call() {
        let src = "fn f() { fan_out_indexed(n, t, || s(), |i, st| body(i)); \
                   other(|x| elsewhere(x)); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        assert!(tree.in_fan_out_closure(ident_at(&lexed, "body", 0)));
        assert!(tree.in_fan_out_closure(ident_at(&lexed, "s", 0)));
        assert!(!tree.in_fan_out_closure(ident_at(&lexed, "elsewhere", 0)));
    }

    #[test]
    fn nested_call_inside_fan_out_closure_still_counts() {
        let src = "fn f() { fan_out(n, t, |i| items.map(|x| inner(x))); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        assert!(tree.in_fan_out_closure(ident_at(&lexed, "inner", 0)));
    }

    #[test]
    fn or_patterns_do_not_open_scopes() {
        // `Some(1 | 2)`: the bar's paren context closes before another
        // bar appears, so no closure scope is created.
        let src = "fn f(x: Option<u8>) { if matches!(x, Some(1 | 2)) { a(); } }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        let a = ident_at(&lexed, "a", 0);
        assert_eq!(tree.enclosing_fn(a), Some("f"));
        assert!(tree
            .scopes
            .iter()
            .all(|s| s.kind != ScopeKind::Closure));
    }

    #[test]
    fn expression_body_closure_ends_at_call_boundary() {
        let src = "fn f() { fan_out(n, |i| g(i), after()); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        assert!(tree.in_fan_out_closure(ident_at(&lexed, "g", 0)));
        assert!(!tree.in_fan_out_closure(ident_at(&lexed, "after", 0)));
    }

    #[test]
    fn item_level_allow_covers_the_whole_body() {
        let src = "// simlint: allow(demo-rule) — whole item excused\n\
                   fn f() {\n  line_one();\n  line_two();\n}\nfn g() { outside(); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        assert!(tree.item_allowed(ident_at(&lexed, "line_two", 0), "demo-rule"));
        assert!(!tree.item_allowed(ident_at(&lexed, "outside", 0), "demo-rule"));
    }

    #[test]
    fn trait_method_signatures_open_no_scope() {
        let src = "trait T { fn sig(&self) -> u8; }\nfn real() { a(); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed);
        assert_eq!(tree.enclosing_fn(ident_at(&lexed, "a", 0)), Some("real"));
        // `sig` has no body, so no Fn scope carries its name.
        assert!(tree
            .scopes
            .iter()
            .all(|s| s.name.as_deref() != Some("sig")));
    }
}
