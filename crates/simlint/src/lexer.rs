//! A minimal Rust lexer: just enough structure for lexical lint rules.
//!
//! The lexer strips comments, string/char literals and numbers, and
//! yields identifier and punctuation tokens tagged with their 1-based
//! source line. It also collects `// simlint: allow(rule, ...)`
//! annotations from line comments, which the rule engine honours for
//! the annotated line and the line that follows it (so an annotation
//! can sit on its own line above the construct it excuses).
//!
//! It is *not* a full lexer — float exponents, nested generics and the
//! like are irrelevant here — but it must never mis-track string or
//! comment boundaries, or every downstream rule would misfire. The
//! tricky cases (raw strings with `#` fences, lifetimes vs. char
//! literals, nested block comments) are handled explicitly and pinned
//! by unit tests.

/// One lexical token relevant to the lint rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (operators are not glued).
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokenKind,
}

/// Lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// `(line, rule-id)` pairs from `// simlint: allow(...)` comments.
    pub allows: Vec<(u32, String)>,
}

impl LexedFile {
    /// Whether `rule` is allowed on `line` by an inline annotation
    /// (same line, or the immediately preceding line).
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }
}

/// Lexes `source` into tokens + allow annotations.
pub fn lex(source: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                record_allow(&source[start..i], line, &mut out.allows);
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                // Block comment, nested per Rust rules.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
            }
            b'\'' => {
                i = skip_char_or_lifetime(bytes, i, &mut line);
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < n && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &source[start..i];
                // Raw / byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#` — the quote belongs to the literal, not to
                // the identifier we just read.
                let next = bytes.get(i).copied();
                if matches!(ident, "r" | "b" | "br" | "rb")
                    && matches!(next, Some(b'"') | Some(b'#'))
                {
                    if let Some(end) = skip_raw_string(bytes, i, &mut line) {
                        i = end;
                        continue;
                    }
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Ident(ident.to_string()),
                });
            }
            _ if c.is_ascii_digit() => {
                // Numbers (incl. 0x…, 1_000, 0.25): skip; a trailing
                // type suffix is consumed as part of the number. A `.`
                // is part of the number only when a digit follows, so
                // ranges (`0..4`) and method calls on literals
                // (`2.0.powi(3)`) keep their punctuation and idents.
                while i < n
                    && (bytes[i] == b'_'
                        || bytes[i].is_ascii_alphanumeric()
                        || (bytes[i] == b'.'
                            && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    i += 1;
                }
            }
            _ => {
                if !c.is_ascii_whitespace() {
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Punct(c as char),
                    });
                }
                i += 1;
            }
        }
    }
    out
}

/// Parses `// simlint: allow(rule-a, rule-b) — reason` comments.
fn record_allow(comment: &str, line: u32, allows: &mut Vec<(u32, String)>) {
    let Some(pos) = comment.find("simlint: allow(") else {
        return;
    };
    let rest = &comment[pos + "simlint: allow(".len()..];
    let Some(close) = rest.find(')') else { return };
    for rule in rest[..close].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            allows.push((line, rule.to_string()));
        }
    }
}

/// Skips a conventional `"…"` string starting at `i` (the opening
/// quote). Returns the index just past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw/byte string whose fence starts at `i` (at the `#`s or
/// the quote). Returns `None` if this is not actually a raw string.
fn skip_raw_string(bytes: &[u8], mut i: usize, line: &mut u32) -> Option<usize> {
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some(j);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    Some(i)
}

/// Skips either a char literal (`'a'`, `'\n'`) or a lifetime (`'a`).
fn skip_char_or_lifetime(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    // Escaped char literal: '\…'
    if bytes.get(i + 1) == Some(&b'\\') {
        let mut j = i + 2;
        while j < n && bytes[j] != b'\'' {
            j += 1;
        }
        return (j + 1).min(n);
    }
    // 'x' (single char, closing quote right after) — incl. '\n' handled
    // above; lifetimes ('a, 'static) have no closing quote.
    if let (Some(&c1), Some(&c2)) = (bytes.get(i + 1), bytes.get(i + 2)) {
        if c2 == b'\'' && c1 != b'\'' {
            if c1 == b'\n' {
                *line += 1;
            }
            return i + 3;
        }
    }
    // Lifetime: consume the quote; the label lexes as a normal ident,
    // which is harmless (lifetime labels never collide with rule ids).
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r##"
            // Instant in a comment
            /* HashMap /* nested */ still comment */
            let a = "Instant::now()";
            let b = r#"SystemTime "quoted" here"#;
            let c = 'x';
            let d: &'static str = "";
            real_ident(a);
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|s| s == "Instant" || s == "HashMap" || s == "SystemTime"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let s = \"a\nb\";\nInstant";
        let lexed = lex(src);
        let tok = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("Instant".into()))
            .expect("Instant token");
        assert_eq!(tok.line, 3);
    }

    #[test]
    fn allow_annotations_are_collected() {
        let src = "// simlint: allow(no-unwrap-in-lib, no-wall-clock) — justified\nfoo();\nbar(); // simlint: allow(no-ambient-rng)\n";
        let lexed = lex(src);
        assert!(lexed.allowed(1, "no-unwrap-in-lib"));
        assert!(lexed.allowed(2, "no-wall-clock"), "annotation covers next line");
        assert!(lexed.allowed(3, "no-ambient-rng"));
        assert!(!lexed.allowed(3, "no-unwrap-in-lib"));
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let ids = idents(r"let q = '\''; let h = HashMap;");
        assert!(ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        // `1.0.to_bits()` and ranges must keep the idents visible.
        let ids = idents("let x = (0..4).map(f); let b = 1.0f64; 2.0.powi(2);");
        assert!(ids.contains(&"powi".to_string()), "method on float literal");
        assert!(ids.contains(&"map".to_string()));
    }
}
