//! `simlint.toml` parsing.
//!
//! The config format is a deliberately tiny TOML subset (this crate
//! is std-only, so no toml dependency) with two tables:
//!
//! * `[allow]` — rule id → array of workspace-relative path prefixes.
//!   A prefix ending in `/` allowlists a directory subtree — a *module
//!   boundary*, which is the granularity the project wants (never line
//!   numbers):
//!
//!   ```toml
//!   [allow]
//!   # why: …
//!   no-wall-clock = [
//!       "crates/simcore/src/walltime.rs",
//!       "crates/bench/",
//!   ]
//!   ```
//!
//! * `[hot]` — quoted file path → array of function names whose bodies
//!   the hot-path-alloc rule keeps allocation-free:
//!
//!   ```toml
//!   [hot]
//!   "crates/nn/src/matrix.rs" = ["matmul_into", "add_assign_scaled"]
//!   ```

use std::collections::BTreeMap;

/// Parsed config: the `[allow]` path-prefix allowlist per rule, and the
/// `[hot]` zero-alloc function registry per file.
#[derive(Clone, Debug, Default)]
pub struct Config {
    allow: BTreeMap<String, Vec<String>>,
    hot: BTreeMap<String, Vec<String>>,
}

/// A malformed `simlint.toml` line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the offending text.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simlint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses the config text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section: Option<Section> = None;
        let mut pending: Option<(Section, String, String, u32)> = None; // (section, key, buffer, start line)

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();

            if let Some((sect, key, mut buffer, start)) = pending.take() {
                buffer.push_str(&line);
                if line.contains(']') {
                    config.insert(sect, &key, &buffer, start)?;
                } else {
                    pending = Some((sect, key, buffer, start));
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                section = match line.as_str() {
                    "[allow]" => Some(Section::Allow),
                    "[hot]" => Some(Section::Hot),
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!(
                                "unknown section {line}; only [allow] and [hot] are supported"
                            ),
                        });
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = [\"…\", …]`, got `{line}`"),
                });
            };
            let Some(sect) = section else {
                return Err(ConfigError {
                    line: lineno,
                    message: "entries must live under [allow] or [hot]".to_string(),
                });
            };
            let key = unquote_key(key.trim(), sect, lineno)?;
            let value = value.trim().to_string();
            if value.contains(']') {
                config.insert(sect, &key, &value, lineno)?;
            } else {
                pending = Some((sect, key, value, lineno));
            }
        }
        if let Some((_, key, _, start)) = pending {
            return Err(ConfigError {
                line: start,
                message: format!("unclosed array for {key}"),
            });
        }
        Ok(config)
    }

    fn insert(
        &mut self,
        section: Section,
        key: &str,
        array: &str,
        line: u32,
    ) -> Result<(), ConfigError> {
        let inner = array
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.trim_end().strip_suffix(']'))
            .ok_or_else(|| ConfigError {
                line,
                message: format!("value for {key} must be a [\"…\"] array"),
            })?;
        let mut items = Vec::new();
        for piece in inner.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let item = piece
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| ConfigError {
                    line,
                    message: format!("array items for {key} must be quoted strings"),
                })?;
            items.push(item.to_string());
        }
        let table = match section {
            Section::Allow => &mut self.allow,
            Section::Hot => &mut self.hot,
        };
        table.entry(key.to_string()).or_default().extend(items);
        Ok(())
    }

    /// Whether `path` (workspace-relative, `/`-separated) is allowlisted
    /// for `rule`. Prefixes ending in `/` match subtrees; others match
    /// the exact file.
    pub fn allowed(&self, rule: &str, path: &str) -> bool {
        self.allow.get(rule).is_some_and(|prefixes| {
            prefixes.iter().any(|p| {
                if p.ends_with('/') {
                    path.starts_with(p.as_str())
                } else {
                    path == p
                }
            })
        })
    }

    /// Rule ids that have at least one allowlist entry (for `--explain`).
    pub fn rules_with_entries(&self) -> impl Iterator<Item = &str> {
        self.allow.keys().map(String::as_str)
    }

    /// The zero-alloc function names registered under `[hot]` for
    /// `path` (exact file match), if any.
    pub fn hot_fns(&self, path: &str) -> Option<&[String]> {
        self.hot.get(path).map(Vec::as_slice)
    }

    /// All `[hot]` entries, for self-check validation that every listed
    /// file and function still exists.
    pub fn hot_entries(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.hot.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

/// Which table an entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Section {
    Allow,
    Hot,
}

/// `[allow]` keys are bare rule ids; `[hot]` keys are quoted file paths
/// (they contain `/` and `.`, which bare TOML keys cannot).
fn unquote_key(key: &str, section: Section, line: u32) -> Result<String, ConfigError> {
    match section {
        Section::Allow => Ok(key.to_string()),
        Section::Hot => key
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .map(str::to_string)
            .ok_or_else(|| ConfigError {
                line,
                message: format!("[hot] keys must be quoted file paths, got `{key}`"),
            }),
    }
}

/// Removes a `#`-comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_and_multi_line_arrays() {
        let toml = r#"
# header comment
[allow]
no-wall-clock = ["crates/bench/", "crates/simcore/src/walltime.rs"]
no-unwrap-in-lib = [
    "crates/harness/src/parallel.rs", # trailing note
]
"#;
        let c = Config::parse(toml).expect("parses");
        assert!(c.allowed("no-wall-clock", "crates/bench/src/lib.rs"));
        assert!(c.allowed("no-wall-clock", "crates/simcore/src/walltime.rs"));
        assert!(!c.allowed("no-wall-clock", "crates/simcore/src/time.rs"));
        assert!(c.allowed("no-unwrap-in-lib", "crates/harness/src/parallel.rs"));
        assert!(!c.allowed("no-unwrap-in-lib", "crates/harness/src/sim.rs"));
    }

    #[test]
    fn rejects_unknown_sections_and_bare_values() {
        assert!(Config::parse("[deny]\n").is_err());
        assert!(Config::parse("[allow]\nrule = nope\n").is_err());
        assert!(Config::parse("[allow]\nrule = [\"a\"\n").is_err());
        assert!(Config::parse("rule = [\"a\"]\n").is_err());
    }

    #[test]
    fn parses_hot_table_with_quoted_path_keys() {
        let toml = r#"
[hot]
"crates/nn/src/matrix.rs" = ["matmul_into", "add_assign_scaled"]
"crates/nn/src/pca.rs" = [
    "fit_warm_with_scratch", # multi-line, with note
]
"#;
        let c = Config::parse(toml).expect("parses");
        assert_eq!(
            c.hot_fns("crates/nn/src/matrix.rs").expect("entry"),
            &["matmul_into".to_string(), "add_assign_scaled".to_string()]
        );
        assert_eq!(
            c.hot_fns("crates/nn/src/pca.rs").expect("entry"),
            &["fit_warm_with_scratch".to_string()]
        );
        assert!(c.hot_fns("crates/nn/src/lib.rs").is_none());
        assert_eq!(c.hot_entries().count(), 2);
        // Bare (unquoted) [hot] keys are rejected.
        assert!(Config::parse("[hot]\ncrates/x.rs = [\"f\"]\n").is_err());
    }

    #[test]
    fn exact_file_entries_do_not_match_subpaths() {
        let c = Config::parse("[allow]\nr = [\"crates/a/src/x.rs\"]\n").expect("parses");
        assert!(c.allowed("r", "crates/a/src/x.rs"));
        assert!(!c.allowed("r", "crates/a/src/x.rs.bak"));
        assert!(!c.allowed("r", "crates/a/src"));
    }
}
