//! `simlint.toml` parsing.
//!
//! The allowlist format is a deliberately tiny TOML subset (this crate
//! is std-only, so no toml dependency): one `[allow]` table whose keys
//! are rule ids and whose values are arrays of workspace-relative path
//! prefixes. A prefix ending in `/` allowlists a directory subtree — a
//! *module boundary*, which is the granularity the project wants
//! (never line numbers):
//!
//! ```toml
//! [allow]
//! # why: …
//! no-wall-clock = [
//!     "crates/simcore/src/walltime.rs",
//!     "crates/bench/",
//! ]
//! ```

use std::collections::BTreeMap;

/// Parsed allowlist: rule id → path prefixes.
#[derive(Clone, Debug, Default)]
pub struct Config {
    allow: BTreeMap<String, Vec<String>>,
}

/// A malformed `simlint.toml` line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the offending text.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simlint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses the allowlist text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut in_allow = false;
        let mut pending: Option<(String, String, u32)> = None; // (rule, buffer, start line)

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();

            if let Some((rule, mut buffer, start)) = pending.take() {
                buffer.push_str(&line);
                if line.contains(']') {
                    config.insert(&rule, &buffer, start)?;
                } else {
                    pending = Some((rule, buffer, start));
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_allow = line == "[allow]";
                if !in_allow {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown section {line}; only [allow] is supported"),
                    });
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `rule = [\"path\", …]`, got `{line}`"),
                });
            };
            if !in_allow {
                return Err(ConfigError {
                    line: lineno,
                    message: "entries must live under [allow]".to_string(),
                });
            }
            let rule = key.trim().to_string();
            let value = value.trim().to_string();
            if value.contains(']') {
                config.insert(&rule, &value, lineno)?;
            } else {
                pending = Some((rule, value, lineno));
            }
        }
        if let Some((rule, _, start)) = pending {
            return Err(ConfigError {
                line: start,
                message: format!("unclosed array for rule {rule}"),
            });
        }
        Ok(config)
    }

    fn insert(&mut self, rule: &str, array: &str, line: u32) -> Result<(), ConfigError> {
        let inner = array
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.trim_end().strip_suffix(']'))
            .ok_or_else(|| ConfigError {
                line,
                message: format!("value for {rule} must be a [\"…\"] array"),
            })?;
        let mut paths = Vec::new();
        for piece in inner.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let path = piece
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| ConfigError {
                    line,
                    message: format!("array items for {rule} must be quoted strings"),
                })?;
            paths.push(path.to_string());
        }
        self.allow.entry(rule.to_string()).or_default().extend(paths);
        Ok(())
    }

    /// Whether `path` (workspace-relative, `/`-separated) is allowlisted
    /// for `rule`. Prefixes ending in `/` match subtrees; others match
    /// the exact file.
    pub fn allowed(&self, rule: &str, path: &str) -> bool {
        self.allow.get(rule).is_some_and(|prefixes| {
            prefixes.iter().any(|p| {
                if p.ends_with('/') {
                    path.starts_with(p.as_str())
                } else {
                    path == p
                }
            })
        })
    }

    /// Rule ids that have at least one allowlist entry (for `--explain`).
    pub fn rules_with_entries(&self) -> impl Iterator<Item = &str> {
        self.allow.keys().map(String::as_str)
    }
}

/// Removes a `#`-comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_and_multi_line_arrays() {
        let toml = r#"
# header comment
[allow]
no-wall-clock = ["crates/bench/", "crates/simcore/src/walltime.rs"]
no-unwrap-in-lib = [
    "crates/harness/src/parallel.rs", # trailing note
]
"#;
        let c = Config::parse(toml).expect("parses");
        assert!(c.allowed("no-wall-clock", "crates/bench/src/lib.rs"));
        assert!(c.allowed("no-wall-clock", "crates/simcore/src/walltime.rs"));
        assert!(!c.allowed("no-wall-clock", "crates/simcore/src/time.rs"));
        assert!(c.allowed("no-unwrap-in-lib", "crates/harness/src/parallel.rs"));
        assert!(!c.allowed("no-unwrap-in-lib", "crates/harness/src/sim.rs"));
    }

    #[test]
    fn rejects_unknown_sections_and_bare_values() {
        assert!(Config::parse("[deny]\n").is_err());
        assert!(Config::parse("[allow]\nrule = nope\n").is_err());
        assert!(Config::parse("[allow]\nrule = [\"a\"\n").is_err());
    }

    #[test]
    fn exact_file_entries_do_not_match_subpaths() {
        let c = Config::parse("[allow]\nr = [\"crates/a/src/x.rs\"]\n").expect("parses");
        assert!(c.allowed("r", "crates/a/src/x.rs"));
        assert!(!c.allowed("r", "crates/a/src/x.rs.bak"));
        assert!(!c.allowed("r", "crates/a/src"));
    }
}
