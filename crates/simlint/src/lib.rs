//! simlint — workspace determinism & invariant lints.
//!
//! The entire value of this reproduction rests on bit-exact,
//! seed-stable simulation: the decision cache and the golden tests are
//! only trustworthy because no code path reads wall-clock time, ambient
//! randomness, or iteration-order-dependent state. This crate enforces
//! those conventions as named, individually allowlistable lexical
//! rules (see [`rules::RULES`]), reporting
//! `file:line: rule-id: message` diagnostics and a non-zero exit on
//! violation.
//!
//! Rules run over two views of each file: the raw token stream
//! ([`lexer`]) and a structural scope tree layered on it ([`scope`]) —
//! which function/closure/test region a token sits in, whether a
//! closure is an argument to a `fan_out*` call, and item-level
//! `// simlint: allow(rule)` annotations.
//!
//! Usage:
//!
//! ```text
//! cargo run -p simlint                # lint the whole workspace
//! cargo run -p simlint -- a.rs b.rs  # lint specific files, all rules on
//! cargo run -p simlint -- --format=json   # machine-readable diagnostics
//! cargo run -p simlint -- --list-rules
//! cargo run -p simlint -- --explain no-adhoc-threading
//! ```
//!
//! The allowlist lives in `simlint.toml` at the workspace root (path
//! prefixes per rule — module boundaries, never line numbers); single
//! sites are excused inline with `// simlint: allow(rule-id) — reason`.
//! DESIGN.md § "Determinism invariants" documents each rule.
//!
//! std-only by design: the linter sits in the determinism trust chain
//! and must not pull dependencies into the vendored-stubs build.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod scope;

use config::Config;
use rules::Diagnostic;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".cargo"];

/// Path fragments excluded from workspace lints: rule fixtures violate
/// on purpose.
const SKIP_FRAGMENTS: &[&str] = &["crates/simlint/tests/fixtures/"];

/// Result of a workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Collects every lintable `.rs` file under `root`, as workspace-relative
/// `/`-separated paths, sorted for deterministic output.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let rel = relative_slash(root, &path);
            if SKIP_FRAGMENTS.iter().any(|f| rel.starts_with(f)) {
                continue;
            }
            out.push(rel);
        }
    }
    out.sort();
    Ok(out)
}

fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Loads `simlint.toml` from `root` (empty config when absent).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("simlint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Lints every `.rs` file under `root` with path-scoped rules and the
/// root's `simlint.toml` allowlist.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let config = load_config(root)?;
    let files = collect_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut report = Report::default();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("{rel}: {e}"))?;
        report.files_scanned += 1;
        report
            .diagnostics
            .extend(rules::lint_source(&rel, &source, &config, true));
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when invoked via
/// cargo (this crate lives at `crates/simlint`), else the current
/// directory.
pub fn workspace_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = Path::new(&manifest);
        if let Some(root) = p.parent().and_then(Path::parent) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}
