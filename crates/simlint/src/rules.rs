//! The lint rules and the per-file diagnostic engine.
//!
//! Every rule is lexical: it scans the token stream of one file (via
//! [`crate::lexer`]) and reports `file:line: rule-id: message`
//! diagnostics. Rules are scoped by workspace-relative path (see the
//! `*_SCOPE` tables) and individually suppressible two ways:
//!
//! * `simlint.toml` — path-prefix allowlist, for module boundaries
//!   (e.g. the whole bench harness may read the wall clock);
//! * `// simlint: allow(rule-id) — reason` — an inline annotation on
//!   the offending line or the line above it, for individual sites
//!   whose invariant justifies the construct.

use crate::config::Config;
use crate::lexer::{lex, LexedFile, Token, TokenKind};

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule id (the allowlist key).
    pub rule: &'static str,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// Rule id + one-line description, for `--list-rules` and docs.
pub struct RuleInfo {
    /// Stable id used in allowlists and diagnostics.
    pub id: &'static str,
    /// What the rule enforces and why.
    pub description: &'static str,
}

/// Every rule simlint enforces.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-wall-clock",
        description: "Instant/SystemTime outside the walltime/bench modules: \
                      simulated results must never depend on the host clock",
    },
    RuleInfo {
        id: "no-ambient-rng",
        description: "ambient RNG construction (thread_rng, OsRng, RandomState, …): \
                      all randomness must be threaded from simcore::Prng seeds",
    },
    RuleInfo {
        id: "no-unordered-iteration",
        description: "HashMap/HashSet in deterministic crates: iteration order is \
                      nondeterministic; use BTreeMap/BTreeSet or a sorted Vec",
    },
    RuleInfo {
        id: "forbid-unsafe-everywhere",
        description: "every crate root (lib, bin, bench, example) must carry \
                      #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "no-unwrap-in-lib",
        description: "unwrap()/expect() in library code outside tests: return a \
                      Result, or annotate the site with its invariant",
    },
    RuleInfo {
        id: "float-env-guard",
        description: "mul_add/powi/fma on simulation paths would break the \
                      documented -C target-cpu=native bit-safety argument",
    },
];

/// Crates whose state must be iteration-order independent (the
/// no-unordered-iteration scope from the issue).
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/core/",
    "crates/gpusim/",
    "crates/driftgen/",
    "crates/simcore/",
    "crates/baselines/",
    "crates/apps/",
    "crates/modelzoo/",
];

/// Library crates whose `src/` (minus `src/bin/`) falls under
/// no-unwrap-in-lib and float-env-guard. The root package's `src/` is
/// handled separately.
const LIB_CRATES: &[&str] = &[
    "crates/core/",
    "crates/gpusim/",
    "crates/driftgen/",
    "crates/simcore/",
    "crates/baselines/",
    "crates/apps/",
    "crates/modelzoo/",
    "crates/nn/",
    "crates/harness/",
];

/// Identifiers that read the host clock.
const WALL_CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH", "Date"];

/// Identifiers that construct or reach ambient (unseeded) randomness.
const AMBIENT_RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "RandomState",
    "StdRng",
    "SmallRng",
    "rand",
];

/// Unordered-collection identifiers (including the std entry-API module
/// names, so `hash_map::Entry` cannot slip through).
const UNORDERED_IDENTS: &[&str] = &["HashMap", "HashSet", "hash_map", "hash_set"];

/// Float ops whose codegen (FMA contraction, libm polynomial choice)
/// may vary with the target environment.
const FLOAT_ENV_IDENTS: &[&str] = &["mul_add", "powi", "fma"];

/// Lints one file. `path` must be workspace-relative with `/`
/// separators. With `scoped = false` (fixture mode) every rule applies
/// regardless of path — except forbid-unsafe-everywhere, which still
/// only fires on crate-root-shaped file names.
pub fn lint_source(path: &str, source: &str, config: &Config, scoped: bool) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let tests = test_regions(&lexed.tokens);
    let mut out = Vec::new();

    let in_scope = |rule: &'static str, prefixes: Option<&[&str]>| -> bool {
        if config.allowed(rule, path) {
            return false;
        }
        if !scoped {
            return true;
        }
        match prefixes {
            None => true,
            Some(p) => p.iter().any(|pre| path.starts_with(pre)),
        }
    };

    if in_scope("no-wall-clock", None) {
        ban_idents(
            path, &lexed, "no-wall-clock", WALL_CLOCK_IDENTS, false, None,
            "host wall-clock in simulation code; route timing through \
             adainf_simcore::walltime (overhead metrics) or move it into crates/bench",
            &mut out,
        );
    }
    if in_scope("no-ambient-rng", None) {
        ban_idents(
            path, &lexed, "no-ambient-rng", AMBIENT_RNG_IDENTS, false, None,
            "ambient randomness; construct adainf_simcore::Prng from a run seed \
             (Prng::new / Prng::split) instead",
            &mut out,
        );
    }
    if in_scope("no-unordered-iteration", Some(DETERMINISTIC_CRATES)) {
        ban_idents(
            path, &lexed, "no-unordered-iteration", UNORDERED_IDENTS, false, None,
            "unordered collection in a deterministic crate; use BTreeMap/BTreeSet \
             or a sorted Vec (point-lookup-only maps may be allowlisted)",
            &mut out,
        );
    }
    if is_unwrap_scope(path, scoped) && in_scope("no-unwrap-in-lib", None) {
        ban_idents(
            path, &lexed, "no-unwrap-in-lib", &["unwrap", "expect"], true, Some(&tests),
            "panicking extraction in library code; return a Result, or keep an \
             `expect` and annotate the line with its invariant",
            &mut out,
        );
    }
    if in_scope("float-env-guard", Some(LIB_OR_ROOT_SRC)) {
        ban_idents(
            path, &lexed, "float-env-guard", FLOAT_ENV_IDENTS, false, None,
            "environment-sensitive float op; write explicit mul+add / repeated \
             multiplication so results stay bit-identical across targets",
            &mut out,
        );
    }
    if is_crate_root(path) && in_scope("forbid-unsafe-everywhere", None) {
        check_forbid_unsafe(path, &lexed, &mut out);
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Path prefixes whose `src/` files count as library simulation code.
/// (Used via [`is_unwrap_scope`] for the src-only refinement; listed
/// here so the float guard can share the crate list plus root `src/`.)
const LIB_OR_ROOT_SRC: &[&str] = &[
    "crates/core/src/",
    "crates/gpusim/src/",
    "crates/driftgen/src/",
    "crates/simcore/src/",
    "crates/baselines/src/",
    "crates/apps/src/",
    "crates/modelzoo/src/",
    "crates/nn/src/",
    "crates/harness/src/",
    "src/",
];

/// no-unwrap-in-lib scope: library `src/` files, excluding binary
/// targets (`src/bin/`), which are applications free to panic on
/// startup errors.
fn is_unwrap_scope(path: &str, scoped: bool) -> bool {
    if !scoped {
        return true;
    }
    if path.contains("/bin/") {
        return false;
    }
    path.starts_with("src/")
        || LIB_CRATES
            .iter()
            .any(|c| path.starts_with(&format!("{c}src/")))
}

/// Whether `path` is a crate/target root that must carry
/// `#![forbid(unsafe_code)]`: libs, bins, benches and examples.
/// (Integration-test roots are exempt: their code runs against
/// libraries that already forbid unsafe.)
fn is_crate_root(path: &str) -> bool {
    if path == "src/lib.rs" || path == "src/main.rs" {
        return true;
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((_, file)) = rest.split_once('/') {
            if file == "src/lib.rs" || file == "src/main.rs" {
                return true;
            }
            if let Some(bin) = file.strip_prefix("src/bin/") {
                return !bin.contains('/') && bin.ends_with(".rs");
            }
            if let Some(bench) = file.strip_prefix("benches/") {
                return !bench.contains('/') && bench.ends_with(".rs");
            }
            if let Some(ex) = file.strip_prefix("examples/") {
                return !ex.contains('/') && ex.ends_with(".rs");
            }
        }
        return false;
    }
    if let Some(ex) = path.strip_prefix("examples/") {
        return !ex.contains('/') && ex.ends_with(".rs");
    }
    // Fixture mode hands bare file names through `scoped = false`; the
    // caller names forbid-unsafe fixtures `lib.rs`/`main.rs`.
    path == "lib.rs" || path == "main.rs"
}

/// Reports any banned identifier, honouring inline allows and
/// (optionally) `#[cfg(test)]` regions and a required leading `.`.
#[allow(clippy::too_many_arguments)]
fn ban_idents(
    path: &str,
    lexed: &LexedFile,
    rule: &'static str,
    banned: &[&str],
    require_dot: bool,
    skip_regions: Option<&[(u32, u32)]>,
    message: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in lexed.tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        if !banned.iter().any(|b| b == name) {
            continue;
        }
        if require_dot {
            let prev = i.checked_sub(1).map(|j| &lexed.tokens[j].kind);
            if prev != Some(&TokenKind::Punct('.')) {
                continue;
            }
        }
        if let Some(regions) = skip_regions {
            if regions.iter().any(|&(s, e)| tok.line >= s && tok.line <= e) {
                continue;
            }
        }
        if lexed.allowed(tok.line, rule) {
            continue;
        }
        out.push(Diagnostic {
            path: path.to_string(),
            line: tok.line,
            rule,
            message: format!("`{name}`: {message}"),
        });
    }
}

/// Verifies the file opens with `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(path: &str, lexed: &LexedFile, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    let found = toks.windows(8).any(|w| {
        matches!(
            (&w[0].kind, &w[1].kind, &w[2].kind, &w[3].kind, &w[4].kind, &w[5].kind, &w[6].kind, &w[7].kind),
            (
                TokenKind::Punct('#'),
                TokenKind::Punct('!'),
                TokenKind::Punct('['),
                TokenKind::Ident(a),
                TokenKind::Punct('('),
                TokenKind::Ident(b),
                TokenKind::Punct(')'),
                TokenKind::Punct(']'),
            ) if a == "forbid" && b == "unsafe_code"
        )
    });
    if !found && !lexed.allowed(1, "forbid-unsafe-everywhere") {
        out.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: "forbid-unsafe-everywhere",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items — the
/// regions no-unwrap-in-lib skips. Handles `mod tests { … }`, and any
/// other attributed item by spanning to the item's closing `}` or `;`.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let Some(end_attr) = match_cfg_test_attr(tokens, i) else {
            i += 1;
            continue;
        };
        let start_line = tokens[i].line;
        // Skip any further attributes on the same item.
        let mut j = end_attr;
        while j < tokens.len() && tokens[j].kind == TokenKind::Punct('#') {
            j = skip_attr(tokens, j);
        }
        // The item extends to the first `;` at depth 0 or the matching
        // `}` of its first `{`.
        let mut depth = 0usize;
        let mut end_line = tokens.get(j).map_or(start_line, |t| t.line);
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = tokens[j].line;
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    end_line = tokens[j].line;
                    break;
                }
                _ => {}
            }
            end_line = tokens[j].line;
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j.max(i + 1);
    }
    regions
}

/// If `tokens[i..]` starts a `#[cfg(… test …)]` attribute, returns the
/// index just past its closing `]`.
fn match_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.kind != TokenKind::Punct('#')
        || tokens.get(i + 1)?.kind != TokenKind::Punct('[')
    {
        return None;
    }
    if tokens.get(i + 2)?.kind != TokenKind::Ident("cfg".to_string()) {
        return None;
    }
    let end = skip_attr(tokens, i);
    let has_test = tokens
        .get(i + 3..end.saturating_sub(1))
        .unwrap_or(&[])
        .iter()
        .any(|t| t.kind == TokenKind::Ident("test".to_string()));
    has_test.then_some(end)
}

/// Given `tokens[i] == '#'` starting an attribute, returns the index
/// just past the matching `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &Config::default(), true)
    }

    #[test]
    fn wall_clock_flagged_everywhere() {
        let d = lint("crates/harness/src/sim.rs", "use std::time::Instant;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-wall-clock");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unordered_scope_is_the_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert!(lint("crates/gpusim/src/memory.rs", src)
            .iter()
            .any(|d| d.rule == "no-unordered-iteration"));
        // simlint itself may hash; nn is not in the scope either.
        assert!(lint("crates/simlint/src/rules.rs", src).is_empty());
    }

    #[test]
    fn unwrap_skips_cfg_test_and_bins() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() { None::<u8>.unwrap(); }\n}\n";
        let d = lint("crates/core/src/plan.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert!(lint("crates/harness/src/bin/adainf-sim.rs", src)
            .iter()
            .all(|d| d.rule == "forbid-unsafe-everywhere"));
    }

    #[test]
    fn unwrap_requires_method_position() {
        // A local named `expect`, or `unwrap_or`, must not fire.
        let src = "pub fn f() { let expect = 1; let _ = Some(2).unwrap_or(expect); }\n";
        assert!(lint("crates/core/src/plan.rs", src).is_empty());
    }

    #[test]
    fn inline_allow_suppresses_with_reason() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n\
                   // simlint: allow(no-unwrap-in-lib) — caller checked is_some\n\
                   x.expect(\"checked\") }\n";
        assert!(lint("crates/core/src/plan.rs", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots_only() {
        let missing = "pub fn f() {}\n";
        let present = "//! doc\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint("crates/core/src/lib.rs", missing)
            .iter()
            .any(|d| d.rule == "forbid-unsafe-everywhere"));
        assert!(lint("crates/core/src/lib.rs", present).is_empty());
        assert!(lint("crates/core/src/plan.rs", missing).is_empty());
        assert!(lint("crates/bench/src/bin/fig08.rs", missing).len() == 1);
        assert!(lint("examples/quickstart.rs", missing).len() == 1);
    }

    #[test]
    fn float_env_guard_fires_on_lib_src() {
        let src = "#![forbid(unsafe_code)]\npub fn f(a: f64) -> f64 { a.mul_add(2.0, 1.0) }\n";
        assert!(lint("crates/nn/src/lib.rs", src)
            .iter()
            .any(|d| d.rule == "float-env-guard"));
    }

    #[test]
    fn toml_allowlist_is_honoured() {
        let config =
            Config::parse("[allow]\nno-wall-clock = [\"crates/bench/\"]\n").expect("parses");
        let d = lint_source(
            "crates/bench/src/lib.rs",
            "#![forbid(unsafe_code)]\nuse std::time::Instant;\n",
            &config,
            true,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn ambient_rng_flagged() {
        let d = lint("crates/driftgen/src/stream.rs", "let mut r = rand::thread_rng();\n");
        assert!(d.iter().filter(|d| d.rule == "no-ambient-rng").count() >= 1);
    }
}
