//! The lint rules and the per-file diagnostic engine.
//!
//! Rules come in two layers:
//!
//! * **token layer** — scans the token stream of one file (via
//!   [`crate::lexer`]) for banned identifiers;
//! * **scope layer** — consults the structural view (via
//!   [`crate::scope`]) for facts the token stream alone cannot give:
//!   which `fn` a token is in, whether it is test-only code, whether it
//!   sits inside a closure handed to a `fan_out*` call.
//!
//! Diagnostics are `file:line: rule-id: message`. Rules are scoped by
//! workspace-relative path (see the `*_CRATES` tables) and individually
//! suppressible three ways:
//!
//! * `simlint.toml` — path-prefix allowlist, for module boundaries
//!   (e.g. the whole bench harness may read the wall clock);
//! * `// simlint: allow(rule-id) — reason` on the offending line or the
//!   line above it, for single sites;
//! * the same annotation on the first line of an item (its attributes
//!   included), which excuses the *whole item body* — for a function
//!   whose invariant justifies the construct throughout.

use crate::config::Config;
use crate::lexer::{lex, LexedFile, TokenKind};
use crate::scope::ScopeTree;

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule id (the allowlist key).
    pub rule: &'static str,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// Rule id, one-line description, and the long-form rationale shown by
/// `--explain`.
pub struct RuleInfo {
    /// Stable id used in allowlists and diagnostics.
    pub id: &'static str,
    /// What the rule enforces and why (one line, for `--list-rules`).
    pub description: &'static str,
    /// The invariant behind the rule, what it catches, and how to
    /// satisfy or excuse it (multi-line, for `--explain`).
    pub explanation: &'static str,
}

/// Every rule simlint enforces.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-wall-clock",
        description: "Instant/SystemTime outside the walltime/bench modules: \
                      simulated results must never depend on the host clock",
        explanation: "Simulated time is the only clock simulation code may read: any \
                      host-clock influence makes runs irreproducible across machines and \
                      breaks the golden tests. Overhead *measurement* is the one sanctioned \
                      use, and it goes through adainf_simcore::walltime::WallTimer so the \
                      boundary is a single grep-able module. Fix: thread SimTime, or move \
                      the measurement behind WallTimer; benches (crates/bench/) are \
                      allowlisted wholesale in simlint.toml.",
    },
    RuleInfo {
        id: "no-ambient-rng",
        description: "ambient RNG construction (thread_rng, OsRng, RandomState, …): \
                      all randomness must be threaded from simcore::Prng seeds",
        explanation: "Every random draw must be a pure function of the run seed. Ambient \
                      generators (thread_rng, OsRng, hash RandomState) inject host entropy \
                      and destroy bit-reproducibility. Fix: accept a &mut Prng (or a Prng \
                      child via split) from the caller; the run seed enters once, in the \
                      binary that owns the run configuration.",
    },
    RuleInfo {
        id: "no-unordered-iteration",
        description: "HashMap/HashSet in deterministic crates: iteration order is \
                      nondeterministic; use BTreeMap/BTreeSet or a sorted Vec",
        explanation: "HashMap iteration order changes between processes (SipHash keys are \
                      randomized), so any fold/Vec-collect over one silently varies run to \
                      run. Deterministic crates use BTreeMap/BTreeSet or sorted Vecs \
                      instead. Point-lookup-only maps that are provably never iterated may \
                      be allowlisted at module granularity in simlint.toml.",
    },
    RuleInfo {
        id: "forbid-unsafe-everywhere",
        description: "every crate root (lib, bin, bench, example) must carry \
                      #![forbid(unsafe_code)]",
        explanation: "The determinism argument (parallel ≡ sequential bit-equality, \
                      OnceLock slot writes, golden tests) is machine-checked only under \
                      safe Rust: forbid(unsafe_code) turns the whole-workspace guarantee \
                      into a compiler obligation rather than a review convention. Every \
                      crate/target root must carry the attribute; there are no exceptions.",
    },
    RuleInfo {
        id: "no-unwrap-in-lib",
        description: "unwrap()/expect() in library code outside tests: return a \
                      Result, or annotate the site with its invariant",
        explanation: "A panicking extraction in library code turns a recoverable condition \
                      into an abort deep inside the simulation loop. Return Result/Option, \
                      restructure with let-else, or — when the invariant genuinely cannot \
                      fail — keep an expect() and annotate the line with the invariant \
                      (`// simlint: allow(no-unwrap-in-lib) — <why it cannot fail>`). \
                      Binaries (src/bin/) and #[cfg(test)] code are exempt.",
    },
    RuleInfo {
        id: "float-env-guard",
        description: "mul_add/powi/fma on simulation paths would break the \
                      documented -C target-cpu=native bit-safety argument",
        explanation: "The workspace builds with -C target-cpu=native and still promises \
                      bit-identical results across hosts. That argument (DESIGN.md) holds \
                      because simulation code sticks to IEEE-exact +,-,*,/,sqrt and never \
                      invites contraction: mul_add/fma codegen differs by target FMA \
                      support, and powi may lower through different polynomials. Fix: \
                      write the explicit mul-then-add or repeated multiplication.",
    },
    RuleInfo {
        id: "prng-stream-discipline",
        description: "Prng::new only at bin/test entry points; randomness inside \
                      fan_out* closures must come from stably-keyed Prng::split children",
        explanation: "One run seed enters the system once, at the binary or test that owns \
                      the run; everything below receives a Prng (or a split child) from its \
                      caller. A Prng::new inside library code creates a second root stream \
                      whose seed is invisible to the harness — cache hits stop being \
                      bit-identical to rebuilds the moment such a stream moves. Inside a \
                      fan_out* closure the bar is higher still: per-item randomness must \
                      come from Prng::split with a stable per-item key (e.g. \
                      STREAM ^ (period << 16) ^ node), so results do not depend on which \
                      worker claimed the item. Entry-point constructions that ARE the \
                      sanctioned seed boundary carry an inline allow naming that fact.",
    },
    RuleInfo {
        id: "no-adhoc-threading",
        description: "std::thread::spawn/scope only inside simcore/src/parallel.rs: \
                      all parallelism goes through the race-checked fan-out pool",
        explanation: "crates/simcore/src/parallel.rs is the single sanctioned home for \
                      thread spawning: its fan-outs write results into index-addressed \
                      OnceLock slots (parallel ≡ sequential bit-equality), carry the \
                      race-check claim ledger, and are exercised by the schedule-replay \
                      harness (fan_out_check). An ad-hoc thread::spawn elsewhere gets none \
                      of that. Fix: express the work as fan_out / fan_out_indexed / \
                      fan_out_indexed_owned over an index space or owned job list.",
    },
    RuleInfo {
        id: "no-shared-sync-outside-pool",
        description: "Mutex/RwLock/Atomic*/RefCell in deterministic crates only in \
                      sanctioned modules: shared mutability breaks bit-equality",
        explanation: "Deterministic crates promise parallel ≡ sequential bit-equality, and \
                      that proof rests on results flowing only through index-addressed \
                      per-slot writes owned by simcore::parallel. A Mutex or atomic \
                      elsewhere introduces claim-order-dependent state the proof cannot \
                      see (the Vec<Mutex<Matrix>> carry handoff this rule retired is the \
                      canonical example). Fix: restructure onto owned jobs / per-slot \
                      writes (fan_out_indexed_owned), or keep state worker-local.",
    },
    RuleInfo {
        id: "hot-path-alloc",
        description: "allocating calls inside functions listed under [hot] in \
                      simlint.toml: hot paths must reuse their scratch buffers",
        explanation: "The [hot] table in simlint.toml names the functions the perf work \
                      made zero-alloc (GEMM kernels, PCA fits, drift artifact builds — the \
                      TrainScratch/DetectScratch discipline). Inside those functions, \
                      allocating calls (vec!, with_capacity, collect, to_vec, to_owned, \
                      to_string, zeros) are flagged so a refactor cannot quietly \
                      reintroduce per-call allocation. Fix: write into the caller-provided \
                      scratch; a genuinely one-off allocation carries an inline allow with \
                      its amortization argument.",
    },
    RuleInfo {
        id: "no-nondet-float-reduction",
        description: "float .sum()/.fold() with no structurally evident deterministic \
                      order: make the iteration order visible in the statement",
        explanation: "Float addition is non-associative, so a reduction is only \
                      reproducible if its iteration order is fixed. The rule asks for a \
                      *structural* witness of that order in the same statement: an \
                      explicit .iter()/.map()/.windows()/… chain from an ordered source. \
                      A bare it.sum() over an iterator handed in from elsewhere hides the \
                      order at the reduction site; either inline the ordered source or \
                      annotate the line with why the order is fixed (e.g. \"caller \
                      guarantees ascending index order\").",
    },
];

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Crates whose state must be iteration-order independent and free of
/// shared-mutability primitives (the deterministic core of the engine).
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/core/",
    "crates/gpusim/",
    "crates/driftgen/",
    "crates/simcore/",
    "crates/baselines/",
    "crates/apps/",
    "crates/modelzoo/",
];

/// Library crates whose `src/` (minus `src/bin/`) falls under
/// no-unwrap-in-lib, prng-stream-discipline and float-env-guard. The
/// root package's `src/` is handled separately.
const LIB_CRATES: &[&str] = &[
    "crates/core/",
    "crates/gpusim/",
    "crates/driftgen/",
    "crates/simcore/",
    "crates/baselines/",
    "crates/apps/",
    "crates/modelzoo/",
    "crates/nn/",
    "crates/harness/",
];

/// The one module allowed to spawn threads and hold sync primitives:
/// the race-checked fan-out pool.
const SANCTIONED_POOL: &str = "crates/simcore/src/parallel.rs";

/// Identifiers that read the host clock.
const WALL_CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH", "Date"];

/// Identifiers that construct or reach ambient (unseeded) randomness.
const AMBIENT_RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "RandomState",
    "StdRng",
    "SmallRng",
    "rand",
];

/// Unordered-collection identifiers (including the std entry-API module
/// names, so `hash_map::Entry` cannot slip through).
const UNORDERED_IDENTS: &[&str] = &["HashMap", "HashSet", "hash_map", "hash_set"];

/// Float ops whose codegen (FMA contraction, libm polynomial choice)
/// may vary with the target environment.
const FLOAT_ENV_IDENTS: &[&str] = &["mul_add", "powi", "fma"];

/// Shared-mutability primitives banned outside the sanctioned pool.
const SYNC_IDENTS: &[&str] = &[
    "Mutex", "RwLock", "RefCell", "Condvar", "OnceLock", "OnceCell", "LazyLock", "LazyCell",
];

/// Thread-entry points behind `thread::`.
const THREADING_IDENTS: &[&str] = &["spawn", "scope", "Builder"];

/// Calls that allocate (the hot-path ban set).
const ALLOC_IDENTS: &[&str] = &[
    "with_capacity",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "zeros",
];

/// Float reductions whose order must be witnessed.
const REDUCTION_IDENTS: &[&str] = &["sum", "product", "fold"];

/// Idents that witness a structurally ordered source in the same
/// statement as a reduction.
const ORDER_WITNESS_IDENTS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "enumerate",
    "zip",
    "rev",
    "windows",
    "chunks",
    "chunks_exact",
    "take",
    "skip",
    "step_by",
    "copied",
    "cloned",
    "scan",
    "chain",
    "once",
    "repeat",
    "successors",
    "rows",
    "row",
    "column",
    "data",
    "values",
    "keys",
    "chars",
    "bytes",
    "lines",
    "split",
];

/// Per-file lint context shared by every rule.
struct Ctx<'a> {
    path: &'a str,
    lexed: &'a LexedFile,
    tree: &'a ScopeTree,
    config: &'a Config,
    scoped: bool,
    out: Vec<Diagnostic>,
}

impl Ctx<'_> {
    /// Whether `rule` applies to this file at all: not allowlisted in
    /// simlint.toml, and (in scoped mode) within one of `prefixes`.
    fn in_scope(&self, rule: &'static str, prefixes: Option<&[&str]>) -> bool {
        if self.config.allowed(rule, self.path) {
            return false;
        }
        if !self.scoped {
            return true;
        }
        match prefixes {
            None => true,
            Some(p) => p.iter().any(|pre| self.path.starts_with(pre)),
        }
    }

    /// Whether the token at `idx` is excused for `rule` — by an inline
    /// annotation on its line (or the line above), or by an item-level
    /// annotation on any enclosing item.
    fn excused(&self, idx: usize, rule: &str) -> bool {
        self.lexed.allowed(self.lexed.tokens[idx].line, rule)
            || self.tree.item_allowed(idx, rule)
    }

    fn report(&mut self, idx: usize, rule: &'static str, message: String) {
        self.out.push(Diagnostic {
            path: self.path.to_string(),
            line: self.lexed.tokens[idx].line,
            rule,
            message,
        });
    }

    /// Reports any banned identifier, honouring allows and (optionally)
    /// test scopes and a required leading `.`.
    fn ban_idents(
        &mut self,
        rule: &'static str,
        banned: &[&str],
        require_dot: bool,
        skip_tests: bool,
        message: &str,
    ) {
        for i in 0..self.lexed.tokens.len() {
            let TokenKind::Ident(name) = &self.lexed.tokens[i].kind else {
                continue;
            };
            if !banned.iter().any(|b| b == name) {
                continue;
            }
            if require_dot && !self.prev_is(i, '.') {
                continue;
            }
            if skip_tests && self.tree.in_test(i) {
                continue;
            }
            if self.excused(i, rule) {
                continue;
            }
            let name = name.clone();
            self.report(i, rule, format!("`{name}`: {message}"));
        }
    }

    fn prev_is(&self, i: usize, p: char) -> bool {
        i.checked_sub(1)
            .is_some_and(|j| self.lexed.tokens[j].kind == TokenKind::Punct(p))
    }

    /// Whether tokens at `i..` spell `a::b`.
    fn is_path_call(&self, i: usize, a: &str, b: &str) -> bool {
        let t = &self.lexed.tokens;
        matches!(&t[i].kind, TokenKind::Ident(s) if s == a)
            && matches!(t.get(i + 1).map(|t| &t.kind), Some(TokenKind::Punct(':')))
            && matches!(t.get(i + 2).map(|t| &t.kind), Some(TokenKind::Punct(':')))
            && matches!(t.get(i + 3).map(|t| &t.kind), Some(TokenKind::Ident(s)) if s == b)
    }
}

/// Lints one file. `path` must be workspace-relative with `/`
/// separators. With `scoped = false` (fixture mode) every rule applies
/// regardless of path — except forbid-unsafe-everywhere, which still
/// only fires on crate-root-shaped file names, and no-adhoc-threading /
/// no-shared-sync-outside-pool, which still exempt the sanctioned pool
/// by file name.
pub fn lint_source(path: &str, source: &str, config: &Config, scoped: bool) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let tree = ScopeTree::build(&lexed);
    let mut ctx = Ctx {
        path,
        lexed: &lexed,
        tree: &tree,
        config,
        scoped,
        out: Vec::new(),
    };

    if ctx.in_scope("no-wall-clock", None) {
        ctx.ban_idents(
            "no-wall-clock", WALL_CLOCK_IDENTS, false, false,
            "host wall-clock in simulation code; route timing through \
             adainf_simcore::walltime (overhead metrics) or move it into crates/bench",
        );
    }
    if ctx.in_scope("no-ambient-rng", None) {
        ctx.ban_idents(
            "no-ambient-rng", AMBIENT_RNG_IDENTS, false, false,
            "ambient randomness; construct adainf_simcore::Prng from a run seed \
             (Prng::new / Prng::split) instead",
        );
    }
    if ctx.in_scope("no-unordered-iteration", Some(DETERMINISTIC_CRATES)) {
        ctx.ban_idents(
            "no-unordered-iteration", UNORDERED_IDENTS, false, false,
            "unordered collection in a deterministic crate; use BTreeMap/BTreeSet \
             or a sorted Vec (point-lookup-only maps may be allowlisted)",
        );
    }
    if is_unwrap_scope(path, scoped) && ctx.in_scope("no-unwrap-in-lib", None) {
        ctx.ban_idents(
            "no-unwrap-in-lib", &["unwrap", "expect"], true, true,
            "panicking extraction in library code; return a Result, or keep an \
             `expect` and annotate the line with its invariant",
        );
    }
    if ctx.in_scope("float-env-guard", Some(LIB_OR_ROOT_SRC)) {
        ctx.ban_idents(
            "float-env-guard", FLOAT_ENV_IDENTS, false, false,
            "environment-sensitive float op; write explicit mul+add / repeated \
             multiplication so results stay bit-identical across targets",
        );
    }
    if is_crate_root(path) && ctx.in_scope("forbid-unsafe-everywhere", None) {
        check_forbid_unsafe(&mut ctx);
    }

    // ---- scope-aware rules ----
    if is_unwrap_scope(path, scoped) && ctx.in_scope("prng-stream-discipline", None) {
        check_prng_streams(&mut ctx);
    }
    if !is_sanctioned_pool(path) && ctx.in_scope("no-adhoc-threading", None) {
        check_adhoc_threading(&mut ctx);
    }
    if !is_sanctioned_pool(path)
        && ctx.in_scope("no-shared-sync-outside-pool", Some(DETERMINISTIC_CRATES))
    {
        check_shared_sync(&mut ctx);
    }
    if ctx.in_scope("hot-path-alloc", None) {
        check_hot_path_alloc(&mut ctx);
    }
    if ctx.in_scope("no-nondet-float-reduction", Some(LIB_OR_ROOT_SRC)) {
        check_float_reduction(&mut ctx);
    }

    let mut out = ctx.out;
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Path prefixes whose `src/` files count as library simulation code.
/// (Used via [`is_unwrap_scope`] for the src-only refinement; listed
/// here so the float guard can share the crate list plus root `src/`.)
const LIB_OR_ROOT_SRC: &[&str] = &[
    "crates/core/src/",
    "crates/gpusim/src/",
    "crates/driftgen/src/",
    "crates/simcore/src/",
    "crates/baselines/src/",
    "crates/apps/src/",
    "crates/modelzoo/src/",
    "crates/nn/src/",
    "crates/harness/src/",
    "src/",
];

/// no-unwrap-in-lib / prng-stream-discipline scope: library `src/`
/// files, excluding binary targets (`src/bin/`), which are applications
/// free to panic on startup errors and to construct root seeds.
fn is_unwrap_scope(path: &str, scoped: bool) -> bool {
    if !scoped {
        return true;
    }
    if path.contains("/bin/") {
        return false;
    }
    path.starts_with("src/")
        || LIB_CRATES
            .iter()
            .any(|c| path.starts_with(&format!("{c}src/")))
}

/// Whether `path` is the sanctioned threading/sync module. Fixture mode
/// hands bare file names through; `parallel.rs` keeps the exemption so
/// the real pool can be linted standalone.
fn is_sanctioned_pool(path: &str) -> bool {
    path == SANCTIONED_POOL || path == "parallel.rs"
}

/// Whether `path` is a crate/target root that must carry
/// `#![forbid(unsafe_code)]`: libs, bins, benches and examples.
/// (Integration-test roots are exempt: their code runs against
/// libraries that already forbid unsafe.)
fn is_crate_root(path: &str) -> bool {
    if path == "src/lib.rs" || path == "src/main.rs" {
        return true;
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((_, file)) = rest.split_once('/') {
            if file == "src/lib.rs" || file == "src/main.rs" {
                return true;
            }
            if let Some(bin) = file.strip_prefix("src/bin/") {
                return !bin.contains('/') && bin.ends_with(".rs");
            }
            if let Some(bench) = file.strip_prefix("benches/") {
                return !bench.contains('/') && bench.ends_with(".rs");
            }
            if let Some(ex) = file.strip_prefix("examples/") {
                return !ex.contains('/') && ex.ends_with(".rs");
            }
        }
        return false;
    }
    if let Some(ex) = path.strip_prefix("examples/") {
        return !ex.contains('/') && ex.ends_with(".rs");
    }
    // Fixture mode hands bare file names through `scoped = false`; the
    // caller names forbid-unsafe fixtures `lib.rs`/`main.rs`.
    path == "lib.rs" || path == "main.rs"
}

/// Verifies the file opens with `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(ctx: &mut Ctx<'_>) {
    let toks = &ctx.lexed.tokens;
    let found = toks.windows(8).any(|w| {
        matches!(
            (&w[0].kind, &w[1].kind, &w[2].kind, &w[3].kind, &w[4].kind, &w[5].kind, &w[6].kind, &w[7].kind),
            (
                TokenKind::Punct('#'),
                TokenKind::Punct('!'),
                TokenKind::Punct('['),
                TokenKind::Ident(a),
                TokenKind::Punct('('),
                TokenKind::Ident(b),
                TokenKind::Punct(')'),
                TokenKind::Punct(']'),
            ) if a == "forbid" && b == "unsafe_code"
        )
    });
    if !found && !ctx.lexed.allowed(1, "forbid-unsafe-everywhere") {
        ctx.out.push(Diagnostic {
            path: ctx.path.to_string(),
            line: 1,
            rule: "forbid-unsafe-everywhere",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// prng-stream-discipline: `Prng::new` is an entry-point construct. In
/// library code it is flagged outside tests; inside a `fan_out*`
/// closure it is flagged unconditionally — per-item randomness must be
/// a `Prng::split` child with a stable per-item key, or results depend
/// on worker claim order.
fn check_prng_streams(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.lexed.tokens.len() {
        if !ctx.is_path_call(i, "Prng", "new") {
            continue;
        }
        let rule = "prng-stream-discipline";
        if ctx.excused(i, rule) {
            continue;
        }
        if ctx.tree.in_fan_out_closure(i) {
            ctx.report(
                i,
                rule,
                "`Prng::new` inside a fan_out* closure: per-item randomness must be a \
                 `Prng::split` child keyed by stable item identity (not worker or claim \
                 order), or parallel results diverge from the sequential loop"
                    .to_string(),
            );
        } else if !ctx.tree.in_test(i) {
            ctx.report(
                i,
                rule,
                "`Prng::new` in library code: root streams are constructed once at the \
                 bin/test entry point that owns the run seed; accept a Prng (or a \
                 `Prng::split` child) from the caller instead"
                    .to_string(),
            );
        }
    }
}

/// no-adhoc-threading: `thread::spawn` / `thread::scope` /
/// `thread::Builder` outside the sanctioned pool module.
fn check_adhoc_threading(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.lexed.tokens.len() {
        let rule = "no-adhoc-threading";
        if !THREADING_IDENTS.iter().any(|t| ctx.is_path_call(i, "thread", t)) {
            continue;
        }
        if ctx.excused(i, rule) {
            continue;
        }
        ctx.report(
            i,
            rule,
            "ad-hoc thread creation; all parallelism goes through the race-checked \
             fan-outs in crates/simcore/src/parallel.rs (fan_out / fan_out_indexed / \
             fan_out_indexed_owned)"
                .to_string(),
        );
    }
}

/// no-shared-sync-outside-pool: shared-mutability primitives in
/// deterministic crates, outside the sanctioned pool and tests.
fn check_shared_sync(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.lexed.tokens.len() {
        let TokenKind::Ident(name) = &ctx.lexed.tokens[i].kind else {
            continue;
        };
        let banned =
            SYNC_IDENTS.iter().any(|b| b == name) || name.starts_with("Atomic");
        if !banned {
            continue;
        }
        let rule = "no-shared-sync-outside-pool";
        if ctx.tree.in_test(i) || ctx.excused(i, rule) {
            continue;
        }
        let name = name.clone();
        ctx.report(
            i,
            rule,
            format!(
                "`{name}`: shared-mutability primitive in a deterministic crate; \
                 restructure onto owned jobs / index-addressed per-slot writes \
                 (simcore::parallel), or keep the state worker-local"
            ),
        );
    }
}

/// hot-path-alloc: allocating calls inside `[hot]`-listed functions.
fn check_hot_path_alloc(ctx: &mut Ctx<'_>) {
    let Some(hot_fns) = ctx.config.hot_fns(ctx.path) else {
        return;
    };
    let hot_fns = hot_fns.to_vec();
    for i in 0..ctx.lexed.tokens.len() {
        let TokenKind::Ident(name) = &ctx.lexed.tokens[i].kind else {
            continue;
        };
        let is_vec_macro = name == "vec"
            && matches!(
                ctx.lexed.tokens.get(i + 1).map(|t| &t.kind),
                Some(TokenKind::Punct('!'))
            );
        if !is_vec_macro && !ALLOC_IDENTS.iter().any(|b| b == name) {
            continue;
        }
        let rule = "hot-path-alloc";
        let Some(fn_name) = ctx.tree.enclosing_fn(i) else {
            continue;
        };
        if !hot_fns.iter().any(|f| f == fn_name) {
            continue;
        }
        if ctx.tree.in_test(i) || ctx.excused(i, rule) {
            continue;
        }
        let name = if is_vec_macro { "vec!".to_string() } else { name.clone() };
        let fn_name = fn_name.to_string();
        ctx.report(
            i,
            rule,
            format!(
                "`{name}` allocates inside hot function `{fn_name}` (listed under \
                 [hot] in simlint.toml); write into the caller-provided scratch \
                 buffer instead"
            ),
        );
    }
}

/// no-nondet-float-reduction: `.sum()` / `.product()` / `.fold()` whose
/// statement shows no ordered-source witness.
fn check_float_reduction(ctx: &mut Ctx<'_>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let TokenKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if !REDUCTION_IDENTS.iter().any(|b| b == name) || !ctx.prev_is(i, '.') {
            continue;
        }
        if !is_call_position(toks, i) {
            continue; // field access like `s.sum`, not a reduction call
        }
        let rule = "no-nondet-float-reduction";
        if ctx.tree.in_test(i) || ctx.excused(i, rule) {
            continue;
        }
        // Walk back to the statement head (`;`, `{`, `}`) looking for a
        // structural witness of ordered iteration.
        let mut j = i;
        let mut witnessed = false;
        while j > 0 {
            j -= 1;
            match &toks[j].kind {
                TokenKind::Punct(';' | '{' | '}') => break,
                TokenKind::Ident(id) if ORDER_WITNESS_IDENTS.iter().any(|w| w == id) => {
                    witnessed = true;
                    break;
                }
                _ => {}
            }
        }
        if witnessed {
            continue;
        }
        let name = name.clone();
        ctx.report(
            i,
            rule,
            format!(
                "`.{name}()` with no ordered source in this statement; float reduction \
                 order must be structurally evident (an explicit .iter()/.map()/… chain) \
                 or the line annotated with why the order is fixed"
            ),
        );
    }
}

/// Whether the ident at `i` is immediately called: followed by `(`,
/// optionally through a `::<…>` turbofish.
fn is_call_position(toks: &[crate::lexer::Token], i: usize) -> bool {
    let mut j = i + 1;
    if matches!(toks.get(j).map(|t| &t.kind), Some(TokenKind::Punct(':')))
        && matches!(toks.get(j + 1).map(|t| &t.kind), Some(TokenKind::Punct(':')))
        && matches!(toks.get(j + 2).map(|t| &t.kind), Some(TokenKind::Punct('<')))
    {
        let mut depth = 0i64;
        j += 2;
        while let Some(t) = toks.get(j) {
            match t.kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    matches!(toks.get(j).map(|t| &t.kind), Some(TokenKind::Punct('(')))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &Config::default(), true)
    }

    #[test]
    fn wall_clock_flagged_everywhere() {
        let d = lint("crates/harness/src/sim.rs", "use std::time::Instant;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-wall-clock");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unordered_scope_is_the_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert!(lint("crates/gpusim/src/memory.rs", src)
            .iter()
            .any(|d| d.rule == "no-unordered-iteration"));
        // simlint itself may hash; nn is not in the scope either.
        assert!(lint("crates/simlint/src/rules.rs", src).is_empty());
    }

    #[test]
    fn unwrap_skips_cfg_test_and_bins() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() { None::<u8>.unwrap(); }\n}\n";
        let d = lint("crates/core/src/plan.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert!(lint("crates/harness/src/bin/adainf-sim.rs", src)
            .iter()
            .all(|d| d.rule == "forbid-unsafe-everywhere"));
    }

    #[test]
    fn test_fn_attribute_also_exempts_unwrap() {
        let src = "#[test]\nfn unit() { None::<u8>.unwrap(); }\n";
        assert!(lint("crates/core/src/plan.rs", src).is_empty());
    }

    #[test]
    fn unwrap_requires_method_position() {
        // A local named `expect`, or `unwrap_or`, must not fire.
        let src = "pub fn f() { let expect = 1; let _ = Some(2).unwrap_or(expect); }\n";
        assert!(lint("crates/core/src/plan.rs", src).is_empty());
    }

    #[test]
    fn inline_allow_suppresses_with_reason() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n\
                   // simlint: allow(no-unwrap-in-lib) — caller checked is_some\n\
                   x.expect(\"checked\") }\n";
        assert!(lint("crates/core/src/plan.rs", src).is_empty());
    }

    #[test]
    fn item_level_allow_covers_the_whole_fn() {
        let src = "// simlint: allow(no-unwrap-in-lib) — table built in ctor, keys total\n\
                   pub fn f(x: Option<u8>, y: Option<u8>) -> u8 {\n\
                   x.unwrap() + y.unwrap()\n}\n\
                   pub fn g(z: Option<u8>) -> u8 { z.unwrap() }\n";
        let d = lint("crates/core/src/plan.rs", src);
        assert_eq!(d.len(), 1, "only g's unwrap fires: {d:?}");
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots_only() {
        let missing = "pub fn f() {}\n";
        let present = "//! doc\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint("crates/core/src/lib.rs", missing)
            .iter()
            .any(|d| d.rule == "forbid-unsafe-everywhere"));
        assert!(lint("crates/core/src/lib.rs", present).is_empty());
        assert!(lint("crates/core/src/plan.rs", missing).is_empty());
        assert!(lint("crates/bench/src/bin/fig08.rs", missing).len() == 1);
        assert!(lint("examples/quickstart.rs", missing).len() == 1);
    }

    #[test]
    fn float_env_guard_fires_on_lib_src() {
        let src = "#![forbid(unsafe_code)]\npub fn f(a: f64) -> f64 { a.mul_add(2.0, 1.0) }\n";
        assert!(lint("crates/nn/src/lib.rs", src)
            .iter()
            .any(|d| d.rule == "float-env-guard"));
    }

    #[test]
    fn toml_allowlist_is_honoured() {
        let config =
            Config::parse("[allow]\nno-wall-clock = [\"crates/bench/\"]\n").expect("parses");
        let d = lint_source(
            "crates/bench/src/lib.rs",
            "#![forbid(unsafe_code)]\nuse std::time::Instant;\n",
            &config,
            true,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn ambient_rng_flagged() {
        let d = lint("crates/driftgen/src/stream.rs", "let mut r = rand::thread_rng();\n");
        assert!(d.iter().filter(|d| d.rule == "no-ambient-rng").count() >= 1);
    }

    #[test]
    fn prng_new_flagged_in_lib_but_not_tests_or_bins() {
        let src = "pub fn f() -> Prng { Prng::new(7) }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() -> Prng { Prng::new(1) }\n}\n";
        let d = lint("crates/core/src/drift_cache.rs", src);
        assert_eq!(
            d.iter().filter(|d| d.rule == "prng-stream-discipline").count(),
            1,
            "{d:?}"
        );
        assert_eq!(d[0].line, 1);
        // Binaries own the run seed.
        assert!(lint("crates/harness/src/bin/calibration.rs", src)
            .iter()
            .all(|d| d.rule != "prng-stream-discipline"));
    }

    #[test]
    fn prng_new_inside_fan_out_closure_flagged_even_in_tests() {
        let src = "#[test]\nfn t() {\n  fan_out_indexed(4, 0, S::default, |i, s| {\n\
                   let mut r = Prng::new(i as u64);\n    r.next_u64()\n  });\n}\n";
        let d = lint("crates/core/src/drift_cache.rs", src);
        assert_eq!(
            d.iter().filter(|d| d.rule == "prng-stream-discipline").count(),
            1,
            "{d:?}"
        );
        // Split children with stable keys are the sanctioned pattern.
        let clean = "pub fn f(root: &Prng) {\n  fan_out_indexed(4, 0, S::default, |i, s| {\n\
                     let mut r = root.split(0xD21F ^ i as u64);\n    r.next_u64()\n  });\n}\n";
        assert!(lint("crates/core/src/drift_cache.rs", clean).is_empty());
    }

    #[test]
    fn adhoc_threading_flagged_outside_pool() {
        let src = "pub fn f() { std::thread::spawn(move || work()); }\n";
        let d = lint("crates/harness/src/sim.rs", src);
        assert_eq!(
            d.iter().filter(|d| d.rule == "no-adhoc-threading").count(),
            1,
            "{d:?}"
        );
        assert!(lint("crates/simcore/src/parallel.rs", src)
            .iter()
            .all(|d| d.rule != "no-adhoc-threading"));
    }

    #[test]
    fn shared_sync_flagged_in_deterministic_crates_only() {
        let src = "use std::sync::Mutex;\npub struct S { m: Mutex<u8> }\n";
        let d = lint("crates/core/src/drift_cache.rs", src);
        assert!(d.iter().any(|d| d.rule == "no-shared-sync-outside-pool"), "{d:?}");
        // harness is not in the deterministic-crate scope; the pool is exempt.
        assert!(lint("crates/harness/src/sim.rs", src)
            .iter()
            .all(|d| d.rule != "no-shared-sync-outside-pool"));
        assert!(lint("crates/simcore/src/parallel.rs", src)
            .iter()
            .all(|d| d.rule != "no-shared-sync-outside-pool"));
    }

    #[test]
    fn atomics_in_tests_are_fine() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::sync::atomic::AtomicUsize;\n}\n";
        assert!(lint("crates/core/src/drift_cache.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_uses_the_hot_table() {
        let config = Config::parse(
            "[hot]\n\"crates/nn/src/matrix.rs\" = [\"matmul_into\"]\n",
        )
        .expect("parses");
        let src = "pub fn matmul_into(out: &mut [f32], xs: &[f32]) {\n\
                   let tmp = xs.to_vec();\n  out[0] = tmp[0];\n}\n\
                   pub fn cold(xs: &[f32]) -> Vec<f32> { xs.to_vec() }\n";
        let d = lint_source("crates/nn/src/matrix.rs", src, &config, true);
        assert_eq!(
            d.iter().filter(|d| d.rule == "hot-path-alloc").count(),
            1,
            "only the hot fn fires: {d:?}"
        );
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn float_reduction_needs_a_witness() {
        let bad = "pub fn total(it: I) -> f64 { it.sum() }\n";
        let d = lint("crates/core/src/space.rs", bad);
        assert_eq!(
            d.iter().filter(|d| d.rule == "no-nondet-float-reduction").count(),
            1,
            "{d:?}"
        );
        let good = "pub fn total(xs: &[f64]) -> f64 { xs.iter().sum() }\n";
        assert!(lint("crates/core/src/space.rs", good).is_empty());
        let chained = "pub fn norm(v: &[f32]) -> f32 {\n\
                       let s: f32 = v.iter().map(|x| x * x).sum();\n  s\n}\n";
        assert!(lint("crates/core/src/space.rs", chained).is_empty());
        // `sum` as a field or free fn is not a reduction call.
        let field = "pub fn f(s: &Stats) -> f64 { s.sum }\n";
        assert!(lint("crates/core/src/space.rs", field).is_empty());
    }
}
