//! simlint CLI: lint the workspace (default) or explicit files.
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage/IO errors.
//!
//! Output formats (`--format=…`):
//!
//! * `text` (default) — `file:line: rule-id: message`, one per line;
//! * `json` — a single object `{"violations": N, "files_scanned": N,
//!   "diagnostics": [{"path", "line", "rule", "message"}, …]}`, for the
//!   CI artifact;
//! * `github` — GitHub Actions workflow commands
//!   (`::error file=…,line=…,title=…::…`) so violations surface as PR
//!   annotations.

#![forbid(unsafe_code)]

use simlint::rules::{lint_source, rule_info, Diagnostic, RULES};
use simlint::{lint_workspace, load_config, workspace_root};
use std::path::Path;
use std::process::ExitCode;

/// How diagnostics are rendered.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!(
            "simlint — workspace determinism & invariant lints\n\n\
             usage: simlint [--list-rules] [--explain RULE] [--format=text|json|github] [FILE.rs ...]\n\n\
             With no files, lints every .rs file in the workspace using the\n\
             path-scoped rules and the simlint.toml allowlist. With explicit\n\
             files, every rule applies regardless of path (fixture mode);\n\
             inline `// simlint: allow(rule)` annotations are still honoured,\n\
             both per-line and on the first line of an item (whole-body).\n"
        );
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for rule in RULES {
            println!("{:<30} {}", rule.id, compact(rule.description));
        }
        return ExitCode::SUCCESS;
    }
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(id) = args.get(pos + 1) else {
            eprintln!("simlint: --explain needs a rule id (see --list-rules)");
            return ExitCode::from(2);
        };
        let Some(rule) = rule_info(id) else {
            eprintln!("simlint: unknown rule `{id}` (see --list-rules)");
            return ExitCode::from(2);
        };
        println!("{}\n  {}\n", rule.id, compact(rule.description));
        println!("{}", wrap(rule.explanation, 78));
        return ExitCode::SUCCESS;
    }

    let mut format = Format::Text;
    let mut files = Vec::new();
    for arg in &args {
        if let Some(f) = arg.strip_prefix("--format=") {
            format = match f {
                "text" => Format::Text,
                "json" => Format::Json,
                "github" => Format::Github,
                other => {
                    eprintln!("simlint: unknown format `{other}` (text|json|github)");
                    return ExitCode::from(2);
                }
            };
        } else if arg.starts_with("--") {
            eprintln!("simlint: unknown flag {arg} (see --help)");
            return ExitCode::from(2);
        } else {
            files.push(arg.clone());
        }
    }

    let root = workspace_root();
    let (diagnostics, scanned) = if files.is_empty() {
        match lint_workspace(&root) {
            Ok(report) => (report.diagnostics, report.files_scanned),
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let config = match load_config(&root) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        };
        let mut all = Vec::new();
        for file in &files {
            let source = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("simlint: {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            // Explicit files are linted under every rule; only the file
            // name matters (for the crate-root/pool checks).
            let name = Path::new(file)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| file.clone());
            all.extend(lint_source(&name, &source, &config, false));
        }
        (all, files.len())
    };

    match format {
        Format::Text => {
            for d in &diagnostics {
                println!("{d}");
            }
        }
        Format::Json => println!("{}", render_json(&diagnostics, scanned)),
        Format::Github => {
            for d in &diagnostics {
                // GitHub workflow commands strip at newlines; messages are
                // single-line already, but escape the command syntax.
                println!(
                    "::error file={},line={},title=simlint {}::{}",
                    d.path,
                    d.line,
                    d.rule,
                    gh_escape(&d.message)
                );
            }
        }
    }
    if diagnostics.is_empty() {
        eprintln!("simlint: {scanned} file(s) clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} violation(s) in {scanned} file(s); see DESIGN.md \
             § Determinism invariants for rules and allowlisting",
            diagnostics.len()
        );
        ExitCode::FAILURE
    }
}

/// Collapses the multi-line string literals in rule tables to one line.
fn compact(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Greedy word wrap for `--explain` output.
fn wrap(s: &str, width: usize) -> String {
    let mut out = String::new();
    let mut col = 0;
    for word in s.split_whitespace() {
        if col > 0 && col + 1 + word.len() > width {
            out.push('\n');
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(word);
        col += word.len();
    }
    out
}

/// Renders the diagnostics report as a JSON object (std-only, so the
/// escaping is hand-rolled; diagnostic text is ASCII by construction).
fn render_json(diagnostics: &[Diagnostic], scanned: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"violations\": {}, \"files_scanned\": {}, \"diagnostics\": [",
        diagnostics.len(),
        scanned
    ));
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&d.path),
            d.line,
            json_string(d.rule),
            json_string(&d.message)
        ));
    }
    out.push_str("]}");
    out
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes GitHub workflow-command message data (`%`, CR, LF).
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}
