//! simlint CLI: lint the workspace (default) or explicit files.
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage/IO errors.

#![forbid(unsafe_code)]

use simlint::rules::{lint_source, RULES};
use simlint::{lint_workspace, load_config, workspace_root};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!(
            "simlint — workspace determinism & invariant lints\n\n\
             usage: simlint [--list-rules] [FILE.rs ...]\n\n\
             With no files, lints every .rs file in the workspace using the\n\
             path-scoped rules and the simlint.toml allowlist. With explicit\n\
             files, every rule applies regardless of path (fixture mode);\n\
             inline `// simlint: allow(rule)` annotations are still honoured.\n"
        );
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for rule in RULES {
            println!("{:<26} {}", rule.id, rule.description);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("simlint: unknown flag {flag} (see --help)");
        return ExitCode::from(2);
    }

    let root = workspace_root();
    let (diagnostics, scanned) = if args.is_empty() {
        match lint_workspace(&root) {
            Ok(report) => (report.diagnostics, report.files_scanned),
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let config = match load_config(&root) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        };
        let mut all = Vec::new();
        for file in &args {
            let source = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("simlint: {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            // Explicit files are linted under every rule; only the file
            // name matters (for the crate-root check).
            let name = Path::new(file)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| file.clone());
            all.extend(lint_source(&name, &source, &config, false));
        }
        (all, args.len())
    };

    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        eprintln!("simlint: {scanned} file(s) clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} violation(s) in {scanned} file(s); see DESIGN.md \
             § Determinism invariants for rules and allowlisting",
            diagnostics.len()
        );
        ExitCode::FAILURE
    }
}
