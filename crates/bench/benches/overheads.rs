//! Criterion micro-benchmarks for the Table 1 CPU-side overheads.
//!
//! * `session_scheduling/*` — one AdaInf/Ekya/Scrooge `on_session` call
//!   for an 8-application session (the paper's AdaInf takes ~2 ms, Ekya's
//!   period heuristic 8.4 s, Scrooge's optimiser 100 ms; our in-simulator
//!   decision paths are far cheaper, but their *relative* cost ordering
//!   is preserved and the absolute numbers are what Table 1's regenerator
//!   reports). Shared with the `table1` binary via
//!   `adainf_bench::decision_bench`.
//! * `period_planning/*` — drift detection + RI-DAG generation for the
//!   8-app deployment (the "periodical DAG update").
//! * `memory/eviction` — priority-eviction throughput of the GPU memory
//!   manager under thrash.
//! * `nn/*` — the mini-NN substrate (forward, SGD step, PCA fit).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adainf_bench::decision_bench;
use adainf_core::drift_detect::detect_drift;
use adainf_core::AdaInfConfig;
use adainf_gpusim::content::{ContentKey, TaskContext};
use adainf_gpusim::memory::AccessIntent;
use adainf_gpusim::{EvictionPolicyKind, GpuMemory, MemoryConfig};
use adainf_nn::pca::Pca;
use adainf_nn::{EarlyExitMlp, Matrix, MlpConfig, TrainBatch};
use adainf_simcore::{Prng, SimTime};

fn bench_session_scheduling(c: &mut Criterion) {
    decision_bench::bench_session_scheduling(c);
}

fn bench_period_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("period_planning");
    group.sample_size(10);
    group.bench_function("drift_detection_8_apps", |b| {
        let mut apps = decision_bench::Scenario::standard().apps;
        let config = AdaInfConfig::default();
        let rng = Prng::new(1);
        b.iter(|| {
            for rt in &mut apps {
                black_box(detect_drift(rt, &config, &rng));
            }
        })
    });
    group.finish();
}

fn bench_memory_eviction(c: &mut Criterion) {
    c.bench_function("memory/eviction_thrash", |b| {
        let mut mem = GpuMemory::new(MemoryConfig {
            gpu_capacity: 10_000_000,
            pin_capacity: 2_000_000,
            policy: EvictionPolicyKind::Priority,
            ..MemoryConfig::default()
        });
        let mut clock = 0u64;
        b.iter(|| {
            clock += 1;
            // Rotating working set twice the capacity → every access
            // evicts.
            let key = ContentKey::param(1, (clock % 40) as u32, 0);
            black_box(mem.access(
                key,
                500_000,
                TaskContext::Inference,
                clock,
                0,
                400.0,
                AccessIntent::Fetch,
                SimTime::from_micros(clock),
            ))
        })
    });
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = Prng::new(3);
    let mut net = EarlyExitMlp::new(MlpConfig::small(16, 6), &mut rng);
    let data: Vec<f32> = (0..32 * 16).map(|i| ((i % 17) as f32) / 17.0).collect();
    let inputs = Matrix::from_slice(32, 16, &data);
    let labels: Vec<usize> = (0..32).map(|i| i % 6).collect();
    let batch = TrainBatch {
        inputs: inputs.clone(),
        labels,
    };
    // Full structure: `small` has two exits, so the last valid index is 1.
    let full_exit = net.num_exits() - 1;
    c.bench_function("nn/forward_batch32", |b| {
        b.iter(|| black_box(net.predict(black_box(&inputs), full_exit)))
    });
    c.bench_function("nn/sgd_step_batch32", |b| {
        b.iter(|| black_box(net.train_batch(black_box(&batch))))
    });
    c.bench_function("nn/pca_fit_8", |b| {
        b.iter(|| black_box(Pca::fit(black_box(&inputs), 8, &mut rng)))
    });
}

criterion_group!(
    benches,
    bench_session_scheduling,
    bench_period_planning,
    bench_memory_eviction,
    bench_nn
);
criterion_main!(benches);
