//! Criterion micro-benchmarks for the retraining backward pass.
//!
//! * `train/train_slice` — one staged per-(app, node) retraining slice
//!   through an external [`TrainSliceScratch`], the exact unit of work
//!   the period-boundary fan-out deals to its pool workers.
//! * `train/batch_parts_sgd` — the raw early-exit backward pass with
//!   the blocked gradient GEMM and the fused momentum update.
//! * `train/batch_parts_adam` — the same pass under the fused Adam
//!   update kernel.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adainf_driftgen::{TaskStream, TaskStreamConfig};
use adainf_modelzoo::{zoo, TrainSliceScratch, TrainableModel};
use adainf_nn::layer::Update;
use adainf_nn::{EarlyExitMlp, MlpConfig, TrainScratch};
use adainf_simcore::Prng;

fn training_batch(n: usize) -> adainf_driftgen::LabeledSamples {
    let root = Prng::new(77);
    let mut stream = TaskStream::new(
        TaskStreamConfig::new("vehicle", 6, 9).with_drift(0.4, 0.2),
        &root,
    );
    stream.sample(n)
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    group.sample_size(10);

    let root = Prng::new(77);
    let batch = training_batch(400);

    group.bench_function("train_slice", |b| {
        let mut rng = root.split(1);
        let mut model = TrainableModel::new(zoo::mobilenet_v2(), 6, &mut rng);
        let mut scratch = TrainSliceScratch::default();
        b.iter(|| {
            model.train_slice_with(black_box(&batch), 1, &mut scratch);
            black_box(model.version())
        })
    });

    let features = {
        let mut rng = root.split(1);
        let model = TrainableModel::new(zoo::mobilenet_v2(), 6, &mut rng);
        model.features(&batch)
    };

    group.bench_function("batch_parts_sgd", |b| {
        let mut rng = root.split(2);
        let mut net = EarlyExitMlp::new(
            MlpConfig::small(features.cols(), 6),
            &mut rng,
        );
        let mut scratch = TrainScratch::default();
        b.iter(|| {
            black_box(net.train_batch_parts_with(
                black_box(&features),
                black_box(&batch.labels),
                &mut scratch,
            ))
        })
    });

    group.bench_function("batch_parts_adam", |b| {
        let mut rng = root.split(3);
        let mut net = EarlyExitMlp::new(
            MlpConfig {
                update: Some(Update::adam(1e-3)),
                ..MlpConfig::small(features.cols(), 6)
            },
            &mut rng,
        );
        let mut scratch = TrainScratch::default();
        b.iter(|| {
            black_box(net.train_batch_parts_with(
                black_box(&features),
                black_box(&batch.labels),
                &mut scratch,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
