//! Criterion micro-benchmarks for the power-iteration PCA kernel.
//!
//! * `pca/fit_cold` — a full fit from keyed random starts, the cost of
//!   the first period (or any model-version bump) per `(app, node)`.
//! * `pca/fit_warm` — the same fit warm-started from the basis of a fit
//!   over slightly perturbed data, the steady-state per-period cost once
//!   the drift cache carries the previous basis forward. The convergence
//!   early-exit should make this several times cheaper than cold.
//!
//! Data shape mirrors the drift path: a few hundred feature rows at the
//! head-layer width, reduced to `pca_components = 8` directions.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adainf_nn::pca::{Pca, PcaScratch};
use adainf_nn::Matrix;
use adainf_simcore::Prng;

const ROWS: usize = 400;
const COLS: usize = 48;
const K: usize = 8;

/// Anisotropic data with a clear dominant subspace, like head-layer
/// features: a few strong directions plus isotropic noise.
fn feature_matrix(rng: &mut Prng, jitter: f32) -> Matrix {
    let dirs: Vec<Vec<f32>> = (0..K)
        .map(|_| (0..COLS).map(|_| rng.gauss() as f32).collect())
        .collect();
    let mut data = Vec::with_capacity(ROWS * COLS);
    for _ in 0..ROWS {
        let mut row = vec![0.0f32; COLS];
        for (j, dir) in dirs.iter().enumerate() {
            let scale = (K - j) as f32 * rng.gauss() as f32;
            for (r, d) in row.iter_mut().zip(dir) {
                *r += scale * d;
            }
        }
        for r in &mut row {
            *r += jitter * rng.gauss() as f32;
        }
        data.extend_from_slice(&row);
    }
    Matrix::from_slice(ROWS, COLS, &data)
}

fn bench_pca(c: &mut Criterion) {
    let mut group = c.benchmark_group("pca");
    group.sample_size(20);

    let mut rng = Prng::new(99);
    let data = feature_matrix(&mut rng, 0.5);
    // The warm basis comes from a fit over perturbed data — the drift
    // cache's situation at a period boundary (pools shifted slightly,
    // model unchanged).
    let prev = feature_matrix(&mut rng, 0.6);
    let mut fit_rng = Prng::new(7);
    let warm_basis = Pca::fit(&prev, K, &mut fit_rng).into_components();

    group.bench_function("fit_cold", |b| {
        let mut scratch = PcaScratch::default();
        b.iter(|| {
            let mut r = Prng::new(7);
            black_box(Pca::fit_with_scratch(
                black_box(&data),
                K,
                &mut r,
                &mut scratch,
            ))
        })
    });

    group.bench_function("fit_warm", |b| {
        let mut scratch = PcaScratch::default();
        b.iter(|| {
            let mut r = Prng::new(7);
            black_box(Pca::fit_warm_with_scratch(
                black_box(&data),
                K,
                &mut r,
                &mut scratch,
                Some(&warm_basis),
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pca);
criterion_main!(benches);
