//! Criterion benches guarding the engine's hot paths.
//!
//! * `gemm/*` — the `Matrix` multiply kernels driving every SGD
//!   retraining step, in both the allocating and the `_into`
//!   (caller-owned output) forms, at the MLP's steady-state shapes.
//! * `decision_path/*` — the AdaInf §3.3.2 batch/structure search with
//!   the decision cache on vs off.
//! * `end_to_end/tiny_run` — one complete 20 s, 2-application
//!   simulation through the public `run` entry point, so a regression
//!   anywhere in the stack shows up even if every micro-bench holds.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adainf_bench::decision_bench;
use adainf_harness::sim::{run, RunConfig};
use adainf_nn::Matrix;
use adainf_simcore::{Prng, SimDuration};

fn random_matrix(rows: usize, cols: usize, rng: &mut Prng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gauss() as f32).collect();
    Matrix::from_slice(rows, cols, &data)
}

/// Batch 32 through a 256→64 layer: the steady-state SGD shapes.
fn bench_gemm(c: &mut Criterion) {
    let mut rng = Prng::new(11);
    let a = random_matrix(32, 256, &mut rng);
    let b = random_matrix(256, 64, &mut rng);
    let at = random_matrix(32, 256, &mut rng); // for selfᵀ × other
    let bt = random_matrix(32, 64, &mut rng);
    let wt = random_matrix(64, 256, &mut rng); // for self × otherᵀ
    let mut out = Matrix::zeros(0, 0);

    let mut group = c.benchmark_group("gemm");
    group.bench_function("matmul_32x256x64_alloc", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
    });
    group.bench_function("matmul_into_32x256x64", |bch| {
        bch.iter(|| black_box(&a).matmul_into(black_box(&b), &mut out))
    });
    group.bench_function("t_matmul_into_256x32x64", |bch| {
        bch.iter(|| black_box(&at).t_matmul_into(black_box(&bt), &mut out))
    });
    group.bench_function("matmul_t_into_32x256x64", |bch| {
        bch.iter(|| black_box(&a).matmul_t_into(black_box(&wt), &mut out))
    });
    group.finish();
}

fn bench_decision_path(c: &mut Criterion) {
    decision_bench::bench_decision_cache(c);
}

fn bench_tiny_run(c: &mut Criterion) {
    let config = RunConfig {
        duration: SimDuration::from_secs(20),
        num_apps: 2,
        seed: 1,
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("tiny_run_2apps_20s", |b| {
        b.iter(|| black_box(run(config.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_decision_path, bench_tiny_run);
criterion_main!(benches);
