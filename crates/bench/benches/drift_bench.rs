//! Criterion micro-benchmarks for the §3.2 drift pipeline.
//!
//! * `drift/detect_uncached` — one full `detect_drift` over a drifted
//!   multi-model application (fresh artifacts every call, the cost a
//!   scheduler without the artifact cache pays per period and app).
//! * `drift/detect_plus_retrain_cached` — a period's worth of scheduler
//!   work through a shared [`DriftCache`]: detection plus one
//!   retraining-order lookup per node, paying for each node's
//!   feature/PCA/ranking artifacts once.
//! * `drift/retrain_order_single_node` — the standalone §3.3.2
//!   deviation-ordered retraining selection for one node.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adainf_apps::{catalog, AppRuntime};
use adainf_core::drift_cache::{DetectScratch, DriftCache};
use adainf_core::drift_detect::{detect_drift, detect_drift_cached, retrain_order};
use adainf_core::AdaInfConfig;
use adainf_driftgen::workload::ArrivalConfig;
use adainf_simcore::Prng;

fn drifted_runtime(periods: usize) -> AppRuntime {
    let root = Prng::new(314);
    let mut rt = AppRuntime::new(
        catalog::video_surveillance(0),
        ArrivalConfig::default(),
        800,
        &root,
    );
    for _ in 0..periods {
        rt.advance_period();
    }
    rt
}

fn bench_drift(c: &mut Criterion) {
    let mut group = c.benchmark_group("drift");
    group.sample_size(10);

    let rt = drifted_runtime(3);
    let config = AdaInfConfig::default();
    let root = Prng::new(7);

    group.bench_function("detect_uncached", |b| {
        b.iter(|| black_box(detect_drift(black_box(&rt), &config, &root)))
    });

    group.bench_function("detect_plus_retrain_cached", |b| {
        b.iter(|| {
            let mut cache = DriftCache::new(true);
            let report = detect_drift_cached(&rt, 0, &config, &mut cache, &root);
            for node in 0..rt.spec.nodes.len() {
                black_box(
                    cache
                        .artifacts(0, &rt, node, config.pca_components, &root)
                        .retrain
                        .len(),
                );
            }
            black_box(report)
        })
    });

    group.bench_function("retrain_order_single_node", |b| {
        let mut scratch = DetectScratch::default();
        b.iter(|| black_box(retrain_order(&rt, 1, config.pca_components, &root, &mut scratch)))
    });

    group.finish();
}

criterion_group!(benches, bench_drift);
criterion_main!(benches);
