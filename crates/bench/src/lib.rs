//! # adainf-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation:
//!
//! * One binary per figure/table (`fig04` … `fig24`, `table1`, `table2`,
//!   plus `run_all`), each printing the same rows/series the paper
//!   reports. All accept `--fast` (150 s horizon) and `--full` (the
//!   paper's 1000 s) flags; the default is 500 s.
//! * Criterion micro-benchmarks (`benches/`) for the Table 1 CPU-side
//!   overheads: session scheduling latency (the paper's 2 ms), drift
//!   detection / DAG update (the paper's 4.2 s), memory-manager eviction
//!   throughput, and the mini-NN substrate.

#![forbid(unsafe_code)]

pub mod decision_bench;

pub use adainf_harness::experiments;

/// Entry helper shared by the figure binaries: parse scale, run, print.
pub fn main_for(name: &str, f: fn(experiments::Scale) -> String) {
    let args: Vec<String> = std::env::args().collect();
    let scale = experiments::Scale::from_args(&args);
    eprintln!("[{name}] running at {scale:?} scale …");
    let t0 = std::time::Instant::now();
    let out = f(scale);
    println!("{out}");
    eprintln!("[{name}] done in {:.1}s", t0.elapsed().as_secs_f64());
}
