//! Shared decision-latency measurement for Table 1 and the criterion
//! benches.
//!
//! Table 1's "session scheduling" column is a *measured* number: one
//! `on_session` call on the standard 8-application deployment, timed by
//! the criterion harness. The `benches/overheads.rs` and
//! `benches/hotpath.rs` benchmark targets and the `table1` binary all
//! call into this module so the reported latency and the standalone
//! bench are literally the same code path.

use criterion::Criterion;
use std::hint::black_box;
use std::time::Duration;

use adainf_apps::{apps_for_count, AppRuntime, AppSpec};
use adainf_baselines::{EkyaScheduler, ScroogeScheduler};
use adainf_core::plan::{Scheduler, SessionCtx};
use adainf_core::profiler::Profiler;
use adainf_core::{AdaInfConfig, AdaInfScheduler};
use adainf_driftgen::workload::ArrivalConfig;
use adainf_gpusim::GpuSpec;
use adainf_simcore::{Prng, SimDuration, SimTime};

/// The fixed 8-application scenario every decision bench runs against.
pub struct Scenario {
    /// Application runtimes, advanced two periods so drift is present.
    pub apps: Vec<AppRuntime>,
    /// The per-app specs (what schedulers are constructed from).
    pub specs: Vec<AppSpec>,
    /// A 4-GPU edge server.
    pub server: GpuSpec,
    /// Predicted per-app arrivals for the next session.
    pub predicted: Vec<u32>,
    /// Remaining retraining-pool samples per (app, node).
    pub pools: Vec<Vec<usize>>,
}

impl Scenario {
    /// Builds the standard deployment: 8 apps, two periods in, 4 GPUs.
    pub fn standard() -> Self {
        let root = Prng::new(42);
        let mut apps: Vec<AppRuntime> = apps_for_count(8)
            .into_iter()
            .map(|s| AppRuntime::new(s, ArrivalConfig::default(), 1000, &root))
            .collect();
        for rt in &mut apps {
            rt.advance_period();
            rt.advance_period();
        }
        let specs = apps.iter().map(|a| a.spec.clone()).collect();
        let pools = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        Scenario {
            apps,
            specs,
            server: GpuSpec::with_gpus(4),
            predicted: vec![32u32; 8],
            pools,
        }
    }

    /// The session context handed to every scheduler under test.
    pub fn ctx(&self, now: SimTime) -> SessionCtx<'_> {
        SessionCtx {
            now,
            predicted: &self.predicted,
            server: &self.server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(60),
            pool_remaining: &self.pools,
        }
    }
}

/// Benches one `on_session` call per method (`session_scheduling/*`).
pub fn bench_session_scheduling(c: &mut Criterion) {
    let mut s = Scenario::standard();
    let mut group = c.benchmark_group("session_scheduling");
    {
        let mut sched = AdaInfScheduler::new(
            AdaInfConfig::default(),
            Profiler::default(),
            s.specs.clone(),
            7,
        );
        sched.on_period_start(&mut s.apps, &s.server, SimTime::ZERO);
        let ctx = s.ctx(SimTime::ZERO);
        group.bench_function("adainf", |b| {
            b.iter(|| black_box(sched.on_session(black_box(&ctx))))
        });
    }
    {
        let mut sched = EkyaScheduler::new(Profiler::default(), s.specs.clone());
        sched.on_period_start(&mut s.apps, &s.server, SimTime::ZERO);
        let ctx = s.ctx(SimTime::from_secs(1));
        group.bench_function("ekya", |b| {
            b.iter(|| black_box(sched.on_session(black_box(&ctx))))
        });
    }
    {
        let mut sched = ScroogeScheduler::new(Profiler::default(), s.specs.clone());
        sched.on_period_start(&mut s.apps, &s.server, SimTime::ZERO);
        let ctx = s.ctx(SimTime::from_secs(1));
        group.bench_function("scrooge", |b| {
            b.iter(|| black_box(sched.on_session(black_box(&ctx))))
        });
    }
    group.finish();
}

/// Benches the AdaInf §3.3.2 search with the decision cache on vs off
/// (`decision_path/{cached,uncached}`). Same scenario, same context;
/// the cached variant answers repeat sessions from the memo table.
pub fn bench_decision_cache(c: &mut Criterion) {
    let mut s = Scenario::standard();
    let mut group = c.benchmark_group("decision_path");
    for (id, cache) in [("cached", true), ("uncached", false)] {
        let config = AdaInfConfig {
            decision_cache: cache,
            ..AdaInfConfig::default()
        };
        let mut sched =
            AdaInfScheduler::new(config, Profiler::default(), s.specs.clone(), 7);
        sched.on_period_start(&mut s.apps, &s.server, SimTime::ZERO);
        let ctx = s.ctx(SimTime::ZERO);
        group.bench_function(id, |b| {
            b.iter(|| black_box(sched.on_session(black_box(&ctx))))
        });
    }
    group.finish();
}

/// Runs the `session_scheduling/*` bench with a short embedded window
/// and returns `(method name, mean µs per decision)` rows, method names
/// matching `RunMetrics::name` ("AdaInf", "Ekya", "Scrooge").
pub fn measured_decision_latency_us() -> Vec<(String, f64)> {
    let mut c = Criterion::embedded(Duration::from_millis(120));
    bench_session_scheduling(&mut c);
    c.results()
        .iter()
        .map(|(id, ns)| {
            let name = match id.rsplit('/').next().unwrap_or(id) {
                "adainf" => "AdaInf",
                "ekya" => "Ekya",
                "scrooge" => "Scrooge",
                other => other,
            };
            (name.to_string(), ns / 1e3)
        })
        .collect()
}
