//! Regenerates fig07 of the paper. `--fast` / `--full` adjust the horizon.
fn main() {
    adainf_bench::main_for("fig07", adainf_bench::experiments::fig07);
}
