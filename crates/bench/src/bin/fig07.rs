//! Regenerates fig07 of the paper. `--fast` / `--full` adjust the horizon.

#![forbid(unsafe_code)]

fn main() {
    adainf_bench::main_for("fig07", adainf_bench::experiments::fig07);
}
