//! Regenerates fig11 of the paper. `--fast` / `--full` adjust the horizon.

#![forbid(unsafe_code)]

fn main() {
    adainf_bench::main_for("fig11", adainf_bench::experiments::fig11);
}
