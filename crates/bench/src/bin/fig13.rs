//! Regenerates Fig 13 (parameter reuse across jobs; shares the Fig 12 run).

#![forbid(unsafe_code)]

fn main() {
    adainf_bench::main_for("fig13", adainf_bench::experiments::fig12_13);
}
