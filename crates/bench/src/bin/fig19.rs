//! Regenerates Fig 19 (finish-rate comparison; shares the Fig 18 runs).

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = adainf_bench::experiments::Scale::from_args(&args);
    eprintln!("[fig19] running at {scale:?} scale …");
    println!("{}", adainf_bench::experiments::fig18_19a(scale));
    println!("{}", adainf_bench::experiments::fig18_19b(scale));
    println!("{}", adainf_bench::experiments::fig18_19c(scale));
}
