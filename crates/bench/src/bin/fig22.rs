//! Regenerates fig22 of the paper. `--fast` / `--full` adjust the horizon.
fn main() {
    adainf_bench::main_for("fig22", adainf_bench::experiments::fig22);
}
