//! Per-application breakdown (beyond the paper's aggregates): accuracy,
//! finish-relevant latency percentiles and retraining volume for every
//! application under each method. Shows *which* applications each
//! scheduler sacrifices — e.g. Ekya's even shares starving the heavy
//! social-media DAG while light apps cruise.

#![forbid(unsafe_code)]

use adainf_core::AdaInfConfig;
use adainf_harness::experiments::Scale;
use adainf_harness::parallel::run_many;
use adainf_harness::report::{pct, table};
use adainf_harness::sim::Method;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[per_app] running at {scale:?} scale …");
    let base = scale.base();
    let names: Vec<String> = adainf_apps::apps_for_count(base.num_apps)
        .into_iter()
        .map(|a| a.name)
        .collect();
    let runs = run_many(
        vec![
            base.with_method(Method::AdaInf(AdaInfConfig::default())),
            base.with_method(Method::Ekya),
            base.with_method(Method::Scrooge),
        ],
        0,
    );
    for m in &runs {
        let mut rows = Vec::new();
        for (app, name) in names.iter().enumerate() {
            let (p50, p95, p99) = m.latency_percentiles(app);
            let samples: u64 = m.retrain_samples[app].iter().sum();
            rows.push(vec![
                name.clone(),
                m.per_app_accuracy[app]
                    .ratios()
                    .iter()
                    .filter_map(|a| *a)
                    .map(pct)
                    .next_back()
                    .unwrap_or_else(|| "-".into()),
                pct(m.per_app_accuracy[app].mean()),
                format!("{p50:.0}/{p95:.0}/{p99:.0}ms"),
                samples.to_string(),
            ]);
        }
        println!(
            "{} — per-application breakdown\n{}",
            m.name,
            table(
                &[
                    "application",
                    "final-period acc",
                    "mean acc",
                    "latency p50/p95/p99",
                    "retrain samples"
                ],
                &rows
            )
        );
    }
}
