//! The chaos experiment runner: executes every named fault scenario
//! against the AdaInf scheduler and prints the suite's markdown table
//! (see EXPERIMENTS.md § Chaos suite). Exits non-zero if any scenario
//! violates its documented finish-rate floor, so CI can gate on it.
//!
//! `--seed N` picks the suite seed (default 11); `--fast` is accepted
//! for symmetry with the other runners (the suite horizon is already
//! short).

#![forbid(unsafe_code)]

use adainf_harness::chaos::{report, run_suite};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut seed = 11u64;
    for (i, a) in args.iter().enumerate() {
        if a == "--seed" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                seed = v;
            }
        }
    }
    eprintln!("[chaos] running fault scenarios at seed {seed} …");
    let outcomes = run_suite(seed);
    println!("## Chaos suite (seed {seed})\n");
    println!("{}", report(&outcomes));
    let failed: Vec<&str> = outcomes
        .iter()
        .filter(|o| !o.passed)
        .map(|o| o.name.as_str())
        .collect();
    if !failed.is_empty() {
        eprintln!("[chaos] bound violations: {}", failed.join(", "));
        std::process::exit(1);
    }
    eprintln!("[chaos] all scenarios held their floors");
}
