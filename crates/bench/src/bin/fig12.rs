//! Regenerates Figs 12a/12b (content reuse-time CDFs).

#![forbid(unsafe_code)]

fn main() {
    adainf_bench::main_for("fig12", adainf_bench::experiments::fig12_13);
}
