//! Regenerates fig04 of the paper. `--fast` / `--full` adjust the horizon.
fn main() {
    adainf_bench::main_for("fig04", adainf_bench::experiments::fig04);
}
