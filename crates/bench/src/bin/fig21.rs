//! Regenerates fig21 of the paper. `--fast` / `--full` adjust the horizon.
fn main() {
    adainf_bench::main_for("fig21", adainf_bench::experiments::fig21);
}
