//! Regenerates fig21 of the paper. `--fast` / `--full` adjust the horizon.

#![forbid(unsafe_code)]

fn main() {
    adainf_bench::main_for("fig21", adainf_bench::experiments::fig21);
}
