//! Intra-period accuracy trajectories (beyond the paper's figures): the
//! 5-second-window accuracy of AdaInf vs Ekya vs Scrooge across two
//! retraining periods, making the incremental-retraining mechanism of
//! Fig 3 directly visible — AdaInf recovers smoothly from the start of
//! each period, Ekya steps up at its ~22 s retraining completion,
//! Scrooge only near the period end.
//!
//! Doubles as the repo's perf-trajectory harness: each method's run is
//! wall-clock timed and the totals are written to `BENCH_sim.json`
//! (per-suite wall seconds, sessions/sec, mean scheduler-decision µs,
//! decision-cache hit rate) so every PR's perf delta is visible. The
//! simulated results are unaffected by the timing — runs are
//! deterministic functions of their configs.

#![forbid(unsafe_code)]

use adainf_core::AdaInfConfig;
use adainf_harness::experiments::Scale;
use adainf_harness::json;
use adainf_harness::metrics::RunMetrics;
use adainf_harness::parallel::run_many;
use adainf_harness::report::table;
use adainf_harness::sim::{Method, RunConfig};
use std::time::Instant;

/// One timed suite: the run's metrics plus its wall-clock seconds.
struct TimedRun {
    metrics: RunMetrics,
    wall_s: f64,
}

/// Bench-smoke ceiling on AdaInf's mean per-period drift wall time (µs),
/// as budgeted for the reference hardware class: ≥ 8 cores feeding the
/// parallel per-(app, node) artifact fan-out. The default run carries 21
/// build jobs per period at ~2.2 ms each after the kernel/warm-start/
/// feature-carry work (~47 ms serialized, ~6 ms across 8 cores) plus
/// ~7 ms of sequential S-loop detection — comfortably under 18 ms when
/// the fan-out actually fans out. See EXPERIMENTS.md "drift wall" for
/// the measured breakdown.
const DRIFT_DETECT_CEILING_US: f64 = 18_000.0;

/// The ceiling, adjusted for the host actually running the smoke. The
/// fan-out serializes on hosts with fewer cores than the reference
/// budget assumes, so the prebuild portion of the budget stretches by
/// the missing parallelism (8 / cores); the guard still fails on any
/// host if the *serialized* data path regresses. On ≥ 8 cores this is
/// exactly [`DRIFT_DETECT_CEILING_US`].
fn drift_ceiling_us() -> f64 {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    DRIFT_DETECT_CEILING_US * (8.0 / cores as f64).max(1.0)
}

/// Bench-smoke ceiling on AdaInf's mean per-period drift *critical
/// path* (µs) on the reference ≥ 8-core class: with the overlapped
/// period pipeline the serving loop pays only snapshot + spawn, the
/// sequential S-loop sweep (~7 ms) and whatever join waits remain
/// after the accuracy-value refresh filled the overlap window — the
/// ~40 ms of artifact builds run behind serving. Budgeted at 10 ms,
/// ≥ 5× under the pre-overlap inline wall (~97 ms serialized).
const DRIFT_CRITICAL_CEILING_US: f64 = 10_000.0;

/// The critical-path ceiling for the host running the smoke. Below the
/// 8-core reference class the background stage timeshares with the
/// serving loop, so "blocked" time converges on total drift work and
/// the overlap win is unmeasurable — the guard then falls back to the
/// (stretched) total-work ceiling, which still catches data-path
/// regressions.
fn drift_critical_ceiling_us() -> f64 {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 8 {
        DRIFT_CRITICAL_CEILING_US
    } else {
        drift_ceiling_us()
    }
}

fn bench_json(scale: Scale, runs: &[TimedRun], total_wall_s: f64) -> String {
    let suites = runs.iter().map(|r| {
        let m = &r.metrics;
        let s = m.summary();
        let sessions = m.sched_overhead.count();
        let mut fields = vec![
            ("name", json::string(&m.name)),
            ("wall_s", json::num(r.wall_s)),
            ("sessions", json::int(sessions)),
            (
                "sessions_per_sec",
                json::num(sessions as f64 / r.wall_s.max(1e-9)),
            ),
            (
                "sched_decision_us",
                json::num(m.sched_overhead.mean() * 1e3),
            ),
            ("cache_hit_rate", json::num(s.cache_hit_rate)),
            // Per-phase wall breakdown: total drift work per period,
            // the slice of it that actually blocked the serving loop
            // (the overlap's critical path), and the serve/train walls.
            ("drift_detect_us", json::num(s.drift_detect_us)),
            ("drift_detect_p99_us", json::num(s.drift_detect_p99_us)),
            (
                "drift_critical_path_us",
                json::num(s.drift_critical_path_us),
            ),
            ("serve_us", json::num(s.serve_us)),
            ("train_us", json::num(s.train_us)),
        ];
        // The resolved pool width, only for suites that ran one: a
        // pool-less scheduler omits the column rather than reporting a
        // misleading 0.
        if let Some(w) = s.worker_threads {
            fields.push(("worker_threads", json::int(w as u64)));
        }
        // Predictor calibration trajectory columns: mean forecast
        // error, its first/last run-quartile split (convergence),
        // and the fraction of predicted-to-fit jobs that violated.
        fields.extend([
            (
                "predicted_latency_mae_us",
                json::num(s.predicted_latency_mae_us),
            ),
            (
                "predicted_rel_err_first_q",
                json::num(m.predicted_rel_err_quartile(0)),
            ),
            (
                "predicted_rel_err_last_q",
                json::num(m.predicted_rel_err_quartile(3)),
            ),
            (
                "headroom_violation_rate",
                json::num(s.headroom_violation_rate),
            ),
        ]);
        json::object(fields)
    });
    let total_sessions: u64 =
        runs.iter().map(|r| r.metrics.sched_overhead.count()).sum();
    json::object([
        ("generator", json::string("trajectory")),
        ("scale", json::string(&format!("{scale:?}"))),
        ("suites", json::array(suites)),
        ("total_wall_s", json::num(total_wall_s)),
        (
            "total_sessions_per_sec",
            json::num(total_sessions as f64 / total_wall_s.max(1e-9)),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[trajectory] running at {scale:?} scale ...");
    let base = RunConfig {
        duration: adainf_simcore::SimDuration::from_secs(200),
        ..scale.base()
    };
    // Time each method's run separately (runs are independent, so the
    // simulated output is identical to one batched run_many call).
    let t0 = Instant::now();
    let mut runs = Vec::new();
    for config in [
        // The predictor rides along on the AdaInf run: pristine runs
        // are bit-identical with it on (admission only fires in fault
        // windows — pinned by tests/golden.rs), and the calibration
        // columns below need its observation stream.
        base.with_method(Method::AdaInf(AdaInfConfig {
            predicted_latency: true,
            ..AdaInfConfig::default()
        })),
        base.with_method(Method::Ekya),
        base.with_method(Method::Scrooge),
    ] {
        let start = Instant::now();
        let metrics = run_many(vec![config], 0).pop().expect("one run");
        runs.push(TimedRun {
            metrics,
            wall_s: start.elapsed().as_secs_f64(),
        });
    }
    let total_wall_s = t0.elapsed().as_secs_f64();

    let series: Vec<Vec<Option<f64>>> = runs
        .iter()
        .map(|r| r.metrics.accuracy_fine.ratios())
        .collect();
    let windows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut rows = Vec::new();
    for w in (0..windows).step_by(2) {
        let mut row = vec![format!("{}s", w * 5)];
        for s in &series {
            row.push(
                s.get(w)
                    .copied()
                    .flatten()
                    .map(|v| format!("{:.1}%", v * 100.0))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    println!(
        "Intra-period accuracy trajectory (5 s windows, 100-200 s shown over two periods)\n{}",
        table(&["t", "AdaInf", "Ekya", "Scrooge"], &rows)
    );

    let bench = bench_json(scale, &runs, total_wall_s);
    match std::fs::write("BENCH_sim.json", format!("{bench}\n")) {
        Ok(()) => eprintln!(
            "[trajectory] wrote BENCH_sim.json ({total_wall_s:.2}s total wall)"
        ),
        Err(e) => eprintln!("[trajectory] could not write BENCH_sim.json: {e}"),
    }

    // Bench-smoke guard: the drift data path must stay fast. Mean µs per
    // period over the whole AdaInf run, compared against the documented
    // ceiling above (stretched for hosts that serialize the fan-out).
    let ceiling = drift_ceiling_us();
    let critical_ceiling = drift_critical_ceiling_us();
    for r in &runs {
        let s = r.metrics.summary();
        if s.name == "AdaInf" && s.drift_detect_us > ceiling {
            eprintln!(
                "[trajectory] FAIL: AdaInf drift_detect_us {:.0} exceeds the \
                 {ceiling:.0} µs ceiling",
                s.drift_detect_us
            );
            std::process::exit(1);
        }
        // The overlapped pipeline's promise: drift work mostly runs
        // behind serving, so the serving loop's blocked time stays far
        // under the total drift wall on hosts with cores to spare.
        if s.name == "AdaInf" && s.drift_critical_path_us > critical_ceiling {
            eprintln!(
                "[trajectory] FAIL: AdaInf drift_critical_path_us {:.0} \
                 exceeds the {critical_ceiling:.0} µs ceiling",
                s.drift_critical_path_us
            );
            std::process::exit(1);
        }
    }

    // Bench-smoke guard: the calibration columns must be present and
    // finite for every suite (schedulers without a predictor report an
    // exact 0.0), and the AdaInf predictor must actually converge over
    // the run — last-quartile relative error strictly below the first
    // quartile's warm-up error.
    for r in &runs {
        let s = r.metrics.summary();
        if !s.predicted_latency_mae_us.is_finite()
            || !s.headroom_violation_rate.is_finite()
        {
            eprintln!(
                "[trajectory] FAIL: {} calibration columns not finite \
                 (mae {}, violation rate {})",
                s.name, s.predicted_latency_mae_us, s.headroom_violation_rate
            );
            std::process::exit(1);
        }
        if s.name == "AdaInf" {
            let first = r.metrics.predicted_rel_err_quartile(0);
            let last = r.metrics.predicted_rel_err_quartile(3);
            if s.predicted_latency_mae_us <= 0.0 {
                eprintln!(
                    "[trajectory] FAIL: AdaInf predictor never scored a \
                     forecast (mae {})",
                    s.predicted_latency_mae_us
                );
                std::process::exit(1);
            }
            if last >= first {
                eprintln!(
                    "[trajectory] FAIL: AdaInf predictor did not converge: \
                     first-quartile relative error {first:.4} ≤ \
                     last-quartile {last:.4}"
                );
                std::process::exit(1);
            }
        }
    }
}
