//! Intra-period accuracy trajectories (beyond the paper's figures): the
//! 5-second-window accuracy of AdaInf vs Ekya vs Scrooge across two
//! retraining periods, making the incremental-retraining mechanism of
//! Fig 3 directly visible — AdaInf recovers smoothly from the start of
//! each period, Ekya steps up at its ~22 s retraining completion,
//! Scrooge only near the period end.
use adainf_core::AdaInfConfig;
use adainf_harness::experiments::Scale;
use adainf_harness::parallel::run_many;
use adainf_harness::report::table;
use adainf_harness::sim::{Method, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[trajectory] running at {scale:?} scale ...");
    let base = RunConfig {
        duration: adainf_simcore::SimDuration::from_secs(200),
        ..scale.base()
    };
    let runs = run_many(
        vec![
            base.with_method(Method::AdaInf(AdaInfConfig::default())),
            base.with_method(Method::Ekya),
            base.with_method(Method::Scrooge),
        ],
        0,
    );
    let series: Vec<Vec<Option<f64>>> =
        runs.iter().map(|m| m.accuracy_fine.ratios()).collect();
    let windows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut rows = Vec::new();
    for w in (0..windows).step_by(2) {
        let mut row = vec![format!("{}s", w * 5)];
        for s in &series {
            row.push(
                s.get(w)
                    .copied()
                    .flatten()
                    .map(|v| format!("{:.1}%", v * 100.0))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    println!(
        "Intra-period accuracy trajectory (5 s windows, 100-200 s shown over two periods)\n{}",
        table(&["t", "AdaInf", "Ekya", "Scrooge"], &rows)
    );
}
