//! Regenerates table2 of the paper. `--fast` / `--full` adjust the horizon.
fn main() {
    adainf_bench::main_for("table2", adainf_bench::experiments::table2);
}
