//! Regenerates table2 of the paper. `--fast` / `--full` adjust the horizon.

#![forbid(unsafe_code)]

fn main() {
    adainf_bench::main_for("table2", adainf_bench::experiments::table2);
}
