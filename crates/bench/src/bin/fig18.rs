//! Regenerates Fig 18 (accuracy comparison: default, #apps, #GPUs).
//! Prints Fig 19's finish-rate columns too (the runs are shared).

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = adainf_bench::experiments::Scale::from_args(&args);
    eprintln!("[fig18] running at {scale:?} scale …");
    println!("{}", adainf_bench::experiments::fig18_19a(scale));
    println!("{}", adainf_bench::experiments::fig18_19b(scale));
    println!("{}", adainf_bench::experiments::fig18_19c(scale));
}
