//! Regenerates every table and figure in sequence (use `--fast` for a
//! quick pass; `--full` for the paper's 1000 s horizon).

#![forbid(unsafe_code)]

use adainf_bench::experiments as ex;

/// A named figure regenerator.
type Item = (&'static str, fn(ex::Scale) -> String);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = ex::Scale::from_args(&args);
    let items: Vec<Item> = vec![
        ("fig04", ex::fig04),
        ("fig05", ex::fig05),
        ("fig06", ex::fig06),
        ("fig07", ex::fig07),
        ("fig08", ex::fig08),
        ("fig09", ex::fig09),
        ("fig10", ex::fig10),
        ("fig11", ex::fig11),
        ("fig12+13", ex::fig12_13),
        ("fig18/19a", ex::fig18_19a),
        ("fig18/19b", ex::fig18_19b),
        ("fig18/19c", ex::fig18_19c),
        ("fig20", ex::fig20),
        ("fig21", ex::fig21),
        ("fig22", ex::fig22),
        ("fig23", ex::fig23),
        ("fig24", ex::fig24),
        ("table1", ex::table1),
        ("table2", ex::table2),
    ];
    // `trajectory` and `extensions` cover material beyond the paper's
    // figures; run them via their own binaries.
    for (name, f) in items {
        eprintln!("=== {name} ===");
        let t0 = std::time::Instant::now();
        println!("{}", f(scale));
        eprintln!("[{name}] {:.1}s", t0.elapsed().as_secs_f64());
    }
}
