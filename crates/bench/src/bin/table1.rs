//! Regenerates table1 of the paper. `--fast` / `--full` adjust the horizon.
fn main() {
    adainf_bench::main_for("table1", adainf_bench::experiments::table1);
}
