//! Regenerates table1 of the paper. `--fast` / `--full` adjust the horizon.
//!
//! Unlike the other figure binaries this one first runs the embedded
//! criterion decision-latency bench (`decision_bench`) so the "session
//! scheduling" column reports the measured cost of one `on_session`
//! call rather than the in-run mean.

#![forbid(unsafe_code)]

use adainf_bench::{decision_bench, experiments};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = experiments::Scale::from_args(&args);
    eprintln!("[table1] running at {scale:?} scale …");
    let t0 = std::time::Instant::now();
    let sched_us = decision_bench::measured_decision_latency_us();
    for (name, us) in &sched_us {
        eprintln!("[table1] decision latency {name}: {us:.2} µs");
    }
    let out = experiments::table1_with_decision_bench(scale, &sched_us);
    println!("{out}");
    eprintln!("[table1] done in {:.1}s", t0.elapsed().as_secs_f64());
}
