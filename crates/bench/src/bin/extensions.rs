//! Ablation bench for the §6 extension features (not in the paper's
//! evaluation — these regenerate the "Limitations and Discussion"
//! directions as measurable experiments):
//!
//! * CPU offload of low-rate sessions (`cpu_offload_threshold`).
//! * One-shot joint batch/space decision (`joint_batch_space`).
//! * A heterogeneous GPU fleet (4 reference GPUs vs 2 fast + 4 half-speed
//!   at the same total capacity).

#![forbid(unsafe_code)]

use adainf_core::AdaInfConfig;
use adainf_harness::experiments::Scale;
use adainf_harness::report::{pct, table};
use adainf_harness::sim::{run, Method, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[extensions] running at {scale:?} scale …");
    let base = scale.base();

    let rows: Vec<Vec<String>> = [
        ("AdaInf (baseline)", base.clone()),
        (
            "+ CPU offload (<=4 req)",
            RunConfig {
                method: Method::AdaInf(AdaInfConfig {
                    cpu_offload_threshold: 4,
                    ..AdaInfConfig::default()
                }),
                ..base.clone()
            },
        ),
        (
            "+ joint batch/space",
            RunConfig {
                method: Method::AdaInf(AdaInfConfig {
                    joint_batch_space: true,
                    ..AdaInfConfig::default()
                }),
                ..base.clone()
            },
        ),
        (
            "heterogeneous fleet 2x1.0+4x0.5",
            RunConfig {
                device_factors: vec![1.0, 1.0, 0.5, 0.5, 0.5, 0.5].into(),
                ..base.clone()
            },
        ),
        (
            "+ PCIe bus contention (profiled)",
            RunConfig {
                comm: Some(adainf_core::profiler::CommProfile {
                    // Contended links raise every strategy's inflation;
                    // measured with the detailed engine's TransferBus.
                    grouped_priority: 1.18,
                    grouped_lru: 1.28,
                    per_request_priority: 1.34,
                    per_request_lru: 1.45,
                }),
                ..base.clone()
            },
        ),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        let m = run(cfg);
        vec![
            name.to_string(),
            pct(m.mean_accuracy()),
            pct(m.mean_finish_rate()),
            format!("{:.1}ms", m.inference_latency.mean()),
        ]
    })
    .collect();

    println!(
        "§6 extension ablations\n{}",
        table(
            &["configuration", "accuracy", "finish rate", "inference latency"],
            &rows
        )
    );
}
