//! Request-arrival workload.
//!
//! The paper replays the Twitter streaming trace as its inference request
//! rate ("resembles real-world inference workload", §2). We synthesise an
//! equivalent non-stationary rate curve: a base rate modulated by a slow
//! sinusoid (diurnal shape compressed into the run), an
//! Ornstein–Uhlenbeck-style jitter, and occasional bursts. Arrivals within
//! a 5 ms session are Poisson at the instantaneous rate.

use adainf_simcore::{Prng, SimTime};
use adainf_simcore::time::SESSION;

/// Configuration of an arrival trace.
#[derive(Clone, Debug)]
pub struct ArrivalConfig {
    /// Mean request rate (requests per second).
    pub base_rate: f64,
    /// Relative amplitude of the slow sinusoidal modulation in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Period of the sinusoid in seconds.
    pub diurnal_period_s: f64,
    /// Std-dev of the multiplicative OU jitter.
    pub jitter: f64,
    /// Expected bursts per 100 s of trace.
    pub bursts_per_100s: f64,
    /// Burst rate multiplier.
    pub burst_gain: f64,
    /// Burst duration in seconds.
    pub burst_len_s: f64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            base_rate: 3200.0,
            diurnal_amplitude: 0.35,
            diurnal_period_s: 400.0,
            jitter: 0.08,
            bursts_per_100s: 1.5,
            burst_gain: 1.8,
            burst_len_s: 8.0,
        }
    }
}

/// A reproducible request-rate trace with Poisson per-session arrivals.
#[derive(Clone, Debug)]
pub struct ArrivalTrace {
    config: ArrivalConfig,
    rng: Prng,
    /// Current OU jitter state (log-space).
    ou: f64,
    /// Remaining burst time in seconds (0 when not bursting).
    burst_left: f64,
    /// Last second for which state was advanced.
    last_advanced_s: i64,
}

impl ArrivalTrace {
    /// Creates a trace; `seed` distinguishes per-application traces.
    pub fn new(config: ArrivalConfig, seed: u64, root: &Prng) -> Self {
        ArrivalTrace {
            config,
            rng: root.split(seed ^ WORKLOAD_TAG),
            ou: 0.0,
            burst_left: 0.0,
            last_advanced_s: -1,
        }
    }

    /// Instantaneous rate (requests/second) at simulated time `t`,
    /// advancing the stochastic state at 1 s granularity.
    pub fn rate_at(&mut self, t: SimTime) -> f64 {
        let sec = t.as_secs_f64();
        let sec_i = sec.floor() as i64;
        while self.last_advanced_s < sec_i {
            self.last_advanced_s += 1;
            // OU step toward 0 with jitter.
            self.ou = self.ou * 0.9 + self.rng.gauss() * self.config.jitter;
            if self.burst_left > 0.0 {
                self.burst_left -= 1.0;
            } else if self
                .rng
                .chance(self.config.bursts_per_100s / 100.0)
            {
                self.burst_left = self.config.burst_len_s;
            }
        }
        let diurnal = 1.0
            + self.config.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * sec / self.config.diurnal_period_s)
                    .sin();
        let burst = if self.burst_left > 0.0 {
            self.config.burst_gain
        } else {
            1.0
        };
        (self.config.base_rate * diurnal * burst * self.ou.exp()).max(0.0)
    }

    /// Number of requests arriving in the 5 ms session starting at `t`.
    pub fn requests_in_session(&mut self, t: SimTime) -> u32 {
        let rate = self.rate_at(t);
        self.rng.poisson(rate * SESSION.as_secs_f64()) as u32
    }
}

/// Tag constant for the RNG split (see `stream::STREAM_TAG`).
const WORKLOAD_TAG: u64 = 0x1BAD_B002_FEED_F00D;

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_simcore::time::SECOND;

    #[test]
    fn mean_arrivals_track_base_rate() {
        let root = Prng::new(10);
        let mut trace = ArrivalTrace::new(ArrivalConfig::default(), 1, &root);
        let mut total = 0u64;
        let sessions = 40_000; // 200 s of sessions.
        for i in 0..sessions {
            let t = SimTime::from_micros(i * 5_000);
            total += trace.requests_in_session(t) as u64;
        }
        let secs = sessions as f64 * 0.005;
        let rate = total as f64 / secs;
        // Diurnal + bursts average out near base_rate; wide tolerance.
        assert!(
            (rate - 3200.0).abs() < 3200.0 * 0.35,
            "observed mean rate {rate}"
        );
    }

    #[test]
    fn rate_is_nonstationary() {
        let root = Prng::new(11);
        let mut trace = ArrivalTrace::new(ArrivalConfig::default(), 2, &root);
        let mut rates = Vec::new();
        for s in 0..400 {
            rates.push(trace.rate_at(SimTime::from_micros(s * SECOND)));
        }
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.3, "rate should vary: {min}..{max}");
    }

    #[test]
    fn traces_deterministic_per_seed_and_distinct_across_seeds() {
        let root = Prng::new(12);
        let mut a = ArrivalTrace::new(ArrivalConfig::default(), 7, &root);
        let mut b = ArrivalTrace::new(ArrivalConfig::default(), 7, &root);
        let mut c = ArrivalTrace::new(ArrivalConfig::default(), 8, &root);
        let mut same = true;
        let mut diff = false;
        for i in 0..1000 {
            let t = SimTime::from_micros(i * 5_000);
            let (ra, rb, rc) = (
                a.requests_in_session(t),
                b.requests_in_session(t),
                c.requests_in_session(t),
            );
            same &= ra == rb;
            diff |= ra != rc;
        }
        assert!(same, "same seed must reproduce");
        assert!(diff, "different seeds must differ");
    }

    #[test]
    fn bursts_raise_the_rate() {
        let root = Prng::new(21);
        let cfg = ArrivalConfig {
            diurnal_amplitude: 0.0,
            jitter: 0.0,
            bursts_per_100s: 100.0, // burst (almost) always active
            burst_gain: 2.0,
            burst_len_s: 5.0,
            ..ArrivalConfig::default()
        };
        let mut bursty = ArrivalTrace::new(cfg.clone(), 1, &root);
        let calm_cfg = ArrivalConfig {
            bursts_per_100s: 0.0,
            ..cfg
        };
        let mut calm = ArrivalTrace::new(calm_cfg, 1, &root);
        let mut hi = 0.0;
        let mut lo = 0.0;
        for s in 1..100 {
            hi += bursty.rate_at(SimTime::from_micros(s * SECOND));
            lo += calm.rate_at(SimTime::from_micros(s * SECOND));
        }
        assert!(hi > lo * 1.5, "bursty {hi} vs calm {lo}");
    }

    #[test]
    fn zero_rate_config_yields_no_arrivals() {
        let root = Prng::new(13);
        let cfg = ArrivalConfig {
            base_rate: 0.0,
            ..ArrivalConfig::default()
        };
        let mut trace = ArrivalTrace::new(cfg, 1, &root);
        for i in 0..100 {
            assert_eq!(
                trace.requests_in_session(SimTime::from_micros(i * 5_000)),
                0
            );
        }
    }
}
