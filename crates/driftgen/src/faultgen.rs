//! Deterministic, seeded fault-scenario generation.
//!
//! The serving loop's interesting regimes are the overloaded ones the
//! happy path never reaches: request bursts beyond profiled capacity,
//! GPU memory-pressure spikes that trigger eviction storms, retraining
//! pools drained mid-period, and transient device stalls that inflate
//! every kernel. [`FaultSpec`] describes which of those faults a run
//! injects and how hard; [`FaultTimeline::generate`] expands the spec
//! into a fixed, seed-deterministic schedule of [`FaultWindow`]s before
//! the run starts, so the whole chaos experiment remains a pure function
//! of `(config, seed)` like every other part of the simulator.
//!
//! The harness queries [`FaultTimeline::impairments_at`] once per 5 ms
//! session. Outside every window the result is [`Impairments::NEUTRAL`]
//! — bit-for-bit invisible, which is what lets the golden-metrics tests
//! run with the chaos machinery armed but no faults scheduled.

use adainf_simcore::{Prng, SimDuration, SimTime};

/// The kinds of fault the generator can schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Request-rate burst: arrivals multiply by the window's magnitude.
    RateBurst,
    /// GPU memory pressure: enforced capacity collapses to `magnitude`
    /// of the configured bytes, forcing an eviction storm at onset and
    /// reload thrash for as long as the window lasts.
    MemoryPressure,
    /// Retraining-pool starvation: at window start, `magnitude` of every
    /// remaining pool sample is drained (a one-shot event).
    PoolStarvation,
    /// Transient device stall: kernel latency inflates by `magnitude`.
    DeviceStall,
}

impl FaultKind {
    /// Stable RNG-stream label per kind (windows of different kinds are
    /// drawn from independent splits of the fault seed).
    fn stream_tag(self) -> u64 {
        match self {
            FaultKind::RateBurst => 0xFA01_7B57,
            FaultKind::MemoryPressure => 0xFA02_3E30,
            FaultKind::PoolStarvation => 0xFA03_5744,
            FaultKind::DeviceStall => 0xFA04_57A1,
        }
    }

    /// Short display name (chaos reports, scenario tables).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::RateBurst => "rate-burst",
            FaultKind::MemoryPressure => "memory-pressure",
            FaultKind::PoolStarvation => "pool-starvation",
            FaultKind::DeviceStall => "device-stall",
        }
    }
}

/// Cadence and magnitude of one fault kind: roughly one window per
/// `every`, lasting `duration`, with a kind-specific `magnitude`.
///
/// Windows are jittered-periodic rather than Poisson: window `k` starts
/// at `every·k` plus a seeded jitter in `[0.25·every, 0.75·every)`.
/// That keeps scenario tests deterministic *and* guarantees at least
/// one window in any horizon longer than `every` — a pure Poisson
/// schedule can leave a short run fault-free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultLaw {
    /// Mean spacing between window starts.
    pub every: SimDuration,
    /// Length of each window.
    pub duration: SimDuration,
    /// Kind-specific magnitude (rate gain, capacity fraction, drained
    /// pool fraction, or latency inflation).
    pub magnitude: f64,
}

/// Which faults a run injects. `Copy` on purpose: it rides inside the
/// harness run configuration, which is rebuilt with functional-update
/// syntax all over the sweep drivers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault schedule (independent of the run seed, so the
    /// same workload can be replayed under different fault draws).
    pub seed: u64,
    /// Request-burst windows, if any.
    pub rate_burst: Option<FaultLaw>,
    /// Memory-pressure windows, if any.
    pub memory_pressure: Option<FaultLaw>,
    /// Pool-starvation events, if any.
    pub pool_starvation: Option<FaultLaw>,
    /// Device-stall windows, if any.
    pub device_stall: Option<FaultLaw>,
}

impl FaultSpec {
    /// No faults at all — arms the chaos machinery with an empty
    /// timeline. Runs configured this way must reproduce the pristine
    /// goldens bit for bit.
    pub fn none(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// Arrival bursts: 8 s windows roughly every 20 s during which every
    /// application's request rate multiplies by 6 — far past the
    /// profiled capacity of the default configurations.
    pub fn rate_burst(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            rate_burst: Some(FaultLaw {
                every: SimDuration::from_secs(20),
                duration: SimDuration::from_secs(8),
                magnitude: 6.0,
            }),
            ..FaultSpec::default()
        }
    }

    /// Memory-pressure spikes: 10 s windows roughly every 25 s during
    /// which enforced GPU memory collapses to 0.05 % of the configured
    /// capacity (~32 MB of the default 64 GB pool) — below the resident
    /// parameter working set of even two applications, so the onset is
    /// an eviction storm and every session after it thrashes reloads.
    pub fn memory_pressure(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            memory_pressure: Some(FaultLaw {
                every: SimDuration::from_secs(25),
                duration: SimDuration::from_secs(10),
                magnitude: 5.0e-4,
            }),
            ..FaultSpec::default()
        }
    }

    /// Pool starvation: roughly every 20 s, 90 % of every remaining
    /// retraining-pool sample vanishes mid-period.
    pub fn pool_starvation(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            pool_starvation: Some(FaultLaw {
                every: SimDuration::from_secs(20),
                duration: SimDuration::from_secs(1),
                magnitude: 0.9,
            }),
            ..FaultSpec::default()
        }
    }

    /// Transient device stalls: 5 s windows roughly every 20 s during
    /// which every kernel runs 4× slower.
    pub fn device_stall(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            device_stall: Some(FaultLaw {
                every: SimDuration::from_secs(20),
                duration: SimDuration::from_secs(5),
                magnitude: 4.0,
            }),
            ..FaultSpec::default()
        }
    }

    /// Everything at once — the full chaos scenario.
    pub fn chaos(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            rate_burst: FaultSpec::rate_burst(seed).rate_burst,
            memory_pressure: FaultSpec::memory_pressure(seed).memory_pressure,
            pool_starvation: FaultSpec::pool_starvation(seed).pool_starvation,
            device_stall: FaultSpec::device_stall(seed).device_stall,
        }
    }

    /// True when no fault kind is configured.
    pub fn is_empty(&self) -> bool {
        self.rate_burst.is_none()
            && self.memory_pressure.is_none()
            && self.pool_starvation.is_none()
            && self.device_stall.is_none()
    }
}

/// One scheduled fault occurrence: `kind` is active on `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// What happens during the window.
    pub kind: FaultKind,
    /// First session the window covers.
    pub start: SimTime,
    /// Exclusive end of the window.
    pub end: SimTime,
    /// Kind-specific magnitude, copied from the law.
    pub magnitude: f64,
}

impl FaultWindow {
    /// True while `t` falls inside the window.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// The aggregate effect of every window active at one instant. Neutral
/// values (`1.0` everywhere) mean "no fault": the harness skips every
/// chaos code path in that case, which is what keeps an armed-but-empty
/// timeline bit-identical to a run without the chaos machinery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Impairments {
    /// Multiplier on per-session arrivals (product of active bursts).
    pub rate_gain: f64,
    /// Multiplier on kernel latency (product of active stalls).
    pub latency_inflation: f64,
    /// Enforced GPU-capacity fraction (minimum of active pressures).
    pub capacity_frac: f64,
    /// True when any window (of any kind) is active.
    pub impaired: bool,
}

impl Impairments {
    /// No active fault.
    pub const NEUTRAL: Impairments = Impairments {
        rate_gain: 1.0,
        latency_inflation: 1.0,
        capacity_frac: 1.0,
        impaired: false,
    };
}

/// The pre-generated fault schedule of one run.
#[derive(Clone, Debug, Default)]
pub struct FaultTimeline {
    windows: Vec<FaultWindow>,
}

impl FaultTimeline {
    /// Expands `spec` into the concrete window schedule for a run of
    /// `horizon`. Pure in `(spec, root)`: the generator only *splits*
    /// the root RNG (per fault kind), so generating a timeline never
    /// perturbs any other random stream of the run.
    pub fn generate(spec: &FaultSpec, horizon: SimDuration, root: &Prng) -> FaultTimeline {
        let mut windows = Vec::new();
        let laws = [
            (FaultKind::RateBurst, spec.rate_burst),
            (FaultKind::MemoryPressure, spec.memory_pressure),
            (FaultKind::PoolStarvation, spec.pool_starvation),
            (FaultKind::DeviceStall, spec.device_stall),
        ];
        for (kind, law) in laws {
            let Some(law) = law else { continue };
            if law.every == SimDuration::ZERO {
                continue;
            }
            let mut rng = root.split(kind.stream_tag() ^ spec.seed);
            let every = law.every.as_micros();
            for k in 0..u64::MAX {
                let jitter = (every as f64 * (0.25 + 0.5 * rng.f64())) as u64;
                let start = every.saturating_mul(k).saturating_add(jitter);
                if start >= horizon.as_micros() {
                    break;
                }
                windows.push(FaultWindow {
                    kind,
                    start: SimTime::from_micros(start),
                    end: SimTime::from_micros(
                        start.saturating_add(law.duration.as_micros()),
                    ),
                    magnitude: law.magnitude,
                });
            }
        }
        windows.sort_by_key(|w| (w.start, w.kind));
        FaultTimeline { windows }
    }

    /// Every scheduled window, sorted by start time.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows of one kind, in schedule order (the harness consumes
    /// pool-starvation windows one-shot through a cursor).
    pub fn windows_of(&self, kind: FaultKind) -> Vec<FaultWindow> {
        self.windows
            .iter()
            .filter(|w| w.kind == kind)
            .copied()
            .collect()
    }

    /// Aggregate impairments at `t`. Neutral outside every window.
    pub fn impairments_at(&self, t: SimTime) -> Impairments {
        let mut imp = Impairments::NEUTRAL;
        for w in &self.windows {
            if !w.active_at(t) {
                continue;
            }
            imp.impaired = true;
            match w.kind {
                FaultKind::RateBurst => imp.rate_gain *= w.magnitude,
                FaultKind::DeviceStall => imp.latency_inflation *= w.magnitude,
                FaultKind::MemoryPressure => {
                    imp.capacity_frac = imp.capacity_frac.min(w.magnitude);
                }
                FaultKind::PoolStarvation => {}
            }
        }
        imp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimDuration {
        SimDuration::from_secs(60)
    }

    #[test]
    fn empty_spec_generates_empty_timeline() {
        let root = Prng::new(1);
        let tl = FaultTimeline::generate(&FaultSpec::none(7), horizon(), &root);
        assert!(tl.is_empty());
        assert_eq!(
            tl.impairments_at(SimTime::from_secs(10)),
            Impairments::NEUTRAL
        );
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let root = Prng::new(1);
        let a = FaultTimeline::generate(&FaultSpec::chaos(3), horizon(), &root);
        let b = FaultTimeline::generate(&FaultSpec::chaos(3), horizon(), &root);
        assert_eq!(a.windows(), b.windows());
        let c = FaultTimeline::generate(&FaultSpec::chaos(4), horizon(), &root);
        assert_ne!(a.windows(), c.windows(), "different fault seeds must differ");
    }

    #[test]
    fn jittered_periodic_guarantees_coverage() {
        // Every configured kind schedules at least one window per
        // `every`-sized chunk of the horizon (minus the last partial).
        let root = Prng::new(9);
        for spec in [
            FaultSpec::rate_burst(0),
            FaultSpec::memory_pressure(0),
            FaultSpec::pool_starvation(0),
            FaultSpec::device_stall(0),
        ] {
            let tl = FaultTimeline::generate(&spec, horizon(), &root);
            assert!(
                tl.windows().len() >= 2,
                "{spec:?}: {} windows in 60 s",
                tl.windows().len()
            );
        }
    }

    #[test]
    fn impairments_aggregate_per_kind() {
        let root = Prng::new(5);
        let tl = FaultTimeline::generate(&FaultSpec::chaos(5), horizon(), &root);
        // At each burst window's start the rate gain must be active.
        for w in tl.windows_of(FaultKind::RateBurst) {
            let imp = tl.impairments_at(w.start);
            assert!(imp.impaired);
            assert!(imp.rate_gain >= w.magnitude);
        }
        for w in tl.windows_of(FaultKind::MemoryPressure) {
            let imp = tl.impairments_at(w.start);
            assert!(imp.capacity_frac <= w.magnitude);
        }
        for w in tl.windows_of(FaultKind::DeviceStall) {
            let imp = tl.impairments_at(w.start);
            assert!(imp.latency_inflation >= w.magnitude);
        }
        // Just past the end of the last window everything is neutral.
        let last = tl.windows().iter().map(|w| w.end).max();
        if let Some(end) = last {
            assert_eq!(tl.impairments_at(end + SimDuration::from_secs(30)), {
                Impairments::NEUTRAL
            });
        }
    }

    #[test]
    fn windows_do_not_perturb_the_root_stream() {
        // `generate` only splits the root: drawing from the root before
        // and after generation yields the same sequence.
        let root = Prng::new(11);
        let mut a = root.split(1);
        let before: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let _ = FaultTimeline::generate(&FaultSpec::chaos(0), horizon(), &root);
        let mut b = root.split(1);
        let after: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(before, after);
    }
}
