//! Reproducible trace export.
//!
//! A deployment's stochastic inputs — the per-session request counts and
//! the per-period label distributions of every task stream — can be
//! exported as a [`Trace`] and rendered to CSV, so a run's workload can
//! be inspected, plotted, or replayed against an external system without
//! re-deriving it from the seed.

use crate::stream::TaskStream;
use crate::workload::ArrivalTrace;
use adainf_simcore::time::SESSION;
use adainf_simcore::SimTime;
use std::fmt::Write as _;

/// An exported workload/drift trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Requests per 5 ms session.
    pub arrivals: Vec<u32>,
    /// Label distribution per period per task (task-major).
    pub label_distributions: Vec<Vec<Vec<f64>>>,
}

impl Trace {
    /// Records `sessions` sessions of arrivals from `arrival` and
    /// `periods` periods of label distributions from each stream
    /// (advancing the streams). Both generators are consumed
    /// deterministically, so the same seed reproduces the same trace.
    pub fn capture(
        arrival: &mut ArrivalTrace,
        streams: &mut [TaskStream],
        sessions: u64,
        periods: u64,
    ) -> Trace {
        let arrivals = (0..sessions)
            .map(|i| arrival.requests_in_session(SimTime::from_micros(i * SESSION.as_micros())))
            .collect();
        let mut label_distributions = vec![Vec::new(); streams.len()];
        for _ in 0..periods {
            for (i, s) in streams.iter_mut().enumerate() {
                label_distributions[i].push(s.priors().to_vec());
                s.advance_period();
            }
        }
        Trace {
            arrivals,
            label_distributions,
        }
    }

    /// Total requests in the captured arrivals.
    pub fn total_requests(&self) -> u64 {
        self.arrivals.iter().map(|&n| n as u64).sum()
    }

    /// The arrival series as a two-column CSV (`session,requests`).
    pub fn arrivals_csv(&self) -> String {
        let mut out = String::from("session,requests\n");
        for (i, n) in self.arrivals.iter().enumerate() {
            let _ = writeln!(out, "{i},{n}");
        }
        out
    }

    /// The label distributions of one task as CSV
    /// (`period,class0,class1,…`).
    ///
    /// # Panics
    /// Panics if `task` is out of range.
    pub fn labels_csv(&self, task: usize) -> String {
        let dists = &self.label_distributions[task];
        let classes = dists.first().map(|d| d.len()).unwrap_or(0);
        let mut out = String::from("period");
        for c in 0..classes {
            let _ = write!(out, ",class{c}");
        }
        out.push('\n');
        for (p, dist) in dists.iter().enumerate() {
            let _ = write!(out, "{p}");
            for v in dist {
                let _ = write!(out, ",{v:.6}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::TaskStreamConfig;
    use crate::workload::ArrivalConfig;
    use adainf_simcore::Prng;

    fn capture_once(seed: u64) -> Trace {
        let root = Prng::new(seed);
        let mut arrival = ArrivalTrace::new(ArrivalConfig::default(), 1, &root);
        let mut streams = vec![
            TaskStream::new(TaskStreamConfig::new("a", 3, 1).with_drift(0.3, 0.2), &root),
            TaskStream::new(TaskStreamConfig::new("b", 5, 2).with_drift(0.1, 0.1), &root),
        ];
        Trace::capture(&mut arrival, &mut streams, 200, 4)
    }

    #[test]
    fn capture_is_reproducible() {
        assert_eq!(capture_once(9), capture_once(9));
        assert_ne!(capture_once(9), capture_once(10));
    }

    #[test]
    fn csv_shapes() {
        let t = capture_once(3);
        assert_eq!(t.arrivals.len(), 200);
        assert!(t.total_requests() > 0);
        let a = t.arrivals_csv();
        assert_eq!(a.lines().count(), 201);
        assert!(a.starts_with("session,requests"));
        let l = t.labels_csv(1);
        assert_eq!(l.lines().count(), 5); // header + 4 periods
        assert!(l.starts_with("period,class0"));
        // Distributions in each row sum to 1.
        for line in l.lines().skip(1) {
            let total: f64 = line
                .split(',')
                .skip(1)
                .map(|v| v.parse::<f64>().unwrap())
                .sum();
            assert!((total - 1.0).abs() < 1e-3, "{line}");
        }
    }
}
