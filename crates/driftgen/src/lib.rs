//! # adainf-driftgen
//!
//! Synthetic data-drift and request-workload generation.
//!
//! The paper drives its evaluation with (a) the Jackson Hole surveillance
//! video stream, which exhibits *data drift* — the class-label distribution
//! and the appearance of classes change across 50 s periods — and (b) the
//! Twitter streaming trace, used as a non-stationary inference request
//! rate. Neither dataset is available here, so this crate generates
//! faithful synthetic equivalents:
//!
//! * [`stream::TaskStream`] — a class-conditional Gaussian feature stream
//!   whose class priors random-walk on the probability simplex and whose
//!   class means random-walk in feature space, once per period. The
//!   generator's ground-truth label plays the role of the paper's cloud
//!   "golden model". Per-task drift intensities reproduce Observations
//!   2–3 (object detection stable; vehicle-type recognition drifts most).
//! * [`pool::RetrainPool`] — the per-period collection of new training
//!   samples (previous period's requests plus golden labels) that
//!   retraining draws from, with used-sample bookkeeping so concurrent
//!   jobs never retrain on the same sample twice (§3.3.2).
//! * [`workload::ArrivalTrace`] — a diurnal-plus-bursts request-rate curve
//!   with Poisson arrivals per 5 ms session, standing in for the Twitter
//!   trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faultgen;
pub mod pool;
pub mod scenario;
pub mod stream;
pub mod trace;
pub mod workload;

pub use faultgen::{FaultKind, FaultSpec, FaultTimeline, Impairments};
pub use pool::RetrainPool;
pub use scenario::DriftProfile;
pub use stream::{LabeledSamples, TaskStream, TaskStreamConfig};
pub use trace::Trace;
pub use workload::ArrivalTrace;
