//! Per-period retraining sample pools.
//!
//! At each period boundary, the inference requests received during the
//! previous period — labelled by the golden model — become the new
//! training data (§1, §3.2). A [`RetrainPool`] holds that data for one
//! model, tracks which samples have already been consumed by retraining
//! slices (so concurrent jobs "do not use retraining samples that have
//! been used or are being used by other jobs", §3.3.2), and hands out
//! samples in a caller-supplied priority order (AdaInf orders them by
//! deviation from the old data; baselines use arrival order).

use crate::stream::LabeledSamples;

/// The retraining sample pool of one model for the current period.
///
/// ```
/// use adainf_driftgen::{RetrainPool, TaskStream, TaskStreamConfig};
/// use adainf_simcore::Prng;
/// let root = Prng::new(1);
/// let mut stream = TaskStream::new(TaskStreamConfig::new("demo", 4, 0), &root);
/// let mut pool = RetrainPool::new(stream.sample(100));
/// let slice = pool.take(30);
/// assert_eq!(slice.len(), 30);
/// assert_eq!(pool.remaining(), 70);
/// assert!((pool.used_fraction() - 0.3).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct RetrainPool {
    samples: LabeledSamples,
    /// Sample indices in consumption order (highest priority first).
    order: Vec<usize>,
    /// How many of `order` have been consumed.
    cursor: usize,
}

impl RetrainPool {
    /// Creates a pool over `samples`, consumed in arrival order until
    /// [`Self::set_order`] installs a different priority.
    pub fn new(samples: LabeledSamples) -> Self {
        let order = (0..samples.len()).collect();
        RetrainPool {
            samples,
            order,
            cursor: 0,
        }
    }

    /// An empty pool (models unaffected by drift are not retrained).
    pub fn empty() -> Self {
        RetrainPool::new(LabeledSamples {
            inputs: adainf_nn::Matrix::zeros(0, 1),
            labels: Vec::new(),
        })
    }

    /// Total number of samples in the pool.
    pub fn total(&self) -> usize {
        self.samples.len()
    }

    /// Samples not yet consumed.
    pub fn remaining(&self) -> usize {
        self.order.len() - self.cursor
    }

    /// Samples already consumed.
    pub fn used(&self) -> usize {
        self.cursor
    }

    /// Fraction of the pool consumed so far (0 when the pool is empty).
    pub fn used_fraction(&self) -> f64 {
        if self.order.is_empty() {
            0.0
        } else {
            self.cursor as f64 / self.order.len() as f64
        }
    }

    /// Read-only access to the underlying samples.
    pub fn samples(&self) -> &LabeledSamples {
        &self.samples
    }

    /// Installs a consumption priority over the *unconsumed* portion of
    /// the pool. `priority` must be a permutation of `0..total()`;
    /// already-consumed samples keep their position at the front.
    ///
    /// # Panics
    /// Panics if `priority` is not a permutation of the full index range.
    pub fn set_order(&mut self, priority: &[usize]) {
        assert_eq!(priority.len(), self.samples.len(), "order length mismatch");
        let mut seen = vec![false; self.samples.len()];
        for &i in priority {
            assert!(i < self.samples.len() && !seen[i], "not a permutation");
            seen[i] = true;
        }
        let consumed: std::collections::BTreeSet<usize> =
            self.order[..self.cursor].iter().copied().collect();
        let mut new_order: Vec<usize> = self.order[..self.cursor].to_vec();
        new_order.extend(priority.iter().copied().filter(|i| !consumed.contains(i)));
        self.order = new_order;
    }

    /// Takes up to `n` samples off the front of the priority order,
    /// marking them consumed. Returns an empty batch when exhausted.
    pub fn take(&mut self, n: usize) -> LabeledSamples {
        let end = self.cursor.saturating_add(n).min(self.order.len());
        let indices = &self.order[self.cursor..end];
        let batch = self.samples.select(indices);
        self.cursor = end;
        batch
    }

    /// Peeks at the next `n` sample indices without consuming them.
    pub fn peek_indices(&self, n: usize) -> &[usize] {
        let end = self.cursor.saturating_add(n).min(self.order.len());
        &self.order[self.cursor..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{TaskStream, TaskStreamConfig};
    use adainf_simcore::Prng;

    fn pool_of(n: usize) -> RetrainPool {
        let root = Prng::new(4);
        let mut s = TaskStream::new(TaskStreamConfig::new("t", 3, 1), &root);
        RetrainPool::new(s.sample(n))
    }

    #[test]
    fn take_consumes_without_repeats() {
        let mut p = pool_of(10);
        let a = p.take(4);
        let b = p.take(4);
        let c = p.take(4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_eq!(c.len(), 2); // exhausted
        assert_eq!(p.remaining(), 0);
        assert_eq!(p.used(), 10);
        assert!((p.used_fraction() - 1.0).abs() < 1e-12);
        assert!(p.take(1).is_empty());
    }

    #[test]
    fn set_order_prioritises_unconsumed() {
        let mut p = pool_of(6);
        let first = p.take(2); // consumes order[0..2] = samples 0,1
        assert_eq!(first.len(), 2);
        // Now prioritise sample 5 first.
        p.set_order(&[5, 4, 3, 2, 1, 0]);
        let next = p.take(1);
        assert_eq!(next.len(), 1);
        assert_eq!(next.labels[0], p.samples().labels[5]);
        assert_eq!(next.inputs.row(0), p.samples().inputs.row(5));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_order_panics() {
        let mut p = pool_of(3);
        p.set_order(&[0, 0, 1]);
    }

    #[test]
    fn empty_pool_is_inert() {
        let mut p = RetrainPool::empty();
        assert_eq!(p.total(), 0);
        assert_eq!(p.used_fraction(), 0.0);
        assert!(p.take(5).is_empty());
    }
}
