//! Named drift scenarios.
//!
//! Observations 2–3 of the paper: in the surveillance application the
//! object-detection task is essentially unaffected by drift (the overall
//! vehicle-vs-person split stays constant) while vehicle-type recognition
//! drifts more than person-activity recognition. [`DriftProfile`] encodes
//! those intensity levels so application catalogues can tag each model's
//! task stream.

use crate::stream::{TaskStream, TaskStreamConfig};
use adainf_simcore::Prng;

/// Qualitative drift intensity of a task stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DriftProfile {
    /// No meaningful drift — the object-detection case in Fig 5a.
    Stable,
    /// Mild drift — small prior shifts, slow appearance change.
    Mild,
    /// Moderate drift — the person-activity case (0–9 % accuracy loss).
    Moderate,
    /// Severe drift — the vehicle-type case (0–15 % accuracy loss).
    Severe,
}

impl DriftProfile {
    /// `(prior_drift, mean_drift)` intensities for [`TaskStreamConfig`].
    ///
    /// The magnitudes were calibrated so a frozen model loses roughly the
    /// per-period accuracy the paper reports for each class of task
    /// (see `calibration` tests in `adainf-harness`).
    pub fn intensities(self) -> (f64, f64) {
        match self {
            DriftProfile::Stable => (0.01, 0.0),
            DriftProfile::Mild => (0.10, 0.12),
            DriftProfile::Moderate => (0.28, 0.32),
            DriftProfile::Severe => (0.45, 0.50),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            DriftProfile::Stable => "stable",
            DriftProfile::Mild => "mild",
            DriftProfile::Moderate => "moderate",
            DriftProfile::Severe => "severe",
        }
    }

    /// Builds a stream with this profile's intensities.
    pub fn build_stream(
        self,
        name: impl Into<String>,
        classes: usize,
        seed: u64,
        root: &Prng,
    ) -> TaskStream {
        let (p, m) = self.intensities();
        TaskStream::new(
            TaskStreamConfig::new(name, classes, seed).with_drift(p, m),
            root,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_nn::metrics::js_divergence;

    #[test]
    fn intensities_are_ordered() {
        let profiles = [
            DriftProfile::Stable,
            DriftProfile::Mild,
            DriftProfile::Moderate,
            DriftProfile::Severe,
        ];
        for w in profiles.windows(2) {
            let (p0, m0) = w[0].intensities();
            let (p1, m1) = w[1].intensities();
            assert!(p0 < p1 && m0 <= m1, "{:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn severe_drifts_more_than_stable_in_js() {
        let root = Prng::new(33);
        let mut stable = DriftProfile::Stable.build_stream("s", 5, 1, &root);
        let mut severe = DriftProfile::Severe.build_stream("v", 5, 2, &root);
        let s0 = stable.priors().to_vec();
        let v0 = severe.priors().to_vec();
        let mut js_stable = 0.0f64;
        let mut js_severe = 0.0f64;
        for _ in 0..8 {
            stable.advance_period();
            severe.advance_period();
            js_stable = js_stable.max(js_divergence(&s0, stable.priors()));
            js_severe = js_severe.max(js_divergence(&v0, severe.priors()));
        }
        assert!(
            js_severe > js_stable * 3.0,
            "severe {js_severe} vs stable {js_stable}"
        );
    }
}
