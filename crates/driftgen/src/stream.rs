//! Class-conditional Gaussian task streams with per-period drift.
//!
//! Each DNN model in an application solves a classification sub-problem
//! (vehicle type, person activity, …). A [`TaskStream`] generates that
//! sub-problem's data: samples are drawn from per-class Gaussians, and at
//! every period boundary both the class priors (label-distribution drift,
//! what Fig 6 measures with JS divergence) and the class means (appearance
//! drift — "sudden changes in lighting or occlusion") take a random-walk
//! step whose magnitude is the stream's drift intensity.

use adainf_nn::Matrix;
use adainf_simcore::Prng;

/// Configuration of one task stream.
#[derive(Clone, Debug)]
pub struct TaskStreamConfig {
    /// Human-readable task name ("vehicle type recognition").
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Std-dev of the log-normal prior perturbation applied per period.
    /// 0 ⇒ the label distribution never changes.
    pub prior_drift: f64,
    /// Step size of the class-mean random walk per period, as a fraction
    /// of the inter-class distance. 0 ⇒ class appearance never changes.
    pub mean_drift: f64,
    /// Within-class feature noise (std-dev). Larger values make the
    /// classification problem intrinsically harder.
    pub noise: f64,
    /// Scale of the random class-mean placement. Smaller values bring
    /// classes closer together — harder problems, more drift-sensitive.
    pub mean_scale: f64,
    /// Seed label for the stream's private RNG split.
    pub seed: u64,
}

impl TaskStreamConfig {
    /// A stream with `classes` classes and default geometry.
    pub fn new(name: impl Into<String>, classes: usize, seed: u64) -> Self {
        TaskStreamConfig {
            name: name.into(),
            classes,
            feature_dim: 16,
            prior_drift: 0.0,
            mean_drift: 0.0,
            noise: 0.55,
            mean_scale: 0.52,
            seed,
        }
    }

    /// Sets the drift intensities.
    pub fn with_drift(mut self, prior_drift: f64, mean_drift: f64) -> Self {
        self.prior_drift = prior_drift;
        self.mean_drift = mean_drift;
        self
    }

    /// Sets the within-class noise.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }
}

/// A batch of labelled samples.
#[derive(Clone, Debug)]
pub struct LabeledSamples {
    /// Feature rows, `n × feature_dim`.
    pub inputs: Matrix,
    /// Golden label per row (what the cloud golden model would return).
    pub labels: Vec<usize>,
}

impl LabeledSamples {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Concatenates batches of equal feature width.
    pub fn concat(parts: &[&LabeledSamples]) -> LabeledSamples {
        let dim = parts
            .iter()
            .find(|p| !p.is_empty())
            .map(|p| p.inputs.cols())
            .unwrap_or(0);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for p in parts {
            assert!(p.is_empty() || p.inputs.cols() == dim, "width mismatch");
            data.extend_from_slice(p.inputs.data());
            labels.extend_from_slice(&p.labels);
        }
        LabeledSamples {
            inputs: Matrix::from_slice(labels.len(), dim.max(1), &data),
            labels,
        }
    }

    /// Selects a subset of rows by index.
    pub fn select(&self, indices: &[usize]) -> LabeledSamples {
        let dim = self.inputs.cols();
        let mut data = Vec::with_capacity(indices.len() * dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.inputs.row(i));
            labels.push(self.labels[i]);
        }
        LabeledSamples {
            inputs: Matrix::from_slice(indices.len(), dim, &data),
            labels,
        }
    }
}

/// A drifting classification data stream.
#[derive(Clone, Debug)]
pub struct TaskStream {
    config: TaskStreamConfig,
    rng: Prng,
    /// Current class priors (the label distribution of new data).
    priors: Vec<f64>,
    /// Current class means, `classes × feature_dim`.
    means: Matrix,
    /// Coordinate pairing used by the rotation drift (a random perfect
    /// matching of feature dimensions).
    rotation_pairs: Vec<(usize, usize)>,
    /// Per-class angular velocity (radians/period, signed). Appearance
    /// drift is modelled as a slow *rotation* of each class mean in
    /// random coordinate planes: persistent (the class keeps moving the
    /// same way, so per-period damage is consistent across seeds) yet
    /// norm-preserving, so feature magnitudes stay bounded over
    /// arbitrarily long runs.
    omegas: Vec<f64>,
    /// Periods advanced so far.
    period: u64,
}

impl TaskStream {
    /// Creates the stream at period 0 with well-separated class means and
    /// mildly non-uniform priors.
    pub fn new(config: TaskStreamConfig, root: &Prng) -> Self {
        assert!(config.classes >= 2, "need at least two classes");
        assert!(config.feature_dim >= 2, "need at least two features");
        let mut rng = root.split(config.seed ^ STREAM_TAG);
        // Class means: random directions at a separation that a small MLP
        // resolves at roughly the paper's ~93–97 % top accuracies under
        // the default noise — leaving real headroom for drift damage.
        let mut means = Matrix::zeros(config.classes, config.feature_dim);
        for c in 0..config.classes {
            for d in 0..config.feature_dim {
                means.set(c, d, (rng.gauss() * config.mean_scale) as f32);
            }
        }
        // Random coordinate pairing for the rotation planes.
        let mut dims: Vec<usize> = (0..config.feature_dim).collect();
        rng.shuffle(&mut dims);
        let rotation_pairs: Vec<(usize, usize)> =
            dims.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        // Per-class signed angular velocity around the configured
        // intensity (classes drift at different speeds, Obs. 3).
        let omegas: Vec<f64> = (0..config.classes)
            .map(|_| {
                let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
                sign * config.mean_drift * rng.range_f64(0.7, 1.3)
            })
            .collect();
        // Mildly skewed initial priors.
        let mut priors = vec![1.0; config.classes];
        rng.perturb_simplex(&mut priors, 0.3);
        TaskStream {
            config,
            rng,
            priors,
            means,
            rotation_pairs,
            omegas,
            period: 0,
        }
    }

    /// The stream's configuration.
    pub fn config(&self) -> &TaskStreamConfig {
        &self.config
    }

    /// The current class-prior vector (the live label distribution).
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// Current period index.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Advances to the next period: priors and class means drift.
    pub fn advance_period(&mut self) {
        self.period += 1;
        if self.config.prior_drift > 0.0 {
            self.rng
                .perturb_simplex(&mut self.priors, self.config.prior_drift);
        }
        if self.config.mean_drift > 0.0 {
            for c in 0..self.config.classes {
                // Rotate the class mean in each plane, with mild angular
                // jitter so realisations stay distinct across seeds.
                let theta =
                    self.omegas[c] * (1.0 + self.rng.gauss() * 0.15);
                let (sin, cos) = (theta.sin() as f32, theta.cos() as f32);
                for &(i, j) in &self.rotation_pairs {
                    let x = self.means.get(c, i);
                    let y = self.means.get(c, j);
                    self.means.set(c, i, x * cos - y * sin);
                    self.means.set(c, j, x * sin + y * cos);
                }
            }
        }
    }

    /// Draws `n` labelled samples from the *current* distribution.
    pub fn sample(&mut self, n: usize) -> LabeledSamples {
        let dim = self.config.feature_dim;
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let class = self
                .rng
                .weighted_index(&self.priors)
                // simlint: allow(no-unwrap-in-lib) — priors come from a simplex draw, all strictly positive
                .expect("priors are positive");
            let mean_row = self.means.row(class).to_vec();
            for &m in mean_row.iter().take(dim) {
                data.push(m + (self.rng.gauss() * self.config.noise) as f32);
            }
            labels.push(class);
        }
        LabeledSamples {
            inputs: Matrix::from_slice(n, dim, &data),
            labels,
        }
    }

    /// Empirical label distribution of a sample batch, normalised.
    pub fn label_histogram(&self, samples: &LabeledSamples) -> Vec<f64> {
        let mut counts = vec![0.0; self.config.classes];
        for &l in &samples.labels {
            counts[l] += 1.0;
        }
        adainf_nn::metrics::normalize_hist(&counts)
    }
}

/// A distinct tag mixed into the per-stream RNG split so stream seeds never
/// collide with other subsystem splits of the same root.
const STREAM_TAG: u64 = 0x7A5C_57E3_A11D_11F5;

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_nn::metrics::js_divergence;
    use adainf_nn::{EarlyExitMlp, MlpConfig, TrainBatch};

    fn stream(prior_drift: f64, mean_drift: f64) -> TaskStream {
        let root = Prng::new(99);
        TaskStream::new(
            TaskStreamConfig::new("test", 6, 1).with_drift(prior_drift, mean_drift),
            &root,
        )
    }

    #[test]
    fn stable_stream_keeps_distribution() {
        let mut s = stream(0.0, 0.0);
        let before = s.priors().to_vec();
        let a = s.sample(500);
        for _ in 0..5 {
            s.advance_period();
        }
        let b = s.sample(500);
        assert_eq!(s.priors(), &before[..]);
        let ha = s.label_histogram(&a);
        let hb = s.label_histogram(&b);
        assert!(js_divergence(&ha, &hb) < 0.02, "stable stream drifted");
    }

    #[test]
    fn drifting_stream_changes_label_distribution() {
        let mut s = stream(0.6, 0.0);
        let h0 = s.priors().to_vec();
        let mut max_js = 0.0f64;
        for _ in 0..10 {
            s.advance_period();
            let js = js_divergence(&h0, s.priors());
            max_js = max_js.max(js);
        }
        assert!(max_js > 0.05, "priors did not drift: {max_js}");
    }

    #[test]
    fn mean_drift_degrades_a_frozen_model() {
        // A model trained at period 0 must lose accuracy as class means
        // drift — the core premise of the paper (Obs. 1).
        let mut s = stream(0.0, 0.6);
        let train = s.sample(600);
        let mut rng = Prng::new(5);
        let mut net = EarlyExitMlp::new(MlpConfig::small(16, 6), &mut rng);
        net.train_epochs(
            &TrainBatch {
                inputs: train.inputs.clone(),
                labels: train.labels.clone(),
            },
            60,
        );
        let eval0 = s.sample(800);
        let acc0 = net.accuracy(&eval0.inputs, &eval0.labels, 1);
        assert!(acc0 > 0.85, "initial accuracy too low: {acc0}");
        for _ in 0..6 {
            s.advance_period();
        }
        let eval1 = s.sample(800);
        let acc1 = net.accuracy(&eval1.inputs, &eval1.labels, 1);
        assert!(
            acc1 < acc0 - 0.05,
            "drift should reduce accuracy: {acc0} -> {acc1}"
        );
    }

    #[test]
    fn retraining_recovers_accuracy() {
        let mut s = stream(0.0, 0.6);
        let train = s.sample(600);
        let mut rng = Prng::new(6);
        let mut net = EarlyExitMlp::new(MlpConfig::small(16, 6), &mut rng);
        net.train_epochs(
            &TrainBatch {
                inputs: train.inputs.clone(),
                labels: train.labels.clone(),
            },
            60,
        );
        for _ in 0..6 {
            s.advance_period();
        }
        let eval = s.sample(800);
        let stale = net.accuracy(&eval.inputs, &eval.labels, 1);
        let fresh = s.sample(600);
        net.train_epochs(
            &TrainBatch {
                inputs: fresh.inputs.clone(),
                labels: fresh.labels.clone(),
            },
            40,
        );
        let retrained = net.accuracy(&eval.inputs, &eval.labels, 1);
        assert!(
            retrained > stale + 0.05,
            "retraining should recover accuracy: {stale} -> {retrained}"
        );
    }

    #[test]
    fn select_and_concat() {
        let mut s = stream(0.0, 0.0);
        let a = s.sample(10);
        let sub = a.select(&[0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.labels[1], a.labels[2]);
        assert_eq!(sub.inputs.row(1), a.inputs.row(2));
        let both = LabeledSamples::concat(&[&a, &sub]);
        assert_eq!(both.len(), 13);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let root = Prng::new(1);
        let mut a = TaskStream::new(TaskStreamConfig::new("x", 4, 7), &root);
        let mut b = TaskStream::new(TaskStreamConfig::new("x", 4, 7), &root);
        let sa = a.sample(20);
        let sb = b.sample(20);
        assert_eq!(sa.labels, sb.labels);
        assert_eq!(sa.inputs.data(), sb.inputs.data());
    }
}
