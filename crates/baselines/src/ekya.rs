//! Ekya \[3\] — period-level joint retraining/inference scheduling.
//!
//! Ekya splits the edge server's GPUs evenly among applications and, at
//! each 50 s period boundary, runs a resource-moving heuristic: starting
//! from an even split of the application's share between its (bulk)
//! retraining and its inference serving, it keeps moving a resource
//! quantum toward whichever side improves the *estimated average
//! accuracy of the period*, and stops when no move helps. The chosen
//! split produces one bulk retraining task per model, which runs from
//! the period start and makes the retrained model available only at its
//! completion (~20 s in, Fig 7b) — inference requests before that point
//! use the stale model (Obs. 1: only 53–60 % of requests see the updated
//! model).
//!
//! Ekya is *not* SLO-aware: inference jobs get whatever share remains,
//! with no batch-size optimisation (requests of a session run as one
//! batch), full structures, per-request execution and LRU eviction.

use adainf_apps::{AppRuntime, AppSpec};
use adainf_core::plan::{
    AppPeriodPlan, BulkRetrain, JobPlan, PeriodPlan, Scheduler, SessionCtx,
};
use adainf_core::profiler::Profiler;
use adainf_gpusim::{EvictionPolicyKind, ExecMode, GpuSpec};
use adainf_simcore::time::{PERIOD, SESSION};
use adainf_simcore::{SimDuration, SimTime};
use std::sync::Arc;
use adainf_simcore::walltime::WallTimer;

/// Resource quantum the heuristic moves per step (fraction of the
/// application's share).
const MOVE_QUANTUM: f64 = 0.05;

/// Retraining batch size Ekya uses for its bulk retraining.
const RETRAIN_BATCH: u32 = 32;

/// Epochs of Ekya's bulk retraining (continual-learning configs retrain
/// for many passes; the GPU time is charged accordingly).
const RETRAIN_EPOCHS: u32 = 4;

/// Fraction of the period Ekya budgets for its retraining window: its
/// configuration selection (number of iterations / samples) targets
/// completion well before the period ends, trading retraining volume for
/// timeliness \[3\].
const WINDOW_FRACTION: f64 = 0.6;

/// The Ekya scheduler.
pub struct EkyaScheduler {
    profiler: Arc<Profiler>,
    specs: Arc<[AppSpec]>,
    /// Fraction of each app's share currently granted to retraining.
    retrain_split: Vec<f64>,
    /// When each app's bulk retraining finishes (edge GPUs freed and
    /// model refreshed).
    retrain_end: Vec<SimTime>,
}

impl EkyaScheduler {
    /// Creates the scheduler for a fixed application set. `profiler` and
    /// `specs` accept owned values or pre-shared `Arc`s.
    pub fn new(profiler: impl Into<Arc<Profiler>>, specs: impl Into<Arc<[AppSpec]>>) -> Self {
        let specs = specs.into();
        let n = specs.len();
        EkyaScheduler {
            profiler: profiler.into(),
            specs,
            retrain_split: vec![0.5; n],
            retrain_end: vec![SimTime::ZERO; n],
        }
    }

    /// The retraining configuration for one split ρ: per model, the
    /// number of pool samples that fit the retraining window at the
    /// per-model fraction, and the resulting completion time.
    fn retrain_config(
        &self,
        app: &AppSpec,
        rho: f64,
        share: f64,
        pools: &[usize],
    ) -> (Vec<u32>, SimDuration) {
        let per_model = (rho * share / app.nodes.len() as f64).clamp(1e-3, 1.0);
        let window = PERIOD.mul_f64(WINDOW_FRACTION);
        let mut caps = Vec::with_capacity(app.nodes.len());
        let mut end = SimDuration::ZERO;
        for (i, n) in app.nodes.iter().enumerate() {
            let cost = n.profile.full_cost();
            // Ekya's micro-profiling also tunes the training batch size.
            let batch = self.profiler.best_train_batch(&cost, per_model).max(RETRAIN_BATCH.min(8));
            // Samples whose RETRAIN_EPOCHS-epoch training fits the window.
            let fit = self.profiler.samples_within(
                &cost,
                batch,
                per_model,
                window.mul_f64(1.0 / RETRAIN_EPOCHS as f64),
            );
            let cap = fit.min(pools.get(i).copied().unwrap_or(0) as u32);
            let dur = self.profiler.training_latency(
                &cost,
                cap,
                batch,
                RETRAIN_EPOCHS,
                per_model,
            );
            end = end.max(dur);
            caps.push(cap);
        }
        (caps, end)
    }

    /// Estimated average accuracy of the period for a given retraining
    /// split: models serve stale accuracy until retraining completes,
    /// then a recovery proportional to the fraction of the pool the
    /// window accommodated. The estimate is discounted by the fraction
    /// of the request stream the remaining inference share can actually
    /// process (a frame the pipeline cannot keep up with contributes no
    /// correct prediction), which keeps the resource mover from starving
    /// inference outright.
    fn estimate_avg_accuracy(
        &self,
        app: &AppSpec,
        rho: f64,
        share: f64,
        pools: &[usize],
        stale: &[f64],
        fresh: &[f64],
    ) -> f64 {
        let inference_share = (share * (1.0 - rho)).max(1e-3);
        // Nominal session: ~32 requests every 5 ms at the fixed batch.
        let service = self
            .profiler
            .inference_latency(
                &app.full_structure_cost(),
                32,
                8,
                inference_share.min(1.0),
                adainf_gpusim::ExecMode::PerRequest,
                adainf_gpusim::EvictionPolicyKind::Lru,
            )
            .as_millis_f64();
        // Square-root discount: a mildly backlogged pipeline still
        // produces (late but counted) predictions.
        let throughput = (SESSION.as_millis_f64() / service.max(1e-6)).min(1.0).sqrt();
        if rho <= 0.0 {
            return throughput * stale.iter().sum::<f64>() / stale.len() as f64;
        }
        let (caps, dur) = self.retrain_config(app, rho, share, pools);
        let frac_stale = (dur.as_secs_f64() / PERIOD.as_secs_f64()).min(1.0);
        let mut acc = 0.0;
        for (i, (s, f)) in stale.iter().zip(fresh).enumerate() {
            let pool = pools.get(i).copied().unwrap_or(0) as f64;
            let trained = if pool > 0.0 {
                caps[i] as f64 / pool
            } else {
                0.0
            };
            let recovered = s + (f - s).max(0.0) * trained.min(1.0);
            acc += s * frac_stale + recovered * (1.0 - frac_stale);
        }
        throughput * acc / stale.len() as f64
    }
}

impl Scheduler for EkyaScheduler {
    fn name(&self) -> String {
        "Ekya".to_string()
    }

    fn on_period_start(
        &mut self,
        apps: &mut [AppRuntime],
        server: &GpuSpec,
        now: SimTime,
    ) -> PeriodPlan {
        let wall = WallTimer::start();
        let share = server.total_space() / apps.len() as f64;
        let mut bulk = Vec::new();

        for (a, rt) in apps.iter_mut().enumerate() {
            let spec = self.specs[a].clone();
            let pools: Vec<usize> = rt.pools.iter().map(|p| p.remaining()).collect();
            let stale: Vec<f64> = (0..spec.nodes.len())
                .map(|n| rt.accuracy(n, spec.nodes[n].profile.full_cut()))
                .collect();
            let fresh: Vec<f64> = (0..spec.nodes.len())
                .map(|n| rt.initial_accuracy(n))
                .collect();

            // Resource-moving heuristic: hill-climb ρ by MOVE_QUANTUM
            // within [0, 0.7] (inference must keep serving).
            let mut rho = self.retrain_split[a];
            loop {
                let here =
                    self.estimate_avg_accuracy(&spec, rho, share, &pools, &stale, &fresh);
                let up = (rho + MOVE_QUANTUM).min(0.55);
                let down = (rho - MOVE_QUANTUM).max(0.0);
                let up_acc =
                    self.estimate_avg_accuracy(&spec, up, share, &pools, &stale, &fresh);
                let down_acc =
                    self.estimate_avg_accuracy(&spec, down, share, &pools, &stale, &fresh);
                if up_acc > here && up_acc >= down_acc && up > rho {
                    rho = up;
                } else if down_acc > here && down < rho {
                    rho = down;
                } else {
                    break;
                }
            }
            self.retrain_split[a] = rho;

            let (caps, dur) = self.retrain_config(&spec, rho, share, &pools);
            let end = now + dur;
            self.retrain_end[a] = end;
            if rho > 0.0 {
                let per_model = rho * share / spec.nodes.len() as f64;
                for (node, &cap) in caps.iter().enumerate() {
                    if cap == 0 {
                        continue;
                    }
                    bulk.push(BulkRetrain {
                        app: a,
                        node,
                        gpu: per_model,
                        available_at: end,
                        busy_until: end,
                        sample_cap: cap,
                    });
                }
            }
        }

        PeriodPlan {
            apps: vec![AppPeriodPlan::default(); apps.len()],
            bulk,
            overhead: SimDuration::from_millis_f64(wall.elapsed_ms()),
            edge_cloud_bytes: 0,
        }
    }

    fn on_session(&mut self, ctx: &SessionCtx<'_>) -> Vec<JobPlan> {
        let share = ctx.server.total_space() / self.specs.len() as f64;
        ctx.predicted
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(app, &n)| {
                // During the retraining window, inference only gets the
                // non-retraining remainder of the app's share. Jobs run
                // serially on that continuous share (Ekya serves a
                // request queue per application).
                let inference_share = if ctx.now < self.retrain_end[app] {
                    share * (1.0 - self.retrain_split[app])
                } else {
                    share
                };
                let gpu = inference_share.clamp(1e-3, 1.0);
                // The serving stack batches sensibly for the share it
                // got; Ekya's deficiency is accuracy-driven allocation,
                // not the batching itself.
                let (batch, _) = self.profiler.optimal_batch_at(
                    &self.specs[app].full_structure_cost(),
                    n,
                    gpu,
                );
                JobPlan {
                    app,
                    gpu,
                    batch,
                    cuts: self.specs[app].full_cuts(),
                    retrain: Vec::new(),
                    exec: ExecMode::PerRequest,
                    eviction: EvictionPolicyKind::Lru,
                    serial: true,
                    cpu: false,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_apps::catalog;
    use adainf_driftgen::workload::ArrivalConfig;
    use adainf_simcore::Prng;

    fn setup() -> (EkyaScheduler, Vec<AppRuntime>, GpuSpec) {
        let root = Prng::new(11);
        let specs = catalog::apps_for_count(2);
        let apps: Vec<AppRuntime> = specs
            .iter()
            .cloned()
            .map(|s| AppRuntime::new(s, ArrivalConfig::default(), 500, &root))
            .collect();
        (
            EkyaScheduler::new(Profiler::default(), specs),
            apps,
            GpuSpec::with_gpus(4),
        )
    }

    #[test]
    fn bulk_retraining_covers_every_model() {
        let (mut sched, mut apps, server) = setup();
        for rt in &mut apps {
            rt.advance_period();
        }
        let plan = sched.on_period_start(&mut apps, &server, SimTime::from_secs(50));
        let models: usize = apps.iter().map(|a| a.spec.nodes.len()).sum();
        assert_eq!(plan.bulk.len(), models, "Ekya retrains all models");
        for b in &plan.bulk {
            assert!(b.gpu > 0.0);
            assert!(b.available_at > SimTime::from_secs(50));
            assert_eq!(b.available_at, b.busy_until);
        }
    }

    #[test]
    fn retraining_completes_mid_period() {
        // The bulk retraining should finish inside the period but take a
        // macroscopic chunk of it (~20 s in the paper).
        let (mut sched, mut apps, server) = setup();
        for rt in &mut apps {
            rt.advance_period();
        }
        let plan = sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let end = plan.bulk.iter().map(|b| b.available_at).max().unwrap();
        let secs = end.as_secs_f64();
        assert!(
            secs > 1.0 && secs < 50.0,
            "retraining window {secs}s out of range"
        );
    }

    #[test]
    fn inference_share_shrinks_during_retraining() {
        let (mut sched, mut apps, server) = setup();
        for rt in &mut apps {
            rt.advance_period();
        }
        sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let predicted = vec![16u32, 16];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let mut ctx = SessionCtx {
            now: SimTime::from_secs(1),
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(100),
            pool_remaining: &pools,
        };
        let during: f64 = sched.on_session(&ctx).iter().map(|p| p.gpu).sum();
        ctx.now = SimTime::from_secs(49);
        let after: f64 = sched.on_session(&ctx).iter().map(|p| p.gpu).sum();
        assert!(
            after > during,
            "inference share should grow after retraining: {during} -> {after}"
        );
    }

    #[test]
    fn plans_use_baseline_memory_strategies() {
        let (mut sched, mut apps, server) = setup();
        sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let predicted = vec![40u32, 0];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let ctx = SessionCtx {
            now: SimTime::from_secs(1),
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(100),
            pool_remaining: &pools,
        };
        let plans = sched.on_session(&ctx);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].exec, ExecMode::PerRequest);
        assert_eq!(plans[0].eviction, EvictionPolicyKind::Lru);
        assert!(plans[0].batch >= 1, "serving batch chosen");
        assert!(plans[0].retrain.is_empty(), "no incremental slices");
    }
}
