//! # adainf-baselines
//!
//! Reimplementations of the comparison methods of §4/§5 against the same
//! simulator and scheduler interface as AdaInf:
//!
//! * [`ekya::EkyaScheduler`] — Ekya \[3\]: a 50 s-period scheduler that
//!   splits each application's even GPU share between bulk retraining and
//!   inference with a resource-moving heuristic that maximises estimated
//!   average accuracy. Retraining runs to completion on all samples, so
//!   inference only benefits from the retrained model after the
//!   completion point (~20 s into the period); the scheduler is not
//!   SLO-aware.
//! * [`scrooge::ScroogeScheduler`] — Scrooge \[10\]: a per-session optimiser
//!   that picks the cheapest GPU amount and batch size meeting each
//!   application's SLO. Retraining is offloaded to the cloud, paying an
//!   ~34 s edge–cloud transfer per period (85.7 GB, Table 1), so models
//!   stay stale for most of each period. `Scrooge*` divides capacity
//!   proportionally instead of greedily.
//!
//! Both baselines run with per-request execution and LRU eviction — the
//! memory strategies of §3.4 are AdaInf contributions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ekya;
pub mod scrooge;

pub use ekya::EkyaScheduler;
pub use scrooge::ScroogeScheduler;
