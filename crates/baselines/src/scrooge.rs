//! Scrooge \[10\] — SLO-aware inference serving with cloud retraining.
//!
//! Per scheduling round, Scrooge solves an optimisation that assigns each
//! application the *cheapest* GPU amount and batch size that satisfies
//! its latency SLO (we implement the equivalent greedy minimiser over the
//! profiled batch candidates — the paper's solver takes ~100 ms, Table 1).
//! Following the modification in §4, the allocation is capped by the edge
//! server's GPU amount; the `Scrooge*` variant instead scales every
//! application to its proportional share `G_i / Σ G_j`.
//!
//! Retraining happens in the cloud every period: the edge ships the
//! retraining samples up and receives updated models back — 85.7 GB and
//! 34.1 s per period over the ~20 Gb/s link (Table 1) — so inference
//! only benefits from retrained models for the tail of each period.

use adainf_apps::{AppRuntime, AppSpec};
use adainf_core::plan::{
    AppPeriodPlan, BulkRetrain, JobPlan, PeriodPlan, Scheduler, SessionCtx,
};
use adainf_core::profiler::Profiler;
use adainf_gpusim::latency::BATCH_CANDIDATES;
use adainf_gpusim::{EvictionPolicyKind, ExecMode, GpuSpec};
use adainf_simcore::time::SESSION;
use adainf_simcore::{SimDuration, SimTime};
use std::sync::Arc;
use adainf_simcore::walltime::WallTimer;

/// Bytes shipped per retraining sample (a video frame plus metadata) —
/// calibrated so the default 8-application deployment transfers ≈ 85.7 GB
/// per period, matching Table 1.
pub const SAMPLE_BYTES: u64 = 680_000;

/// Bytes of an updated (compressed) model shipped back from the cloud.
pub const MODEL_BYTES: u64 = 8_000_000;

/// Edge–cloud bandwidth ("around 20 Gbps", §4), bytes/s.
pub const EDGE_CLOUD_BANDWIDTH: f64 = 2.5e9;

/// Cloud-side retraining time per period (the p3.16xlarge retrains all
/// the applications' models on the shipped pools before the results ship
/// back).
pub const CLOUD_TRAIN: SimDuration = SimDuration::from_secs(13);

/// The Scrooge scheduler (and its `Scrooge*` variant).
pub struct ScroogeScheduler {
    profiler: Arc<Profiler>,
    specs: Arc<[AppSpec]>,
    /// Proportional-share variant flag.
    star: bool,
}

impl ScroogeScheduler {
    /// Creates Scrooge. `profiler` and `specs` accept owned values or
    /// pre-shared `Arc`s.
    pub fn new(profiler: impl Into<Arc<Profiler>>, specs: impl Into<Arc<[AppSpec]>>) -> Self {
        ScroogeScheduler {
            profiler: profiler.into(),
            specs: specs.into(),
            star: false,
        }
    }

    /// Creates the Scrooge* variant (proportional capacity division).
    pub fn new_star(profiler: impl Into<Arc<Profiler>>, specs: impl Into<Arc<[AppSpec]>>) -> Self {
        ScroogeScheduler {
            profiler: profiler.into(),
            specs: specs.into(),
            star: true,
        }
    }

    /// The cheapest `(gpu, batch)` meeting the app's SLO for `n` requests,
    /// from the profiled batch candidates and the regression scaler.
    fn cheapest_config(&self, app: &AppSpec, n: u32) -> (f64, u32) {
        let cost = app.full_structure_cost();
        let slo_ms = app.slo.as_millis_f64();
        let mut best: Option<(f64, u32)> = None;
        for &b in &BATCH_CANDIDATES {
            let full = self.profiler.worst_case_full(&cost, n, b).as_millis_f64();
            let g = self.profiler.scaler.required_fraction(full, slo_ms);
            if best.is_none_or(|(bg, _)| g < bg) {
                best = Some((g, b));
            }
        }
        // simlint: allow(no-unwrap-in-lib) — BATCH_CANDIDATES is a non-empty const, so the loop always sets `best`
        best.expect("candidates non-empty")
    }
}

impl Scheduler for ScroogeScheduler {
    fn name(&self) -> String {
        if self.star {
            "Scrooge*".to_string()
        } else {
            "Scrooge".to_string()
        }
    }

    fn on_period_start(
        &mut self,
        apps: &mut [AppRuntime],
        _server: &GpuSpec,
        now: SimTime,
    ) -> PeriodPlan {
        let wall = WallTimer::start();
        // Ship every pool to the cloud; updated models come back after
        // upload + cloud training + download.
        let mut bytes_up = 0u64;
        let mut models = 0u64;
        for rt in apps.iter() {
            for pool in &rt.pools {
                bytes_up += pool.total() as u64 * SAMPLE_BYTES;
                models += 1;
            }
        }
        let total_bytes = bytes_up + models * MODEL_BYTES;
        let transfer =
            SimDuration::from_millis_f64(total_bytes as f64 / EDGE_CLOUD_BANDWIDTH * 1e3);
        let available = now + transfer + CLOUD_TRAIN;

        let mut bulk = Vec::new();
        for (a, rt) in apps.iter().enumerate() {
            for node in 0..rt.spec.nodes.len() {
                bulk.push(BulkRetrain {
                    app: a,
                    node,
                    gpu: 0.0, // cloud GPUs, not edge GPUs
                    available_at: available,
                    busy_until: now,
                    sample_cap: 0,
                });
            }
        }

        PeriodPlan {
            apps: vec![AppPeriodPlan::default(); apps.len()],
            bulk,
            overhead: SimDuration::from_millis_f64(wall.elapsed_ms()),
            edge_cloud_bytes: total_bytes,
        }
    }

    fn on_session(&mut self, ctx: &SessionCtx<'_>) -> Vec<JobPlan> {
        let s = (ctx.avg_job_time.as_millis_f64() / SESSION.as_millis_f64()).max(1.0);
        let session_pool = ctx.server.total_space() / s;

        let wanted: Vec<(usize, f64, u32)> = ctx
            .predicted
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(app, &n)| {
                let (g, b) = self.cheapest_config(&self.specs[app], n);
                (app, g, b)
            })
            .collect();
        let total: f64 = wanted.iter().map(|(_, g, _)| g).sum();

        wanted
            .into_iter()
            .map(|(app, g, b)| {
                let gpu = if self.star || total > session_pool {
                    // Proportional share of the session pool (the §4
                    // capacity constraint / the Scrooge* division).
                    (session_pool * g / total.max(1e-9)).clamp(1e-3, 1.0)
                } else {
                    g.clamp(1e-3, 1.0)
                };
                // Re-pick the batch at the final allocation.
                let (batch, _) = self.profiler.optimal_batch_at(
                    &self.specs[app].full_structure_cost(),
                    ctx.predicted[app],
                    gpu,
                );
                JobPlan {
                    app,
                    gpu,
                    batch: batch.max(b.min(2)),
                    cuts: self.specs[app].full_cuts(),
                    retrain: Vec::new(),
                    exec: ExecMode::PerRequest,
                    eviction: EvictionPolicyKind::Lru,
                    serial: false,
                    cpu: false,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_apps::catalog;
    use adainf_driftgen::workload::ArrivalConfig;
    use adainf_simcore::Prng;

    fn setup(n: usize) -> (ScroogeScheduler, Vec<AppRuntime>, GpuSpec) {
        let root = Prng::new(17);
        let specs = catalog::apps_for_count(n);
        let apps: Vec<AppRuntime> = specs
            .iter()
            .cloned()
            .map(|s| AppRuntime::new(s, ArrivalConfig::default(), 6000, &root))
            .collect();
        (
            ScroogeScheduler::new(Profiler::default(), specs),
            apps,
            GpuSpec::with_gpus(4),
        )
    }

    #[test]
    fn cloud_retraining_takes_tens_of_seconds() {
        let (mut sched, mut apps, server) = setup(8);
        let plan = sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let avail = plan.bulk[0].available_at.as_secs_f64();
        // Transfer ≈ 34 s + 3 s cloud training.
        assert!(
            (25.0..50.0).contains(&avail),
            "cloud round-trip {avail}s out of range"
        );
        // No edge GPU is occupied.
        assert!(plan.bulk.iter().all(|b| b.gpu == 0.0));
    }

    #[test]
    fn transferred_bytes_match_table1_scale() {
        let (mut sched, mut apps, server) = setup(8);
        let plan = sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let gb = plan.edge_cloud_bytes as f64 / 1e9;
        assert!(
            (60.0..110.0).contains(&gb),
            "edge-cloud transfer {gb} GB out of the Table 1 ballpark"
        );
    }

    #[test]
    fn allocations_meet_slo_cheaply() {
        let (mut sched, mut apps, server) = setup(2);
        sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let predicted = vec![32u32, 32];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let ctx = SessionCtx {
            now: SimTime::from_secs(1),
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(60),
            pool_remaining: &pools,
        };
        let plans = sched.on_session(&ctx);
        assert_eq!(plans.len(), 2);
        for p in &plans {
            assert!(p.gpu > 0.0 && p.gpu <= 1.0);
            assert!(p.retrain.is_empty(), "retraining is in the cloud");
            // The allocation should satisfy the SLO per the profiler's
            // own estimate.
            let est = sched.profiler.inference_latency(
                &sched.specs[p.app].full_structure_cost(),
                predicted[p.app],
                p.batch,
                p.gpu,
                p.exec,
                p.eviction,
            );
            assert!(
                est <= sched.specs[p.app].slo.mul_f64(1.6),
                "estimate {est:?} far above SLO"
            );
        }
    }

    #[test]
    fn star_variant_divides_proportionally() {
        let root = Prng::new(17);
        let specs = catalog::apps_for_count(2);
        let apps: Vec<AppRuntime> = specs
            .iter()
            .cloned()
            .map(|s| AppRuntime::new(s, ArrivalConfig::default(), 100, &root))
            .collect();
        let mut star = ScroogeScheduler::new_star(Profiler::default(), specs);
        assert_eq!(star.name(), "Scrooge*");
        let server = GpuSpec::with_gpus(4);
        let predicted = vec![32u32, 32];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let ctx = SessionCtx {
            now: SimTime::ZERO,
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(60),
            pool_remaining: &pools,
        };
        let plans = star.on_session(&ctx);
        let total: f64 = plans.iter().map(|p| p.gpu).sum();
        let s = 60.0 / 5.0;
        assert!(total <= 4.0 / s + 1e-6, "star total {total}");
    }
}
