//! # adainf-modelzoo
//!
//! The DNN backbones of the paper's applications, represented as **cost
//! profiles** (per-layer FLOPs, parameter bytes, activation bytes) for the
//! GPU simulator, plus a **trainable head** per model instance that binds
//! the profile to a drifting task stream through a real
//! [`adainf_nn::EarlyExitMlp`].
//!
//! Splitting cost from learning mirrors the substitution described in
//! DESIGN.md: the latency/memory behaviour of TinyYOLOv3, MobileNetV2,
//! ShuffleNet, ResNet18, SSDLite, STN-OCR, … is captured by profiles
//! (with DeepSpeed-style compression applied, §4), while the accuracy
//! dynamics under drift and retraining come from actual SGD on the head.
//!
//! * [`profile`] — [`profile::ModelProfile`]: layered cost description,
//!   early-exit cut points every 3 layers (as in SPINN \[22\]).
//! * [`zoo`] — the named backbones with calibrated magnitudes.
//! * [`earlyexit`] — application-level early-exit structures: one cut per
//!   model, enumerated exhaustively (81 structures for the surveillance
//!   app, §2.2).
//! * [`head`] — [`head::TrainableModel`]: profile + MLP head + retraining
//!   state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod earlyexit;
pub mod head;
pub mod profile;
pub mod zoo;

pub use earlyexit::{AppStructure, StructureChoice};
pub use head::{TrainSliceScratch, TrainableModel};
pub use profile::ModelProfile;
