//! The named backbones used across the paper's applications (§2, §4).
//!
//! Magnitudes are for the **compressed** variants ("we compressed the
//! remaining models using DeepSpeed", §4), calibrated so the surveillance
//! application's full DAG sums to the latency model's reference structure
//! (~1.5×10⁸ FLOPs, ~2 MB activations per sample — see
//! `adainf_gpusim::latency`). Absolute values are calibrations; relative
//! magnitudes track the real architectures (TinyYOLOv3 ≫ MobileNetV2 >
//! ShuffleNet, ResNet18 heavier than both, etc.).

use crate::profile::ModelProfile;

/// TinyYOLOv3 — object detection (compressed). 13 conv layers.
pub fn tiny_yolo_v3() -> ModelProfile {
    ModelProfile::synth("TinyYOLOv3", 13, 9.0e7, 8_600_000, 1_200_000)
}

/// MobileNetV2 — lightweight recognition. 18 bottleneck stages.
pub fn mobilenet_v2() -> ModelProfile {
    ModelProfile::synth("MobileNetV2", 18, 4.0e7, 3_400_000, 500_000)
}

/// ShuffleNet — lightweight recognition. 16 stages.
pub fn shufflenet() -> ModelProfile {
    ModelProfile::synth("ShuffleNet", 16, 2.0e7, 2_300_000, 300_000)
}

/// ResNet18 (compressed) — mid-weight recognition. 18 layers.
pub fn resnet18() -> ModelProfile {
    ModelProfile::synth("ResNet18", 18, 1.4e8, 11_000_000, 900_000)
}

/// SSDLite (compressed) — mobile object detection. 14 layers.
pub fn ssdlite() -> ModelProfile {
    ModelProfile::synth("SSDLite", 14, 6.5e7, 4_500_000, 800_000)
}

/// STN-OCR (compressed) — text recognition. 12 layers.
pub fn stn_ocr() -> ModelProfile {
    ModelProfile::synth("STN-OCR", 12, 5.5e7, 6_000_000, 600_000)
}

/// A compressed ResNet-style image recogniser for the social-media app.
pub fn image_recognizer() -> ModelProfile {
    ModelProfile::synth("ImageRecNet", 20, 1.6e8, 14_000_000, 1_000_000)
}

/// NSFW/safety image classifier (MobileNet-class).
pub fn nsfw_net() -> ModelProfile {
    ModelProfile::synth("NSFWNet", 14, 3.5e7, 3_000_000, 450_000)
}

/// Language identification (TextCNN-class).
pub fn lang_id() -> ModelProfile {
    ModelProfile::synth("LangIdNet", 8, 1.5e7, 1_800_000, 150_000)
}

/// Compressed translation model (GNMT-lite) for the social-media app.
pub fn translator() -> ModelProfile {
    ModelProfile::synth("GNMT-lite", 16, 1.8e8, 18_000_000, 700_000)
}

/// Keyword/speech recognition model (wav2letter-class) for audio apps.
pub fn audio_net() -> ModelProfile {
    ModelProfile::synth("AudioNet", 12, 5.0e7, 5_000_000, 400_000)
}

/// Intent classification model for audio apps.
pub fn intent_net() -> ModelProfile {
    ModelProfile::synth("IntentNet", 8, 1.2e7, 1_500_000, 120_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surveillance_dag_matches_reference_structure() {
        // TinyYOLOv3 + MobileNetV2 + ShuffleNet must sum to the latency
        // model's reference (1.5e8 FLOPs, 2e6 activation bytes) — the
        // calibration anchor for Figs 8–10.
        let total = tiny_yolo_v3()
            .full_cost()
            .plus(mobilenet_v2().full_cost())
            .plus(shufflenet().full_cost());
        assert!((total.flops_per_sample - 1.5e8).abs() / 1.5e8 < 0.01);
        assert!((total.activation_bytes - 2.0e6).abs() / 2.0e6 < 0.01);
    }

    #[test]
    fn relative_magnitudes_track_architectures() {
        assert!(
            tiny_yolo_v3().full_cost().flops_per_sample
                > mobilenet_v2().full_cost().flops_per_sample
        );
        assert!(
            mobilenet_v2().full_cost().flops_per_sample
                > shufflenet().full_cost().flops_per_sample
        );
        assert!(
            resnet18().full_cost().flops_per_sample
                > mobilenet_v2().full_cost().flops_per_sample
        );
    }

    #[test]
    fn every_backbone_has_multiple_exit_points() {
        for p in [
            tiny_yolo_v3(),
            mobilenet_v2(),
            shufflenet(),
            resnet18(),
            ssdlite(),
            stn_ocr(),
            image_recognizer(),
            nsfw_net(),
            lang_id(),
            translator(),
            audio_net(),
            intent_net(),
        ] {
            assert!(
                p.exit_points().len() >= 3,
                "{} has too few exits",
                p.name
            );
        }
    }
}
