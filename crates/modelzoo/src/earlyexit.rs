//! Application-level early-exit structures.
//!
//! §2.2: "We created all possible early-exit structures of the
//! application, where each structure includes an early-exit structure for
//! each model of the application" — i.e. the Cartesian product of the
//! per-model exit points. AdaInf's scheduler never enumerates the product
//! at run time (it chooses per-model, §3.3.2), but the experimental
//! analysis (Figs 7, 10) and the profiler do.

use crate::profile::ModelProfile;

/// The structure choice for a single model: run layers `0..=cut`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructureChoice {
    /// Inclusive cut layer; `profile.full_cut()` means the full structure.
    pub cut: usize,
}

/// One early-exit structure of a whole application: a cut per model, in
/// the application's model (node) order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppStructure {
    /// Per-model cuts.
    pub cuts: Vec<usize>,
}

impl AppStructure {
    /// The full structure of an application (no early exits).
    pub fn full(profiles: &[&ModelProfile]) -> AppStructure {
        AppStructure {
            cuts: profiles.iter().map(|p| p.full_cut()).collect(),
        }
    }
}

/// Enumerates every application structure (the Cartesian product of the
/// per-model exit points). The surveillance application yields
/// `5 × 6 × 6 = 180` structures with the default zoo profiles; the paper
/// reports 81 for its hand-built exits — the count depends on exit
/// granularity, the *space* is what matters.
pub fn enumerate_structures(profiles: &[&ModelProfile]) -> Vec<AppStructure> {
    let exit_sets: Vec<Vec<usize>> = profiles.iter().map(|p| p.exit_points()).collect();
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for set in &exit_sets {
        let mut next = Vec::with_capacity(out.len() * set.len());
        for prefix in &out {
            for &cut in set {
                let mut v = prefix.clone();
                v.push(cut);
                next.push(v);
            }
        }
        out = next;
    }
    out.into_iter().map(|cuts| AppStructure { cuts }).collect()
}

/// Picks the cheapest cut of `profile` whose accuracy (per the caller's
/// oracle) clears `threshold`, falling back to the full structure — the
/// library-level form of the §3.3.2 structure selection.
pub fn cheapest_cut_above(
    profile: &ModelProfile,
    threshold: f64,
    accuracy: impl Fn(usize) -> f64,
) -> usize {
    profile
        .exit_points()
        .into_iter()
        .find(|&cut| accuracy(cut) >= threshold)
        .unwrap_or(profile.full_cut())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn enumeration_is_cartesian_product() {
        let yolo = zoo::tiny_yolo_v3();
        let mob = zoo::mobilenet_v2();
        let shuf = zoo::shufflenet();
        let profiles = [&yolo, &mob, &shuf];
        let structures = enumerate_structures(&profiles);
        let expect: usize = profiles.iter().map(|p| p.exit_points().len()).product();
        assert_eq!(structures.len(), expect);
        // All distinct.
        let set: std::collections::BTreeSet<_> = structures.iter().cloned().collect();
        assert_eq!(set.len(), structures.len());
        // The full structure is among them.
        assert!(structures.contains(&AppStructure::full(&profiles)));
    }

    #[test]
    fn full_structure_uses_last_layers() {
        let yolo = zoo::tiny_yolo_v3();
        let full = AppStructure::full(&[&yolo]);
        assert_eq!(full.cuts, vec![yolo.full_cut()]);
    }

    #[test]
    fn cheapest_cut_respects_threshold() {
        let yolo = zoo::tiny_yolo_v3();
        let exits = yolo.exit_points();
        // Accuracy rises with depth from 0.7 to 0.98.
        let acc = |cut: usize| 0.7 + 0.28 * cut as f64 / yolo.full_cut() as f64;
        let cut = cheapest_cut_above(&yolo, 0.85, acc);
        assert!(exits.contains(&cut));
        assert!(acc(cut) >= 0.85);
        // Any shallower exit fails the threshold.
        for &e in exits.iter().filter(|&&e| e < cut) {
            assert!(acc(e) < 0.85);
        }
        // Unreachable threshold → full structure.
        assert_eq!(cheapest_cut_above(&yolo, 2.0, acc), yolo.full_cut());
    }

    #[test]
    fn empty_profile_list_yields_one_empty_structure() {
        let structures = enumerate_structures(&[]);
        assert_eq!(structures.len(), 1);
        assert!(structures[0].cuts.is_empty());
    }
}
