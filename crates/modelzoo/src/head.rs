//! Trainable model instances.
//!
//! A [`TrainableModel`] is one deployed model of one application: the cost
//! profile of its backbone plus a real early-exit MLP head whose learning
//! dynamics stand in for the backbone's (see DESIGN.md). The head has
//! three exits; a structure cut of the backbone maps proportionally onto a
//! head exit, so a shallow early-exit structure both runs faster (profile)
//! and classifies worse (head) — the trade-off of Obs. 4.

use crate::profile::ModelProfile;
use adainf_driftgen::LabeledSamples;
use adainf_nn::{EarlyExitMlp, InferScratch, Matrix, MlpConfig, TrainScratch};
use adainf_simcore::Prng;

/// Feature dimensionality shared by all task streams and heads.
pub const FEATURE_DIM: usize = 16;

/// Number of exits of every head MLP.
pub const HEAD_EXITS: usize = 3;

/// A deployed, retrainable model instance.
#[derive(Clone, Debug)]
pub struct TrainableModel {
    /// Backbone cost profile.
    pub profile: ModelProfile,
    head: EarlyExitMlp,
    /// Monotone version counter, bumped by every retraining slice.
    version: u64,
    /// Samples consumed by retraining since construction.
    trained_samples: u64,
    /// Reusable mini-batch buffer for [`Self::train_slice`].
    slice_scratch: SliceScratch,
}

/// Scratch buffer reused by every [`TrainableModel::train_slice`]
/// mini-batch: the input rows of the current chunk are copied here
/// (one contiguous slab) instead of allocating an index vector and a
/// cloned sample set per 32-sample SGD step.
#[derive(Clone, Debug, Default)]
struct SliceScratch {
    inputs: Matrix,
}

/// Per-*worker* training buffers for parallel `train_slice` fan-outs:
/// the mini-batch input slab plus the full backward-pass scratch of
/// the head MLP. One instance serves every model a worker trains
/// (buffers carry no model state), so a fan-out warms
/// `worker_count` scratches instead of `model_count`.
#[derive(Debug, Default)]
pub struct TrainSliceScratch {
    inputs: Matrix,
    net: TrainScratch,
}

impl TrainableModel {
    /// Creates an untrained instance for a `classes`-way task.
    pub fn new(profile: ModelProfile, classes: usize, rng: &mut Prng) -> Self {
        let config = MlpConfig {
            input_dim: FEATURE_DIM,
            hidden: vec![32, 24, 16],
            classes,
            lr: 0.05,
            momentum: 0.9,
            exit_weights: vec![0.3, 0.55, 1.0],
            update: None,
        };
        TrainableModel {
            profile,
            head: EarlyExitMlp::new(config, rng),
            version: 0,
            trained_samples: 0,
            slice_scratch: SliceScratch::default(),
        }
    }

    /// Number of classes of the bound task.
    pub fn classes(&self) -> usize {
        self.head.classes()
    }

    /// Monotone retraining version (bumps on every slice).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total samples consumed by retraining.
    pub fn trained_samples(&self) -> u64 {
        self.trained_samples
    }

    /// Maps a backbone structure cut onto a head exit: proportional in
    /// depth fraction, so cutting the backbone early classifies with the
    /// shallow head exit.
    pub fn head_exit_for_cut(&self, cut: usize) -> usize {
        let frac = (cut + 1) as f64 / self.profile.num_layers() as f64;
        ((frac * HEAD_EXITS as f64).ceil() as usize).clamp(1, HEAD_EXITS) - 1
    }

    /// Accuracy of the structure cut at `cut` on a sample batch.
    pub fn accuracy_on(&self, samples: &LabeledSamples, cut: usize) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        self.head.accuracy(
            &samples.inputs,
            &samples.labels,
            self.head_exit_for_cut(cut),
        )
    }

    /// Predicted class per sample at the given cut.
    pub fn predict(&self, inputs: &Matrix, cut: usize) -> Vec<usize> {
        self.head.predict(inputs, self.head_exit_for_cut(cut))
    }

    /// [`Self::predict`] through caller-provided inference buffers —
    /// bit-identical predictions, no per-call allocations beyond the
    /// returned index vector.
    pub fn predict_with_scratch(
        &self,
        inputs: &Matrix,
        cut: usize,
        scratch: &mut InferScratch,
    ) -> Vec<usize> {
        self.head
            .predict_with_scratch(inputs, self.head_exit_for_cut(cut), scratch)
    }

    /// [`Self::predict_with_scratch`] resumed from a cached
    /// first-layer feature matrix (see
    /// [`adainf_nn::EarlyExitMlp::predict_from_features_with_scratch`]):
    /// `features` rows must come from [`Self::features_into`] at the
    /// same model version. Predictions are bit-identical to the input
    /// pass at one dense layer less.
    pub fn predict_from_features_with_scratch(
        &self,
        features: &Matrix,
        cut: usize,
        scratch: &mut InferScratch,
    ) -> Vec<usize> {
        self.head.predict_from_features_with_scratch(
            features,
            self.head_exit_for_cut(cut),
            scratch,
        )
    }

    /// Mini-batch size of the head's SGD.
    pub const SGD_BATCH: usize = 32;

    /// One retraining slice: mini-batch SGD over `samples` for `epochs`
    /// passes, bumping the version. Empty batches are no-ops.
    pub fn train_slice(&mut self, samples: &LabeledSamples, epochs: usize) {
        if samples.is_empty() || epochs == 0 {
            return;
        }
        let n = samples.len();
        for _ in 0..epochs {
            let mut start = 0;
            while start < n {
                let end = (start + Self::SGD_BATCH).min(n);
                // Chunks are contiguous row ranges: copy the slab into the
                // reusable scratch matrix and borrow the label slice —
                // zero allocations per mini-batch once warm, and the SGD
                // math is unchanged (identical rows, identical order).
                self.slice_scratch
                    .inputs
                    .copy_rows_from(&samples.inputs, start, end);
                self.head
                    .train_batch_parts(&self.slice_scratch.inputs, &samples.labels[start..end]);
                start = end;
            }
        }
        self.version += 1;
        self.trained_samples += n as u64;
    }

    /// [`Self::train_slice`] through caller-owned buffers — the entry
    /// point for parallel training fan-outs (one warmed
    /// [`TrainSliceScratch`] per worker). Identical chunking, identical
    /// SGD math, identical version/sample accounting; results are bit
    /// for bit the same as the embedded-scratch path.
    pub fn train_slice_with(
        &mut self,
        samples: &LabeledSamples,
        epochs: usize,
        scratch: &mut TrainSliceScratch,
    ) {
        if samples.is_empty() || epochs == 0 {
            return;
        }
        let n = samples.len();
        for _ in 0..epochs {
            let mut start = 0;
            while start < n {
                let end = (start + Self::SGD_BATCH).min(n);
                scratch
                    .inputs
                    .copy_rows_from(&samples.inputs, start, end);
                self.head.train_batch_parts_with(
                    &scratch.inputs,
                    &samples.labels[start..end],
                    &mut scratch.net,
                );
                start = end;
            }
        }
        self.version += 1;
        self.trained_samples += n as u64;
    }

    /// First-layer feature representation of samples — what the drift
    /// detector uses as "the feature vector of every new sample" (§3.2).
    pub fn features(&self, samples: &LabeledSamples) -> Matrix {
        self.head.features(&samples.inputs)
    }

    /// [`Self::features`] into a caller-owned buffer (reshaped in
    /// place) — the drift data path reuses one feature matrix per
    /// period instead of allocating per pass.
    pub fn features_into(&self, samples: &LabeledSamples, out: &mut Matrix) {
        self.head.features_into(&samples.inputs, out);
    }

    /// Snapshot of the head parameters (for parameter averaging, §3.3.2).
    pub fn snapshot_params(&self) -> Vec<f32> {
        self.head.flatten_params()
    }

    /// Replaces the head parameters with a snapshot.
    pub fn load_params(&mut self, params: &[f32]) {
        self.head.load_params(params);
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use adainf_driftgen::{TaskStream, TaskStreamConfig};

    fn setup() -> (TrainableModel, TaskStream) {
        let root = Prng::new(77);
        let mut rng = root.split(1);
        let model = TrainableModel::new(zoo::mobilenet_v2(), 6, &mut rng);
        let stream = TaskStream::new(
            TaskStreamConfig::new("vehicle", 6, 9).with_drift(0.4, 0.2),
            &root,
        );
        (model, stream)
    }

    #[test]
    fn exit_mapping_is_proportional_and_total() {
        let (model, _) = setup();
        let l = model.profile.num_layers();
        assert_eq!(model.head_exit_for_cut(l - 1), HEAD_EXITS - 1);
        assert_eq!(model.head_exit_for_cut(0), 0);
        // Monotone in cut.
        let mut prev = 0;
        for cut in 0..l {
            let e = model.head_exit_for_cut(cut);
            assert!(e >= prev);
            prev = e;
        }
    }

    #[test]
    fn training_improves_accuracy_and_bumps_version() {
        let (mut model, mut stream) = setup();
        let train = stream.sample(400);
        let eval = stream.sample(400);
        let before = model.accuracy_on(&eval, model.profile.full_cut());
        assert_eq!(model.version(), 0);
        for _ in 0..30 {
            model.train_slice(&train, 1);
        }
        let after = model.accuracy_on(&eval, model.profile.full_cut());
        assert!(after > before + 0.2, "accuracy {before} -> {after}");
        assert!(after > 0.85, "final accuracy {after}");
        assert_eq!(model.version(), 30);
        assert_eq!(model.trained_samples(), 30 * 400);
    }

    #[test]
    fn deeper_cut_is_at_least_as_accurate() {
        let (mut model, mut stream) = setup();
        let train = stream.sample(600);
        for _ in 0..40 {
            model.train_slice(&train, 1);
        }
        let eval = stream.sample(800);
        let shallow = model.accuracy_on(&eval, 2);
        let full = model.accuracy_on(&eval, model.profile.full_cut());
        // Deep supervision makes this a soft property: the shallow exit
        // can edge out the full exit on easy realisations, but never by a
        // wide margin.
        assert!(
            full + 0.05 >= shallow,
            "full {full} should not trail shallow {shallow}"
        );
    }

    #[test]
    fn empty_slice_is_noop() {
        let (mut model, mut stream) = setup();
        let empty = stream.sample(0);
        model.train_slice(&empty, 3);
        assert_eq!(model.version(), 0);
    }

    /// The external-scratch training path must bit-match the embedded
    /// one — including when one dirty scratch is shared across models,
    /// the parallel fan-out's per-worker usage pattern.
    #[test]
    fn external_scratch_training_matches_embedded() {
        let (mut a, mut stream) = setup();
        let mut b = a.clone();
        let mut scratch = TrainSliceScratch::default();
        let eval = stream.sample(300);
        for round in 0..6 {
            let train = stream.sample(90 + round * 7);
            a.train_slice(&train, 1 + round % 2);
            b.train_slice_with(&train, 1 + round % 2, &mut scratch);
            assert_eq!(a.version(), b.version(), "round {round}");
            assert_eq!(a.trained_samples(), b.trained_samples());
        }
        assert_eq!(a.snapshot_params(), b.snapshot_params());
        assert_eq!(
            a.predict(&eval.inputs, a.profile.full_cut()),
            b.predict(&eval.inputs, b.profile.full_cut())
        );
    }

    #[test]
    fn snapshot_round_trip() {
        let (mut model, mut stream) = setup();
        let train = stream.sample(200);
        model.train_slice(&train, 5);
        let snap = model.snapshot_params();
        let mut other = {
            let root = Prng::new(77);
            let mut rng = root.split(1);
            TrainableModel::new(zoo::mobilenet_v2(), 6, &mut rng)
        };
        other.load_params(&snap);
        let eval = stream.sample(200);
        let a = model.predict(&eval.inputs, model.profile.full_cut());
        let b = other.predict(&eval.inputs, other.profile.full_cut());
        assert_eq!(a, b);
    }
}
