//! Layered cost profiles of DNN backbones.
//!
//! A [`ModelProfile`] describes what the GPU simulator needs to know about
//! a model: per-layer FLOPs, parameter bytes and activation bytes. The
//! synthetic layer distribution follows the usual CNN shape — activations
//! are large in early layers and shrink with depth, parameters are thin
//! early and fat late — which is what makes early exits attractive
//! latency-wise (they skip the parameter-heavy tail) while costing
//! accuracy.

use adainf_gpusim::exec::LayerSpec;
use adainf_gpusim::StructureCost;

/// Spacing of early-exit points: "the layer after every 3 layers of the
/// full structure", following SPINN \[22\] (§2.2).
pub const EXIT_STRIDE: usize = 3;

/// A backbone's cost profile.
#[derive(Clone, Debug)]
pub struct ModelProfile {
    /// Backbone name ("TinyYOLOv3", …).
    pub name: String,
    /// Per-layer forward FLOPs (per sample).
    pub layer_flops: Vec<f64>,
    /// Per-layer parameter bytes.
    pub layer_param_bytes: Vec<u64>,
    /// Per-layer activation bytes (per sample).
    pub layer_activation_bytes: Vec<u64>,
}

impl ModelProfile {
    /// Builds a profile with `n_layers` layers summing to the given
    /// totals, using the standard CNN shape: activation bytes decay
    /// geometrically with depth while parameter bytes grow.
    pub fn synth(
        name: impl Into<String>,
        n_layers: usize,
        total_flops: f64,
        total_param_bytes: u64,
        total_activation_bytes: u64,
    ) -> Self {
        assert!(n_layers >= 2, "profiles need at least two layers");
        let n = n_layers as f64;
        // Geometric weights: activations front-loaded (ratio < 1),
        // parameters back-loaded (ratio > 1), flops mildly front-loaded.
        let weights = |ratio: f64| -> Vec<f64> {
            let raw: Vec<f64> = (0..n_layers).map(|i| ratio.powf(i as f64 / n)).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|w| w / total).collect()
        };
        let act_w = weights(0.15);
        let param_w = weights(6.0);
        let flop_w = weights(0.6);
        ModelProfile {
            name: name.into(),
            layer_flops: flop_w.iter().map(|w| w * total_flops).collect(),
            layer_param_bytes: param_w
                .iter()
                .map(|w| (w * total_param_bytes as f64) as u64)
                .collect(),
            layer_activation_bytes: act_w
                .iter()
                .map(|w| (w * total_activation_bytes as f64) as u64)
                .collect(),
        }
    }

    /// Applies a model-compression factor (DeepSpeed-style, §4): FLOPs
    /// and parameter bytes shrink by `factor`; activation footprints are
    /// architecture-bound and stay.
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn compressed(mut self, factor: f64) -> ModelProfile {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        for f in &mut self.layer_flops {
            *f *= factor;
        }
        for p in &mut self.layer_param_bytes {
            *p = (*p as f64 * factor) as u64;
        }
        self
    }

    /// Number of layers in the full structure.
    pub fn num_layers(&self) -> usize {
        self.layer_flops.len()
    }

    /// The early-exit cut points: layer indices (inclusive) at which the
    /// structure can stop, every [`EXIT_STRIDE`] layers plus the full
    /// structure. A "cut at `c`" runs layers `0..=c`.
    pub fn exit_points(&self) -> Vec<usize> {
        let last = self.num_layers() - 1;
        let mut points: Vec<usize> = (EXIT_STRIDE - 1..last)
            .step_by(EXIT_STRIDE)
            .collect();
        points.push(last);
        points
    }

    /// Layer specs of the structure cut at layer `cut` (inclusive), for
    /// the execution engine.
    ///
    /// # Panics
    /// Panics if `cut` is out of range.
    pub fn structure_layers(&self, cut: usize) -> Vec<LayerSpec> {
        assert!(cut < self.num_layers(), "cut {cut} out of range");
        (0..=cut)
            .map(|i| LayerSpec {
                flops: self.layer_flops[i],
                param_bytes: self.layer_param_bytes[i],
                activation_bytes: self.layer_activation_bytes[i],
            })
            .collect()
    }

    /// Aggregate cost of the structure cut at `cut` (inclusive), for the
    /// latency model.
    pub fn structure_cost(&self, cut: usize) -> StructureCost {
        assert!(cut < self.num_layers(), "cut {cut} out of range");
        StructureCost {
            flops_per_sample: self.layer_flops[..=cut].iter().sum(),
            activation_bytes: self.layer_activation_bytes[..=cut]
                .iter()
                .map(|b| *b as f64)
                .sum(),
            param_bytes: self.layer_param_bytes[..=cut]
                .iter()
                .map(|b| *b as f64)
                .sum(),
        }
    }

    /// Cost of the full structure.
    pub fn full_cost(&self) -> StructureCost {
        self.structure_cost(self.num_layers() - 1)
    }

    /// The full-structure cut index.
    pub fn full_cut(&self) -> usize {
        self.num_layers() - 1
    }

    /// Fraction of the full structure's FLOPs retained by cut `cut`.
    pub fn depth_fraction(&self, cut: usize) -> f64 {
        let total: f64 = self.layer_flops.iter().sum();
        self.structure_cost(cut).flops_per_sample / total.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ModelProfile {
        ModelProfile::synth("test", 13, 9.0e7, 8_000_000, 1_200_000)
    }

    #[test]
    fn totals_are_preserved() {
        let p = profile();
        assert_eq!(p.num_layers(), 13);
        let flops: f64 = p.layer_flops.iter().sum();
        assert!((flops - 9.0e7).abs() / 9.0e7 < 1e-9);
        let params: u64 = p.layer_param_bytes.iter().sum();
        assert!((params as i64 - 8_000_000i64).abs() < 13);
        let act: u64 = p.layer_activation_bytes.iter().sum();
        assert!((act as i64 - 1_200_000i64).abs() < 13);
    }

    #[test]
    fn cnn_shape_holds() {
        let p = profile();
        // Activations shrink with depth; parameters grow.
        assert!(p.layer_activation_bytes[0] > p.layer_activation_bytes[12]);
        assert!(p.layer_param_bytes[0] < p.layer_param_bytes[12]);
    }

    #[test]
    fn exit_points_every_three_layers() {
        let p = profile();
        assert_eq!(p.exit_points(), vec![2, 5, 8, 11, 12]);
        let short = ModelProfile::synth("s", 4, 1e6, 1000, 1000);
        assert_eq!(short.exit_points(), vec![2, 3]);
    }

    #[test]
    fn structure_cost_monotone_in_cut() {
        let p = profile();
        let mut prev = 0.0;
        for cut in p.exit_points() {
            let c = p.structure_cost(cut);
            assert!(c.flops_per_sample > prev);
            prev = c.flops_per_sample;
        }
        assert_eq!(
            p.full_cost().flops_per_sample,
            p.structure_cost(p.full_cut()).flops_per_sample
        );
    }

    #[test]
    fn depth_fraction_is_one_at_full() {
        let p = profile();
        assert!((p.depth_fraction(p.full_cut()) - 1.0).abs() < 1e-12);
        assert!(p.depth_fraction(2) < 0.5);
    }

    #[test]
    fn compression_scales_flops_and_params_only() {
        let p = profile();
        let act_before: u64 = p.layer_activation_bytes.iter().sum();
        let c = p.clone().compressed(0.5);
        let flops: f64 = c.layer_flops.iter().sum();
        assert!((flops - 4.5e7).abs() / 4.5e7 < 1e-9);
        let act_after: u64 = c.layer_activation_bytes.iter().sum();
        assert_eq!(act_before, act_after);
    }

    #[test]
    #[should_panic(expected = "factor must be in")]
    fn bad_compression_rejected() {
        profile().compressed(1.5);
    }

    #[test]
    fn structure_layers_match_cost() {
        let p = profile();
        let layers = p.structure_layers(5);
        assert_eq!(layers.len(), 6);
        let flops: f64 = layers.iter().map(|l| l.flops).sum();
        assert!((flops - p.structure_cost(5).flops_per_sample).abs() < 1e-6);
    }
}
