//! The edge server: GPU inventory and utilization accounting.
//!
//! The paper's default testbed is an AWS p3.8xlarge with 4 NVLinked V100
//! GPUs (64 GB pooled GPU memory); 1-, 8- and 16-GPU variants are used in
//! the scaling experiments (Figs 18c/19c). MPS-style space multiplexing
//! lets multiple applications share a GPU, which is how all methods reach
//! ~100 % utilization (Fig 21).

use crate::latency::LatencyModel;
use crate::memory::MemoryConfig;
use adainf_simcore::{SimDuration, SimTime};

/// Hardware description of the edge server.
#[derive(Clone, Debug)]
pub struct GpuSpec {
    /// Number of GPUs.
    pub num_gpus: u32,
    /// GPU memory per device, bytes (V100: 16 GB).
    pub memory_per_gpu: u64,
    /// The compute-latency law of this GPU class.
    pub latency: LatencyModel,
    /// §6 extension — heterogeneous fleets: per-device speed factors
    /// relative to the reference class (`1.0` = a V100-equivalent).
    /// Empty means a homogeneous fleet of `num_gpus` reference devices.
    /// Allocations throughout the system are expressed in
    /// reference-GPU-equivalents, so a fleet `[1.0, 0.5, 0.5]` offers a
    /// total space of 2.0 equivalents.
    pub device_factors: Vec<f64>,
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec {
            num_gpus: 4,
            memory_per_gpu: 16 * (1 << 30),
            latency: LatencyModel::default(),
            device_factors: Vec::new(),
        }
    }
}

impl GpuSpec {
    /// A spec with `n` GPUs and defaults otherwise.
    pub fn with_gpus(n: u32) -> Self {
        GpuSpec {
            num_gpus: n,
            ..GpuSpec::default()
        }
    }

    /// A heterogeneous fleet described by per-device speed factors
    /// (§6 "GPU Type Heterogeneity").
    ///
    /// # Panics
    /// Panics on an empty fleet or non-positive factors.
    pub fn heterogeneous(factors: Vec<f64>) -> Self {
        assert!(
            !factors.is_empty() && factors.iter().all(|f| *f > 0.0),
            "fleet factors must be positive"
        );
        GpuSpec {
            num_gpus: factors.len() as u32,
            memory_per_gpu: 16 * (1 << 30),
            latency: LatencyModel::default(),
            device_factors: factors,
        }
    }

    /// Total GPU compute space available, in reference-GPU equivalents.
    pub fn total_space(&self) -> f64 {
        if self.device_factors.is_empty() {
            self.num_gpus as f64
        } else {
            self.device_factors.iter().sum()
        }
    }

    /// A memory configuration matching this server's pooled capacity.
    pub fn memory_config(&self) -> MemoryConfig {
        MemoryConfig {
            gpu_capacity: self.memory_per_gpu * self.num_gpus as u64,
            ..MemoryConfig::default()
        }
    }
}

/// Busy-time accounting for Fig 21 (per-second GPU utilization).
#[derive(Clone, Debug)]
pub struct EdgeServer {
    spec: GpuSpec,
    /// Busy GPU-microseconds per 1 s window.
    busy_us: Vec<f64>,
}

impl EdgeServer {
    /// Creates a server with no usage recorded.
    pub fn new(spec: GpuSpec) -> Self {
        EdgeServer {
            spec,
            busy_us: Vec::new(),
        }
    }

    /// Hardware description.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Records that `gpu_amount` GPUs were busy for `duration` starting at
    /// `start`, spreading the usage over the 1 s windows it spans.
    pub fn record_busy(&mut self, start: SimTime, duration: SimDuration, gpu_amount: f64) {
        if duration == SimDuration::ZERO || gpu_amount <= 0.0 {
            return;
        }
        let mut t = start.as_micros();
        let end = t + duration.as_micros();
        while t < end {
            let window = (t / 1_000_000) as usize;
            let window_end = (window as u64 + 1) * 1_000_000;
            let span = window_end.min(end) - t;
            if window >= self.busy_us.len() {
                self.busy_us.resize(window + 1, 0.0);
            }
            self.busy_us[window] += span as f64 * gpu_amount;
            t = window_end.min(end);
        }
    }

    /// Utilization per 1 s window in `\[0, 1\]`, clamped (over-subscription
    /// through MPS shows as 1.0, matching what `nvidia-smi` reports).
    pub fn utilization_per_second(&self) -> Vec<f64> {
        let capacity = self.spec.total_space() * 1_000_000.0;
        self.busy_us
            .iter()
            .map(|b| (b / capacity).min(1.0))
            .collect()
    }

    /// Mean utilization across all recorded windows.
    pub fn mean_utilization(&self) -> f64 {
        let u = self.utilization_per_second();
        if u.is_empty() {
            0.0
        } else {
            u.iter().sum::<f64>() / u.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_splits_across_windows() {
        let mut s = EdgeServer::new(GpuSpec::with_gpus(2));
        // 1.5 s of 1 GPU starting at 0.75 s.
        s.record_busy(
            SimTime::from_millis(750),
            SimDuration::from_millis(1500),
            1.0,
        );
        let u = s.utilization_per_second();
        assert_eq!(u.len(), 3);
        assert!((u[0] - 0.125).abs() < 1e-9); // 250 ms of 1 GPU / 2 GPUs
        assert!((u[1] - 0.5).abs() < 1e-9);
        assert!((u[2] - 0.125).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamps_at_one() {
        let mut s = EdgeServer::new(GpuSpec::with_gpus(1));
        s.record_busy(SimTime::ZERO, SimDuration::from_secs(1), 3.0);
        assert_eq!(s.utilization_per_second(), vec![1.0]);
    }

    #[test]
    fn zero_records_are_ignored() {
        let mut s = EdgeServer::new(GpuSpec::default());
        s.record_busy(SimTime::ZERO, SimDuration::ZERO, 1.0);
        s.record_busy(SimTime::ZERO, SimDuration::from_secs(1), 0.0);
        assert!(s.utilization_per_second().is_empty());
        assert_eq!(s.mean_utilization(), 0.0);
    }

    #[test]
    fn spec_memory_pools_across_gpus() {
        let spec = GpuSpec::with_gpus(4);
        assert_eq!(spec.memory_config().gpu_capacity, 64 * (1 << 30));
        assert_eq!(spec.total_space(), 4.0);
    }

    #[test]
    fn heterogeneous_fleet_space_in_equivalents() {
        let spec = GpuSpec::heterogeneous(vec![1.0, 1.0, 0.5, 0.5]);
        assert_eq!(spec.num_gpus, 4);
        assert_eq!(spec.total_space(), 3.0);
        assert_eq!(spec.memory_config().gpu_capacity, 64 * (1 << 30));
    }

    #[test]
    #[should_panic(expected = "fleet factors must be positive")]
    fn bad_fleet_rejected() {
        GpuSpec::heterogeneous(vec![1.0, 0.0]);
    }
}
