//! GPU compute-latency model.
//!
//! The model reproduces the qualitative laws of §2.3 (Obs. 5–6):
//!
//! * Per-batch latency grows **sublinearly** in batch size while the batch
//!   fits the allocated compute space (parallelism amortises work), then
//!   **superlinearly** past a saturation knee (spill/serialisation).
//!   Worst-case latency `ceil(N/b) · per_batch(b)` therefore has an
//!   interior minimum — the optimal request batch size (Fig 8).
//! * The knee scales with the allocated GPU fraction (optimal batch
//!   4/8/16/16 at 25/50/75/100 % space — Fig 9) and with the structure's
//!   compute density (lighter early-exit structures saturate later —
//!   Fig 10).
//! * Effective throughput scales as `fraction^δ` with `δ < 1`: small MPS
//!   partitions lose some efficiency, as observed for real MPS.
//!
//! Retraining cost per sample is a constant expansion of inference cost
//! (forward + backward + update).
//!
//! The absolute constants are *calibrations*, not measurements — see
//! DESIGN.md. The shape constants were chosen so the knee sits at batch 16
//! for the surveillance application's full structure on a whole V100-class
//! GPU, matching Fig 8.

use adainf_simcore::SimDuration;

/// The compute/memory footprint of one model structure (full or
/// early-exit), as used by the latency model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructureCost {
    /// Forward-pass FLOPs per sample.
    pub flops_per_sample: f64,
    /// Peak per-sample activation footprint in bytes (drives the memory
    /// pressure a batch creates).
    pub activation_bytes: f64,
    /// Total parameter bytes of the structure.
    pub param_bytes: f64,
}

impl StructureCost {
    /// Adds two costs (used to aggregate a DAG's structures).
    pub fn plus(self, other: StructureCost) -> StructureCost {
        StructureCost {
            flops_per_sample: self.flops_per_sample + other.flops_per_sample,
            activation_bytes: self.activation_bytes + other.activation_bytes,
            param_bytes: self.param_bytes + other.param_bytes,
        }
    }

    /// The all-zero cost.
    pub fn zero() -> StructureCost {
        StructureCost {
            flops_per_sample: 0.0,
            activation_bytes: 0.0,
            param_bytes: 0.0,
        }
    }
}

/// Candidate request batch sizes considered by every scheduler.
pub const BATCH_CANDIDATES: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The compute-latency law of one GPU class.
///
/// ```
/// use adainf_gpusim::{LatencyModel, StructureCost};
/// let model = LatencyModel::default();
/// let surveillance = StructureCost {
///     flops_per_sample: 1.5e8,
///     activation_bytes: 2.0e6,
///     param_bytes: 3.0e7,
/// };
/// // Fig 8: the optimal request batch size at a full GPU is 16.
/// let (batch, _) = model.optimal_batch(&surveillance, 64, 1.0);
/// assert_eq!(batch, 16);
/// // Fig 9: at 25 % of a GPU the optimum shrinks to 4.
/// assert_eq!(model.optimal_batch(&surveillance, 64, 0.25).0, 4);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Effective serving throughput of a whole GPU, FLOPs/s.
    pub throughput: f64,
    /// Exponent δ of `fraction^δ` throughput scaling (MPS inefficiency).
    pub space_exponent: f64,
    /// Sublinear batch-cost exponent below the knee.
    pub batch_alpha: f64,
    /// Superlinear spill exponent above the knee.
    pub spill_beta: f64,
    /// Spill cost gain above the knee.
    pub spill_gain: f64,
    /// Fixed per-batch overhead, µs (kernel launches etc.). Launch
    /// latency does not scale with the MPS partition size, so this is
    /// flat in the fraction.
    pub overhead_us: f64,
    /// Exponent of overhead growth as the fraction shrinks (0 = flat).
    pub overhead_exponent: f64,
    /// Knee batch size for the reference structure on a whole GPU.
    pub knee_ref: f64,
    /// Exponent of knee scaling with the GPU fraction (≈ linear per Fig 9).
    pub knee_space_exponent: f64,
    /// FLOPs/sample of the reference structure (surveillance full DAG).
    pub flops_ref: f64,
    /// Activation bytes/sample of the reference structure.
    pub act_ref: f64,
    /// Retraining cost per sample relative to inference. Training runs
    /// forward + backward + optimiser at full input resolution (inference
    /// serves the compressed/downsampled path), so the per-sample ratio
    /// is far above the textbook 3×; calibrated so bulk-retraining a
    /// period's pool takes the ~20 s the paper reports (Fig 7b).
    pub train_expansion: f64,
    /// Effective CPU inference throughput, FLOPs/s (§6 "DNN Execution in
    /// CPUs": low-rate jobs can be served on the host CPU, freeing GPU).
    pub cpu_throughput: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            throughput: 4.0e12,
            space_exponent: 0.85,
            batch_alpha: 0.75,
            spill_beta: 1.5,
            spill_gain: 1.0,
            overhead_us: 350.0,
            overhead_exponent: 0.0,
            knee_ref: 16.0,
            knee_space_exponent: 1.0,
            flops_ref: 1.5e8,
            act_ref: 2.0e6,
            train_expansion: 9.0,
            cpu_throughput: 1.2e11,
        }
    }
}

impl LatencyModel {
    /// Saturation knee (in samples) for `structure` at GPU fraction
    /// `frac ∈ (0, 1]`. Heavier structures (more FLOPs, bigger
    /// activations) saturate earlier; more space pushes the knee out.
    pub fn knee(&self, structure: &StructureCost, frac: f64) -> f64 {
        let frac = frac.clamp(1e-4, 1.0);
        let flop_scale = (self.flops_ref / structure.flops_per_sample.max(1.0)).sqrt();
        let act_scale = (self.act_ref / structure.activation_bytes.max(1.0)).sqrt();
        (self.knee_ref * frac.powf(self.knee_space_exponent) * flop_scale * act_scale)
            .max(1.0)
    }

    /// Batch cost in "sample units": sublinear below the knee, superlinear
    /// above it. `cost(b)/b` is the per-request efficiency.
    fn batch_cost_units(&self, batch: u32, knee: f64) -> f64 {
        let b = batch.max(1) as f64;
        if b <= knee {
            b.powf(self.batch_alpha)
        } else {
            knee.powf(self.batch_alpha)
                + self.spill_gain * (b - knee).powf(self.spill_beta)
        }
    }

    /// Per-batch **compute** latency (no CPU–GPU communication) of an
    /// inference batch of `batch` requests through `structure` at GPU
    /// fraction `frac`.
    pub fn per_batch_inference(
        &self,
        structure: &StructureCost,
        batch: u32,
        frac: f64,
    ) -> SimDuration {
        let frac = frac.clamp(1e-4, 1.0);
        let knee = self.knee(structure, frac);
        let units = self.batch_cost_units(batch, knee);
        let compute_s = structure.flops_per_sample * units
            / (self.throughput * frac.powf(self.space_exponent));
        let overhead_us = self.overhead_us / frac.powf(self.overhead_exponent);
        SimDuration::from_millis_f64(compute_s * 1e3 + overhead_us / 1e3)
    }

    /// Worst-case latency (§2.3): time to run all `ceil(n/batch)` batches
    /// of a job sequentially.
    pub fn worst_case(
        &self,
        structure: &StructureCost,
        n_requests: u32,
        batch: u32,
        frac: f64,
    ) -> SimDuration {
        if n_requests == 0 {
            return SimDuration::ZERO;
        }
        let batches = n_requests.div_ceil(batch.max(1)) as u64;
        self.per_batch_inference(structure, batch, frac) * batches
    }

    /// Per-batch retraining latency for a batch of `batch` samples.
    pub fn per_batch_training(
        &self,
        structure: &StructureCost,
        batch: u32,
        frac: f64,
    ) -> SimDuration {
        self.per_batch_inference(structure, batch, frac)
            .mul_f64(self.train_expansion)
    }

    /// Retraining latency for a whole setting: `samples` samples in
    /// batches of `batch`, for `epochs` passes.
    pub fn training_latency(
        &self,
        structure: &StructureCost,
        samples: u32,
        batch: u32,
        epochs: u32,
        frac: f64,
    ) -> SimDuration {
        if samples == 0 || epochs == 0 {
            return SimDuration::ZERO;
        }
        let batches = samples.div_ceil(batch.max(1)) as u64;
        self.per_batch_training(structure, batch, frac) * batches * epochs as u64
    }

    /// Number of retraining samples that fit in `budget` at the given
    /// setting — the **exact** inverse of [`Self::training_latency`] for
    /// one epoch at batch granularity. One-epoch latency depends on the
    /// sample count only through `ceil(n/batch)`, so the maximal count
    /// that fits is a whole number of batches:
    /// `⌊budget/per_batch⌋ · batch` fits, and any count one batch larger
    /// does not (see `samples_within_is_exact_inverse_at_batch_edges`).
    pub fn samples_within(
        &self,
        structure: &StructureCost,
        batch: u32,
        frac: f64,
        budget: SimDuration,
    ) -> u32 {
        let per_batch = self.per_batch_training(structure, batch, frac);
        if per_batch == SimDuration::ZERO {
            return 0;
        }
        let batches = budget.as_micros() / per_batch.as_micros();
        // A huge budget over a featherweight setting can exceed u32
        // batches; saturate instead of silently truncating (the old
        // `as u32` cast wrapped, returning a tiny sample budget).
        u32::try_from(batches)
            .unwrap_or(u32::MAX)
            .saturating_mul(batch.max(1))
    }

    /// A copy of this law for a transiently stalled device — the chaos
    /// suite's injection point for device-stall faults. A stall slows
    /// compute and kernel launches alike, so every GPU latency this
    /// model produces scales by `factor` (clamped to ≥ 1).
    pub fn with_stall(&self, factor: f64) -> LatencyModel {
        let f = factor.max(1.0);
        LatencyModel {
            throughput: self.throughput / f,
            overhead_us: self.overhead_us * f,
            ..self.clone()
        }
    }

    /// CPU inference latency for a job of `n` requests (§6): CPUs gain
    /// nothing from batching, so the job runs request by request at the
    /// CPU's effective throughput.
    pub fn cpu_inference(&self, structure: &StructureCost, n: u32) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        let per_request_ms =
            structure.flops_per_sample / self.cpu_throughput * 1e3 + 0.05;
        SimDuration::from_millis_f64(per_request_ms * n as f64)
    }

    /// The batch size among [`BATCH_CANDIDATES`] minimising worst-case
    /// latency for a job of `n_requests`, together with that latency.
    pub fn optimal_batch(
        &self,
        structure: &StructureCost,
        n_requests: u32,
        frac: f64,
    ) -> (u32, SimDuration) {
        let n = n_requests.max(1);
        BATCH_CANDIDATES
            .iter()
            .map(|&b| (b, self.worst_case(structure, n, b, frac)))
            .min_by_key(|(_, wc)| wc.as_micros())
            // simlint: allow(no-unwrap-in-lib) — BATCH_CANDIDATES is a non-empty const
            .expect("candidates are non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> StructureCost {
        StructureCost {
            flops_per_sample: 1.5e8,
            activation_bytes: 2.0e6,
            param_bytes: 3.0e7,
        }
    }

    #[test]
    fn per_batch_latency_increases_with_batch() {
        let m = LatencyModel::default();
        let s = reference();
        let mut prev = SimDuration::ZERO;
        for &b in &BATCH_CANDIDATES {
            let l = m.per_batch_inference(&s, b, 1.0);
            assert!(l > prev, "batch {b}: {l:?} <= {prev:?}");
            prev = l;
        }
    }

    #[test]
    fn optimal_batch_is_16_at_full_gpu_for_reference() {
        // Fig 8: the reference structure has optimal batch 16 on a whole
        // GPU with a job of several batches.
        let m = LatencyModel::default();
        let (b, _) = m.optimal_batch(&reference(), 64, 1.0);
        assert_eq!(b, 16);
    }

    #[test]
    fn optimal_batch_shrinks_with_space() {
        // Fig 9: optimal batch 4/8/16/16 at 25/50/75/100 % GPU space.
        let m = LatencyModel::default();
        let s = reference();
        let opt = |frac: f64| m.optimal_batch(&s, 64, frac).0;
        assert_eq!(opt(0.25), 4);
        assert_eq!(opt(0.5), 8);
        assert_eq!(opt(0.75), 16);
        assert_eq!(opt(1.0), 16);
    }

    #[test]
    fn lighter_structures_have_larger_optimal_batch() {
        // Fig 10: early-exit (lighter) structures saturate later.
        let m = LatencyModel::default();
        let light = StructureCost {
            flops_per_sample: 4.0e7,
            activation_bytes: 6.0e5,
            param_bytes: 1.0e7,
        };
        let (b_full, _) = m.optimal_batch(&reference(), 128, 1.0);
        let (b_light, _) = m.optimal_batch(&light, 128, 1.0);
        assert!(b_light > b_full, "light {b_light} vs full {b_full}");
    }

    #[test]
    fn activation_heavy_structure_has_smaller_optimal_batch() {
        // The "optimal batch 4" structure of Fig 10: moderate FLOPs but a
        // large per-sample activation footprint.
        let m = LatencyModel::default();
        let act_heavy = StructureCost {
            flops_per_sample: 6.0e8,
            activation_bytes: 4.0e7,
            param_bytes: 2.0e7,
        };
        let (b, _) = m.optimal_batch(&act_heavy, 64, 1.0);
        assert!(b <= 4, "activation-heavy opt batch {b}");
    }

    #[test]
    fn less_space_means_more_latency() {
        let m = LatencyModel::default();
        let s = reference();
        let full = m.per_batch_inference(&s, 4, 1.0);
        let half = m.per_batch_inference(&s, 4, 0.5);
        let tiny = m.per_batch_inference(&s, 4, 0.05);
        assert!(half > full);
        assert!(tiny > half);
        // δ < 1: at a batch below both knees, halving space less than
        // doubles latency.
        assert!(
            half.as_micros() < full.as_micros() * 2,
            "half {half:?} vs full {full:?}"
        );
    }

    #[test]
    fn training_is_more_expensive_and_invertible() {
        let m = LatencyModel::default();
        let s = reference();
        let inf = m.per_batch_inference(&s, 16, 0.5);
        let tr = m.per_batch_training(&s, 16, 0.5);
        assert!(tr > inf * 5);
        let lat = m.training_latency(&s, 160, 16, 1, 0.5);
        assert_eq!(lat, tr * 10);
        // samples_within inverts exactly at batch granularity.
        let n = m.samples_within(&s, 16, 0.5, lat);
        assert_eq!(n, 160);
    }

    #[test]
    fn samples_within_is_exact_inverse_at_batch_edges() {
        // Property: for any setting, the returned count fits the budget
        // and one more batch does not — `samples_within` is the exact
        // inverse of one-epoch `training_latency` at batch granularity.
        let m = LatencyModel::default();
        let structures = [
            reference(),
            StructureCost {
                flops_per_sample: 4.0e7,
                activation_bytes: 6.0e5,
                param_bytes: 1.0e7,
            },
        ];
        for s in &structures {
            for &batch in &BATCH_CANDIDATES {
                for frac in [0.25, 0.5, 1.0] {
                    let per = m.per_batch_training(s, batch, frac);
                    for budget in [
                        per.mul_f64(0.4),
                        per,
                        per * 3 + SimDuration::from_micros(per.as_micros() / 2),
                        per * 57,
                        SimDuration::from_secs(2),
                    ] {
                        let n = m.samples_within(s, batch, frac, budget);
                        assert!(
                            m.training_latency(s, n, batch, 1, frac) <= budget,
                            "batch {batch} frac {frac}: n={n} overruns {budget:?}"
                        );
                        assert!(
                            m.training_latency(s, n + batch, batch, 1, frac) > budget,
                            "batch {batch} frac {frac}: n={n} not maximal for {budget:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn samples_within_saturates_instead_of_wrapping() {
        // A near-infinite budget must saturate, not wrap the u32 batch
        // count into a tiny sample allowance.
        let m = LatencyModel::default();
        let n = m.samples_within(
            &reference(),
            64,
            1.0,
            SimDuration::from_secs(u64::MAX / 2_000_000),
        );
        assert_eq!(n, u32::MAX);
    }

    #[test]
    fn stalled_device_scales_every_latency() {
        let m = LatencyModel::default();
        let stalled = m.with_stall(4.0);
        let s = reference();
        for &batch in &BATCH_CANDIDATES {
            let base = m.per_batch_inference(&s, batch, 0.5).as_millis_f64();
            let slow = stalled.per_batch_inference(&s, batch, 0.5).as_millis_f64();
            let ratio = slow / base;
            // Durations quantise to whole microseconds, so small batches
            // carry a little rounding noise in the ratio.
            assert!(
                (ratio - 4.0).abs() < 2e-2,
                "batch {batch}: stall ratio {ratio}"
            );
        }
        // Factors below 1 are clamped: a "stall" cannot speed things up.
        let clamped = m.with_stall(0.25);
        assert_eq!(
            clamped.per_batch_inference(&s, 16, 1.0),
            m.per_batch_inference(&s, 16, 1.0)
        );
    }

    #[test]
    fn worst_case_zero_requests_is_zero() {
        let m = LatencyModel::default();
        assert_eq!(m.worst_case(&reference(), 0, 16, 1.0), SimDuration::ZERO);
    }

    #[test]
    fn knee_monotone_in_fraction() {
        let m = LatencyModel::default();
        let s = reference();
        assert!(m.knee(&s, 1.0) > m.knee(&s, 0.5));
        assert!(m.knee(&s, 0.5) > m.knee(&s, 0.1));
        assert!(m.knee(&s, 0.001) >= 1.0);
    }
}
