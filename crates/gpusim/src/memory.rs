//! GPU memory management with CPU–GPU communication accounting.
//!
//! All tasks running on the edge server share GPU memory. When it fills,
//! contents are evicted to CPU memory and must be fetched back on reuse —
//! the communication the paper finds responsible for ~24 % of inference
//! latency in the multi-model scenario (Obs. 7, Fig 11).
//!
//! Two eviction policies are provided:
//!
//! * [`EvictionPolicyKind::Lru`] — the baseline used by the comparison
//!   methods and the AdaInf/M2 ablation.
//! * [`EvictionPolicyKind::Priority`] — AdaInf's §3.4.2 policy: each
//!   content type is scored `S_c = (1−α)·R_c + α·L_s`, where `R_c` is the
//!   mean reuse latency of the content's data type and `L_s` the owning
//!   application's SLO; the *highest*-scoring (reused latest / loosest
//!   SLO) contents are evicted first, and among evicted contents the
//!   lower-scoring ones are staged in PIN memory, which transfers back
//!   faster than pageable CPU memory \[13\].
//!
//! The manager also instruments every resident-content reuse with the
//! elapsed time since the previous access, categorised as in Fig 12, and
//! tags cross-task reuses (retraining→inference parameters, inter-model
//! intermediates — Fig 12b) and cross-job parameter reuse (Fig 13).

use crate::content::{ContentKey, ContentType, ReuseCategory, TaskContext};
use adainf_simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Where a non-resident content currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CpuLocation {
    /// Pageable CPU memory (slow path).
    Pageable,
    /// PIN memory (fast path).
    Pinned,
}

/// Eviction policy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicyKind {
    /// Least-recently-used, everything staged pageable.
    Lru,
    /// AdaInf's priority scoring with PIN staging (§3.4.2).
    Priority,
}

/// Configuration of the memory subsystem.
#[derive(Clone, Debug)]
pub struct MemoryConfig {
    /// GPU memory capacity in bytes (pooled across the server's GPUs).
    pub gpu_capacity: u64,
    /// PIN memory capacity in bytes ("a small portion of CPU memory").
    pub pin_capacity: u64,
    /// Pageable CPU↔GPU bandwidth, bytes/s.
    pub pageable_bandwidth: f64,
    /// PIN CPU↔GPU bandwidth, bytes/s (faster than pageable).
    pub pin_bandwidth: f64,
    /// Weight α of the SLO term in `S_c` (§3.4.2; 0.4 in the paper).
    pub alpha: f64,
    /// Which eviction policy to run.
    pub policy: EvictionPolicyKind,
    /// Record per-reuse events (Figs 12–13). Off for long runs.
    pub record_reuse: bool,
    /// Mean reuse latency per category in ms, the `R_c` table obtained
    /// by offline profiling (§3.4.2 "AdaInf takes the mean value of the
    /// range as the value of R_c of the data type").
    pub reuse_table_ms: [f64; 4],
    /// Model PCIe contention: concurrent transfers slow each other
    /// (see [`crate::transfer::TransferBus`]). Off by default to keep
    /// the headline calibration unchanged.
    pub bus_contention: bool,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            gpu_capacity: 16 * (1 << 30),
            pin_capacity: 2 * (1 << 30),
            pageable_bandwidth: 6.0e9,
            pin_bandwidth: 12.0e9,
            alpha: 0.4,
            policy: EvictionPolicyKind::Priority,
            record_reuse: false,
            // Means of the ranges in Fig 12a: intermediate/inference
            // 0.01–1.6 ms, param/retraining 0.02–6 ms,
            // intermediate/retraining 0.02–7.5 ms, param/inference
            // 67–68.6 ms.
            reuse_table_ms: [0.8, 3.0, 3.8, 67.8],
            bus_contention: false,
        }
    }
}

/// Why a reuse was notable across tasks (Fig 12b) or jobs (Fig 13).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossReuse {
    /// Parameters updated by retraining, reused by the same model's
    /// inference task.
    ParamRetrainToInference,
    /// A model's last-layer intermediate output consumed by a downstream
    /// model's inference in the DAG.
    IntermediateAcrossModels,
    /// Parameters last touched by one job, reused by the next job of the
    /// same application.
    ParamAcrossJobs,
}

/// One recorded content reuse.
#[derive(Clone, Copy, Debug)]
pub struct ReuseEvent {
    /// Reuse category (content type × task context of the reuse).
    pub category: ReuseCategory,
    /// Time since the previous access of this content.
    pub elapsed: SimDuration,
    /// Cross-task/cross-job tag, if applicable.
    pub cross: Option<CrossReuse>,
}

#[derive(Clone, Debug)]
struct Resident {
    bytes: u64,
    last_access: SimTime,
    last_ctx: TaskContext,
    /// Job that last touched the content (for cross-job detection).
    last_job: u64,
    /// Model that last touched the content (for cross-model detection).
    last_model: u32,
    /// SLO of the owning application in ms (for the `S_c` score).
    slo_ms: f64,
    /// True once the owning job retired (intermediates only): the block
    /// is garbage and can be dropped with no writeback.
    dead: bool,
}

/// Statistics the memory manager accumulates.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryStats {
    /// Resident-hit accesses.
    pub hits: u64,
    /// Misses that required a CPU→GPU fetch.
    pub fetches: u64,
    /// First-touch allocations (produced on GPU, no fetch).
    pub produces: u64,
    /// Contents evicted GPU→CPU.
    pub evictions: u64,
    /// Dead contents dropped without writeback.
    pub drops: u64,
    /// Total CPU→GPU + GPU→CPU transfer time.
    pub comm_time: SimDuration,
    /// Total bytes moved either direction.
    pub bytes_moved: u64,
    /// Evictions + drops forced by [`GpuMemory::apply_pressure`]
    /// capacity collapses (eviction storms), a subset of
    /// `evictions + drops`.
    pub pressure_evictions: u64,
}

/// The shared GPU memory manager.
#[derive(Clone, Debug)]
pub struct GpuMemory {
    config: MemoryConfig,
    /// Capacity currently enforced: the configured bytes, except while
    /// an injected memory-pressure fault holds it lower.
    effective_capacity: u64,
    resident: BTreeMap<ContentKey, Resident>,
    used: u64,
    /// Non-resident contents we know about, and where they live.
    spilled: BTreeMap<ContentKey, CpuLocation>,
    pin_used: u64,
    stats: MemoryStats,
    reuse_events: Vec<ReuseEvent>,
    /// Last access of every known content regardless of residency —
    /// reuse intervals (Figs 12–13) span evictions: a parameter evicted
    /// between jobs is still *reused* by the next job.
    last_touch: BTreeMap<ContentKey, (SimTime, TaskContext, u64, u32)>,
    /// Shared PCIe bus, used when `bus_contention` is enabled.
    bus: crate::transfer::TransferBus,
}

/// How an access obtains the content if it is not resident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessIntent {
    /// Content must be loaded from CPU memory if absent (parameters,
    /// previously produced activations).
    Fetch,
    /// Content is produced on the GPU (a layer writing its output);
    /// absence costs only allocation/eviction, not a fetch.
    Produce,
}

impl GpuMemory {
    /// Creates an empty memory with the given configuration.
    pub fn new(config: MemoryConfig) -> Self {
        let bus = crate::transfer::TransferBus::new(config.pageable_bandwidth);
        GpuMemory {
            effective_capacity: config.gpu_capacity,
            config,
            resident: BTreeMap::new(),
            used: 0,
            spilled: BTreeMap::new(),
            pin_used: 0,
            stats: MemoryStats::default(),
            reuse_events: Vec::new(),
            last_touch: BTreeMap::new(),
            bus,
        }
    }

    /// Transfer cost of `bytes` over the given link bandwidth, inflated
    /// by bus contention when enabled.
    fn transfer_cost(&mut self, bytes: u64, bandwidth: f64, now: SimTime) -> SimDuration {
        let nominal = SimDuration::from_millis_f64(bytes as f64 / bandwidth * 1e3);
        if !self.config.bus_contention {
            return nominal;
        }
        // The bus tracks physical occupancy at the pageable rate; the
        // PIN speed-up is applied as a ratio on the contended figure.
        let contended = self.bus.charge(bytes, now);
        contended.mul_f64(nominal.as_millis_f64() / self.bus.nominal(bytes).as_millis_f64().max(1e-12))
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Recorded reuse events (empty unless `record_reuse`).
    pub fn reuse_events(&self) -> &[ReuseEvent] {
        &self.reuse_events
    }

    /// Clears recorded reuse events (between measurement phases).
    pub fn clear_reuse_events(&mut self) {
        self.reuse_events.clear();
    }

    /// `S_c = (1−α)·R_c + α·L_s` for a resident entry (§3.4.2). Dead
    /// blocks score infinitely high: they are never needed again.
    fn score(&self, key: &ContentKey, entry: &Resident) -> f64 {
        if entry.dead {
            return f64::INFINITY;
        }
        let cat = ReuseCategory::of(key.ctype, entry.last_ctx);
        let idx = match cat {
            ReuseCategory::IntermediateInference => 0,
            ReuseCategory::ParamRetraining => 1,
            ReuseCategory::IntermediateRetraining => 2,
            ReuseCategory::ParamInference => 3,
        };
        let r_c = self.config.reuse_table_ms[idx];
        (1.0 - self.config.alpha) * r_c + self.config.alpha * entry.slo_ms
    }

    /// Frees space for `needed` bytes by evicting victims according to the
    /// configured policy. Returns the GPU→CPU transfer time incurred.
    fn make_room(&mut self, needed: u64, now: SimTime) -> SimDuration {
        if self.used + needed <= self.effective_capacity {
            return SimDuration::ZERO;
        }
        let mut to_free = (self.used + needed).saturating_sub(self.effective_capacity);
        // Rank victims: LRU by last access, Priority by descending S_c
        // (ties broken by older access for determinism).
        struct Victim {
            key: ContentKey,
            bytes: u64,
            score: f64,
            last_access: SimTime,
            dead: bool,
            slo_ms: f64,
        }
        let mut victims: Vec<Victim> = self
            .resident
            .iter()
            .map(|(k, e)| Victim {
                key: *k,
                bytes: e.bytes,
                score: self.score(k, e),
                last_access: e.last_access,
                dead: e.dead,
                slo_ms: e.slo_ms,
            })
            .collect();
        match self.config.policy {
            EvictionPolicyKind::Lru => {
                victims.sort_by_key(|v| (v.last_access, v.key));
            }
            EvictionPolicyKind::Priority => {
                victims.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        // simlint: allow(no-unwrap-in-lib) — victim scores are reuse distances: finite or +inf, never NaN
                        .expect("scores are finite or +inf")
                        .then(a.last_access.cmp(&b.last_access))
                        .then(a.key.cmp(&b.key))
                });
            }
        }
        let mut comm = SimDuration::ZERO;
        for v in victims {
            if to_free == 0 {
                break;
            }
            self.resident.remove(&v.key);
            if cfg!(feature = "strict-invariants") {
                assert!(
                    self.used >= v.bytes,
                    "strict-invariants: evicting {} B with only {} B accounted resident",
                    v.bytes,
                    self.used
                );
            }
            self.used -= v.bytes;
            to_free = to_free.saturating_sub(v.bytes);
            if v.dead {
                // Garbage: dropped, no writeback.
                self.stats.drops += 1;
                continue;
            }
            self.stats.evictions += 1;
            self.stats.bytes_moved += v.bytes;
            // Stage in PIN when the policy supports it and the content is
            // expected back soon (low score) and PIN has room.
            let location = if self.config.policy == EvictionPolicyKind::Priority
                && v.score < self.pin_score_threshold(v.slo_ms)
                && self.pin_used + v.bytes <= self.config.pin_capacity
            {
                self.pin_used += v.bytes;
                CpuLocation::Pinned
            } else {
                CpuLocation::Pageable
            };
            let bandwidth = match location {
                CpuLocation::Pinned => self.config.pin_bandwidth,
                CpuLocation::Pageable => self.config.pageable_bandwidth,
            };
            comm += self.transfer_cost(v.bytes, bandwidth, now);
            self.spilled.insert(v.key, location);
        }
        self.stats.comm_time += comm;
        comm
    }

    /// PIN-staging threshold for a victim whose owning application has
    /// SLO `slo_ms`: contents scoring below it go to PIN. The threshold
    /// separates the "reused soon" categories (intermediates, retraining
    /// params) from the "reused next job" category, using the midpoint
    /// between the retraining-intermediate and inference-param `R_c`
    /// values — with the victim's own SLO as the `L_s` term, so the
    /// comparison `S_c < threshold` reduces to `R_c < mid` for every
    /// application regardless of how tight its SLO is. (An earlier
    /// version hardcoded a 500 ms SLO term, which mis-staged PIN for any
    /// application whose SLO was far from that: tight-SLO apps pinned
    /// their never-coming-back inference params, loose-SLO apps never
    /// pinned their about-to-be-reused retraining intermediates.)
    fn pin_score_threshold(&self, slo_ms: f64) -> f64 {
        let t = &self.config.reuse_table_ms;
        let mid = (t[2] + t[3]) / 2.0;
        (1.0 - self.config.alpha) * mid + self.config.alpha * slo_ms
    }

    /// Chaos injection point: collapses the enforced capacity to `frac`
    /// of the configured bytes and immediately evicts down to it — an
    /// eviction storm. The storm's evictions and drops are accounted in
    /// [`MemoryStats::pressure_evictions`] as well as the regular
    /// counters. Returns the writeback time incurred.
    pub fn apply_pressure(&mut self, frac: f64, now: SimTime) -> SimDuration {
        let frac = frac.clamp(0.0, 1.0);
        self.effective_capacity =
            ((self.config.gpu_capacity as f64 * frac).max(1.0)) as u64;
        let before = self.stats.evictions + self.stats.drops;
        let comm = self.make_room(0, now);
        self.stats.pressure_evictions +=
            (self.stats.evictions + self.stats.drops).saturating_sub(before);
        comm
    }

    /// Lifts [`Self::apply_pressure`]: the configured capacity is
    /// enforced again from the next access on.
    pub fn release_pressure(&mut self) {
        self.effective_capacity = self.config.gpu_capacity;
    }

    /// The capacity currently enforced (configured bytes, unless a
    /// pressure fault holds it lower).
    pub fn capacity(&self) -> u64 {
        self.effective_capacity
    }

    /// Touches a content block: the central entry point of the simulator.
    ///
    /// Returns the CPU–GPU communication time this access incurred
    /// (zero on a resident hit). `now` is the accessing task's local
    /// clock; `ctx` is whether a retraining or inference task is touching
    /// the block; `slo_ms` the owning application's SLO.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        key: ContentKey,
        bytes: u64,
        ctx: TaskContext,
        job: u64,
        accessor_model: u32,
        slo_ms: f64,
        intent: AccessIntent,
        now: SimTime,
    ) -> SimDuration {
        if cfg!(feature = "strict-invariants") {
            if let Some(&(at, ..)) = self.last_touch.get(&key) {
                assert!(
                    now >= at,
                    "strict-invariants: content {key:?} accessed at {now:?}, \
                     before its last touch at {at:?} — simulated time went backwards"
                );
            }
        }
        // Reuse instrumentation spans evictions: any re-access of a
        // previously touched content is a reuse, resident or not.
        if self.config.record_reuse {
            if let Some(&(at, prev_ctx, prev_job, _prev_model)) =
                self.last_touch.get(&key)
            {
                self.reuse_events.push(ReuseEvent {
                    category: ReuseCategory::of(key.ctype, ctx),
                    elapsed: now.since(at),
                    cross: cross_touch(&key, prev_ctx, prev_job, ctx, job, accessor_model),
                });
            }
        }
        self.last_touch.insert(key, (now, ctx, job, accessor_model));

        if let Some(entry) = self.resident.get_mut(&key) {
            entry.last_access = now;
            entry.last_ctx = ctx;
            entry.last_job = job;
            entry.last_model = accessor_model;
            entry.dead = false;
            self.stats.hits += 1;
            return SimDuration::ZERO;
        }

        // Miss: free room, then fetch or produce.
        let mut comm = self.make_room(bytes, now);
        let fetch_location = self.spilled.remove(&key);
        if let Some(loc) = fetch_location {
            if loc == CpuLocation::Pinned {
                if cfg!(feature = "strict-invariants") {
                    assert!(
                        self.pin_used >= bytes,
                        "strict-invariants: releasing {bytes} B of PIN with only {} B reserved",
                        self.pin_used
                    );
                }
                self.pin_used = self.pin_used.saturating_sub(bytes);
            }
            if intent == AccessIntent::Fetch {
                let bandwidth = match loc {
                    CpuLocation::Pinned => self.config.pin_bandwidth,
                    CpuLocation::Pageable => self.config.pageable_bandwidth,
                };
                let t = self.transfer_cost(bytes, bandwidth, now);
                comm += t;
                self.stats.comm_time += t;
                self.stats.bytes_moved += bytes;
                self.stats.fetches += 1;
            } else {
                self.stats.produces += 1;
            }
        } else if intent == AccessIntent::Fetch && key.ctype == ContentType::Param {
            // First-ever touch of parameters: they start in CPU memory
            // (models are loaded from host), so the initial fetch pays
            // pageable cost.
            let t =
                self.transfer_cost(bytes, self.config.pageable_bandwidth, now);
            comm += t;
            self.stats.comm_time += t;
            self.stats.bytes_moved += bytes;
            self.stats.fetches += 1;
        } else {
            self.stats.produces += 1;
        }
        self.resident.insert(
            key,
            Resident {
                bytes,
                last_access: now,
                last_ctx: ctx,
                last_job: job,
                last_model: accessor_model,
                slo_ms,
                dead: false,
            },
        );
        self.used += bytes;
        comm
    }

    /// Marks all intermediates of `(app, job)` dead. With AdaInf's
    /// maximise-usage strategy (§3.4.1) this is called on job completion:
    /// "evict all intermediate outputs of the job but retain the updated
    /// parameters". Dead blocks are dropped without writeback when space
    /// is needed; `eager` drops them immediately.
    pub fn retire_job(&mut self, app: u32, job: u64, eager: bool) {
        let keys: Vec<ContentKey> = self
            .resident
            .keys()
            .filter(|k| {
                k.app == app && k.job == job && k.ctype == ContentType::Intermediate
            })
            .copied()
            .collect();
        for key in keys {
            if eager {
                if let Some(e) = self.resident.remove(&key) {
                    if cfg!(feature = "strict-invariants") {
                        assert!(self.used >= e.bytes, "strict-invariants: resident accounting underflow");
                    }
                    self.used -= e.bytes;
                    self.stats.drops += 1;
                }
            } else if let Some(e) = self.resident.get_mut(&key) {
                e.dead = true;
            }
        }
        // Also forget spilled intermediates of the job.
        self.spilled.retain(|k, loc| {
            let dead =
                k.app == app && k.job == job && k.ctype == ContentType::Intermediate;
            if dead && *loc == CpuLocation::Pinned {
                // (bytes unknown once spilled; PIN accounting keeps the
                // reservation until next fetch — conservatively release
                // nothing here.)
            }
            !dead
        });
    }

    /// Like [`Self::retire_job`], but for the execution engine's encoded
    /// intermediate slots (`key.job = (job << 8) | slot`): retires every
    /// intermediate of `(app, job_hi)` whatever its slot.
    pub fn retire_job_group(&mut self, app: u32, job_hi: u64, eager: bool) {
        let keys: Vec<ContentKey> = self
            .resident
            .keys()
            .filter(|k| {
                k.app == app
                    && k.job >> 8 == job_hi
                    && k.ctype == ContentType::Intermediate
            })
            .copied()
            .collect();
        for key in keys {
            if eager {
                if let Some(e) = self.resident.remove(&key) {
                    if cfg!(feature = "strict-invariants") {
                        assert!(self.used >= e.bytes, "strict-invariants: resident accounting underflow");
                    }
                    self.used -= e.bytes;
                    self.stats.drops += 1;
                }
            } else if let Some(e) = self.resident.get_mut(&key) {
                e.dead = true;
            }
        }
        self.spilled.retain(|k, _| {
            !(k.app == app && k.job >> 8 == job_hi && k.ctype == ContentType::Intermediate)
        });
    }

    /// Mean reuse latency per category (ms) from recorded events — the
    /// offline profiling that builds the priority policy's `R_c` table
    /// (§3.4.2). Categories without events keep the given defaults.
    pub fn profile_reuse_table(events: &[ReuseEvent], defaults: [f64; 4]) -> [f64; 4] {
        let mut sums = [0.0f64; 4];
        let mut counts = [0u64; 4];
        for ev in events {
            let idx = match ev.category {
                ReuseCategory::IntermediateInference => 0,
                ReuseCategory::ParamRetraining => 1,
                ReuseCategory::IntermediateRetraining => 2,
                ReuseCategory::ParamInference => 3,
            };
            sums[idx] += ev.elapsed.as_millis_f64();
            counts[idx] += 1;
        }
        let mut out = defaults;
        for i in 0..4 {
            if counts[i] > 0 {
                out[i] = sums[i] / counts[i] as f64;
            }
        }
        out
    }
}

/// Detects the cross-task / cross-job reuse patterns of Figs 12b and 13.
/// Cross-job reuse takes precedence: the retraining→inference hand-off of
/// Fig 12b is the *within-job* RI-DAG edge.
fn cross_touch(
    key: &ContentKey,
    prev_ctx: TaskContext,
    prev_job: u64,
    ctx: TaskContext,
    job: u64,
    accessor_model: u32,
) -> Option<CrossReuse> {
    match key.ctype {
        ContentType::Param => {
            if prev_job != job {
                Some(CrossReuse::ParamAcrossJobs)
            } else if prev_ctx == TaskContext::Retraining
                && ctx == TaskContext::Inference
            {
                Some(CrossReuse::ParamRetrainToInference)
            } else {
                None
            }
        }
        ContentType::Intermediate => {
            // An intermediate produced by one model being *read* by a
            // different model of the DAG = task hand-off (Fig 12b).
            if accessor_model != key.model {
                Some(CrossReuse::IntermediateAcrossModels)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(policy: EvictionPolicyKind) -> MemoryConfig {
        MemoryConfig {
            gpu_capacity: 1000,
            pin_capacity: 500,
            pageable_bandwidth: 1.0e6, // 1 byte/µs
            pin_bandwidth: 2.0e6,
            policy,
            record_reuse: true,
            ..MemoryConfig::default()
        }
    }

    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "simulated time went backwards")]
    fn strict_catches_backwards_access() {
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Lru));
        let key = ContentKey::param(0, 0, 0);
        mem.access(key, 100, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(10));
        mem.access(key, 100, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(5));
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn hit_costs_nothing_and_records_reuse() {
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Lru));
        let key = ContentKey::param(1, 1, 0);
        let c1 = mem.access(
            key,
            100,
            TaskContext::Inference,
            1,
            0, 400.0,
            AccessIntent::Fetch,
            t(0),
        );
        assert!(c1 > SimDuration::ZERO, "first param touch fetches");
        let c2 = mem.access(
            key,
            100,
            TaskContext::Inference,
            1,
            0, 400.0,
            AccessIntent::Fetch,
            t(500),
        );
        assert_eq!(c2, SimDuration::ZERO);
        assert_eq!(mem.stats().hits, 1);
        let ev = mem.reuse_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].elapsed, SimDuration::from_micros(500));
        assert_eq!(ev[0].category, ReuseCategory::ParamInference);
    }

    #[test]
    fn produce_is_free_fetch_after_eviction_is_not() {
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Lru));
        let a = ContentKey::intermediate(1, 1, 0, 1);
        let c = mem.access(
            a,
            600,
            TaskContext::Inference,
            1,
            0, 400.0,
            AccessIntent::Produce,
            t(0),
        );
        assert_eq!(c, SimDuration::ZERO, "producing an activation is free");
        // Fill memory so `a` gets evicted.
        let b = ContentKey::intermediate(1, 1, 1, 1);
        let evict_cost = mem.access(
            b,
            600,
            TaskContext::Inference,
            1,
            0, 400.0,
            AccessIntent::Produce,
            t(10),
        );
        assert!(evict_cost > SimDuration::ZERO, "eviction writes back");
        assert_eq!(mem.stats().evictions, 1);
        // Re-reading `a` now fetches it from CPU.
        let refetch = mem.access(
            a,
            600,
            TaskContext::Inference,
            1,
            0, 400.0,
            AccessIntent::Fetch,
            t(20),
        );
        assert!(refetch > SimDuration::ZERO, "refetch pays transfer");
        assert_eq!(mem.stats().fetches, 1);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Lru));
        let old = ContentKey::intermediate(1, 1, 0, 1);
        let newer = ContentKey::intermediate(1, 1, 1, 1);
        mem.access(old, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Produce, t(0));
        mem.access(newer, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Produce, t(10));
        // Needs 400 → evicts `old` only.
        let third = ContentKey::intermediate(1, 1, 2, 1);
        mem.access(third, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Produce, t(20));
        // `newer` still resident → hit; `old` gone → fetch.
        assert_eq!(
            mem.access(newer, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(30)),
            SimDuration::ZERO
        );
        assert!(
            mem.access(old, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(40))
                > SimDuration::ZERO
        );
    }

    #[test]
    fn priority_policy_evicts_inference_params_before_intermediates() {
        // Inference params are reused ~67 ms later (next job) → highest
        // S_c → evicted first, even if most recently used.
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Priority));
        let inter = ContentKey::intermediate(1, 1, 0, 1);
        let param = ContentKey::param(1, 1, 0);
        mem.access(inter, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Produce, t(0));
        mem.access(param, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(10));
        let third = ContentKey::intermediate(1, 2, 0, 1);
        mem.access(third, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Produce, t(20));
        // Param (S_c high) should be the victim; intermediate stays.
        assert_eq!(
            mem.access(inter, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(30)),
            SimDuration::ZERO,
            "intermediate should have been kept"
        );
        assert!(
            mem.access(param, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(40))
                > SimDuration::ZERO,
            "param should have been evicted"
        );
    }

    #[test]
    fn dead_intermediates_drop_without_writeback() {
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Priority));
        let inter = ContentKey::intermediate(1, 1, 0, 7);
        mem.access(inter, 900, TaskContext::Inference, 7, 0, 400.0, AccessIntent::Produce, t(0));
        mem.retire_job(1, 7, false);
        let before = mem.stats().comm_time;
        let other = ContentKey::intermediate(2, 1, 0, 8);
        let cost = mem.access(other, 900, TaskContext::Inference, 8, 0, 400.0, AccessIntent::Produce, t(10));
        assert_eq!(cost, SimDuration::ZERO, "dropping garbage is free");
        assert_eq!(mem.stats().comm_time, before);
        assert_eq!(mem.stats().drops, 1);
    }

    #[test]
    fn eager_retire_frees_immediately() {
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Priority));
        let inter = ContentKey::intermediate(1, 1, 0, 7);
        let param = ContentKey::param(1, 1, 0);
        mem.access(inter, 300, TaskContext::Inference, 7, 0, 400.0, AccessIntent::Produce, t(0));
        mem.access(param, 300, TaskContext::Inference, 7, 0, 400.0, AccessIntent::Fetch, t(1));
        let used = mem.used();
        mem.retire_job(1, 7, true);
        assert_eq!(mem.used(), used - 300, "intermediate freed, param kept");
    }

    #[test]
    fn cross_task_reuse_tags() {
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Priority));
        let param = ContentKey::param(1, 1, 0);
        // Retraining touches, then inference reuses → ParamRetrainToInference.
        mem.access(param, 100, TaskContext::Retraining, 1, 0, 400.0, AccessIntent::Fetch, t(0));
        mem.access(param, 100, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(50));
        // Next job reuses → ParamAcrossJobs.
        mem.access(param, 100, TaskContext::Inference, 2, 0, 400.0, AccessIntent::Fetch, t(60_000));
        let tags: Vec<_> = mem.reuse_events().iter().map(|e| e.cross).collect();
        assert_eq!(
            tags,
            vec![
                Some(CrossReuse::ParamRetrainToInference),
                Some(CrossReuse::ParamAcrossJobs)
            ]
        );
    }

    #[test]
    fn bus_contention_inflates_thrash() {
        // The same eviction thrash costs strictly more with bus
        // contention enabled.
        let run = |contended: bool| -> SimDuration {
            let mut cfg = small_config(EvictionPolicyKind::Lru);
            cfg.gpu_capacity = 500;
            cfg.bus_contention = contended;
            let mut mem = GpuMemory::new(cfg);
            let a = ContentKey::intermediate(1, 1, 0, 1);
            let b = ContentKey::intermediate(1, 2, 0, 1);
            let mut clock = 0u64;
            for i in 0..20 {
                let key = if i % 2 == 0 { a } else { b };
                let intent = if i < 2 {
                    AccessIntent::Produce
                } else {
                    AccessIntent::Fetch
                };
                clock += 50;
                mem.access(key, 400, TaskContext::Inference, 1, 0, 400.0, intent, t(clock));
            }
            mem.stats().comm_time
        };
        let free_flow = run(false);
        let contended = run(true);
        assert!(
            contended > free_flow,
            "contended {contended:?} vs free {free_flow:?}"
        );
    }

    #[test]
    fn pressure_forces_eviction_storm_and_release_restores() {
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Lru));
        let a = ContentKey::intermediate(1, 1, 0, 1);
        let b = ContentKey::intermediate(1, 2, 0, 1);
        mem.access(a, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Produce, t(0));
        mem.access(b, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Produce, t(10));
        assert_eq!(mem.used(), 800);
        // Collapse to 30 % of 1000 B → both contents must go.
        let comm = mem.apply_pressure(0.3, t(20));
        assert!(comm > SimDuration::ZERO, "storm writes back");
        assert_eq!(mem.capacity(), 300);
        assert!(mem.used() <= 300, "used {} over pressure cap", mem.used());
        assert_eq!(mem.stats().pressure_evictions, 2);
        assert_eq!(mem.stats().evictions, 2);
        // Refetch under pressure thrashes; release restores capacity and
        // both fit again with no further evictions.
        mem.release_pressure();
        assert_eq!(mem.capacity(), 1000);
        let evictions_before = mem.stats().evictions;
        mem.access(a, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(30));
        mem.access(b, 400, TaskContext::Inference, 1, 0, 400.0, AccessIntent::Fetch, t(40));
        assert_eq!(mem.stats().evictions, evictions_before);
        assert_eq!(mem.used(), 800);
    }

    #[test]
    fn pressure_storm_counts_dead_drops_separately() {
        let mut mem = GpuMemory::new(small_config(EvictionPolicyKind::Priority));
        let inter = ContentKey::intermediate(1, 1, 0, 7);
        mem.access(inter, 600, TaskContext::Inference, 7, 0, 400.0, AccessIntent::Produce, t(0));
        mem.retire_job(1, 7, false);
        let comm = mem.apply_pressure(0.1, t(10));
        assert_eq!(comm, SimDuration::ZERO, "dead blocks drop for free");
        assert_eq!(mem.stats().pressure_evictions, 1);
        assert_eq!(mem.stats().drops, 1);
        assert_eq!(mem.stats().evictions, 0);
    }

    #[test]
    fn pin_threshold_derives_from_the_victims_own_slo() {
        // Retraining intermediates (R_c below the category midpoint) pin
        // regardless of the owning app's SLO; inference params (R_c
        // above it) never do. The hardcoded-500 ms version got both
        // wrong away from 500 ms: a 50 ms-SLO app's params scored below
        // the fixed threshold (wrongly pinned), a 1200 ms-SLO app's
        // intermediates scored above it (wrongly pageable).
        for slo_ms in [50.0, 400.0, 1200.0] {
            let mut cfg = small_config(EvictionPolicyKind::Priority);
            cfg.gpu_capacity = 500;
            cfg.pin_capacity = 2000; // PIN space never binds in this test
            let pinned = SimDuration::from_millis_f64(400.0 / cfg.pin_bandwidth * 1e3);
            let pageable =
                SimDuration::from_millis_f64(400.0 / cfg.pageable_bandwidth * 1e3);
            // Park a retraining intermediate, force it out with a second
            // intermediate, refetch. The measured refetch = evicting the
            // spoiler (also a retraining intermediate → PIN) + fetching
            // the victim back from wherever it was staged.
            let mut mem = GpuMemory::new(cfg.clone());
            let inter = ContentKey::intermediate(1, 1, 0, 1);
            let spoiler = ContentKey::intermediate(1, 2, 0, 1);
            mem.access(inter, 400, TaskContext::Retraining, 1, 0, slo_ms, AccessIntent::Produce, t(0));
            mem.access(spoiler, 400, TaskContext::Retraining, 1, 0, slo_ms, AccessIntent::Produce, t(10));
            let refetch = mem.access(inter, 400, TaskContext::Retraining, 1, 0, slo_ms, AccessIntent::Fetch, t(20));
            assert_eq!(
                refetch,
                pinned + pinned,
                "slo {slo_ms}: intermediate refetch should ride PIN"
            );
            // Same shape with inference params: the spoiler (inference
            // intermediate) still pins, but the params must come back at
            // the pageable rate.
            let mut mem = GpuMemory::new(cfg.clone());
            let param = ContentKey::param(1, 1, 0);
            mem.access(param, 400, TaskContext::Inference, 1, 0, slo_ms, AccessIntent::Fetch, t(0));
            mem.access(spoiler, 400, TaskContext::Inference, 1, 0, slo_ms, AccessIntent::Produce, t(10));
            let refetch = mem.access(param, 400, TaskContext::Inference, 1, 0, slo_ms, AccessIntent::Fetch, t(20));
            assert_eq!(
                refetch,
                pinned + pageable,
                "slo {slo_ms}: param refetch should stay pageable"
            );
        }
    }

    #[test]
    fn pin_staging_speeds_up_refetch() {
        // The same thrash pattern run under both policies: the priority
        // policy stages soon-reused contents in PIN, so its total
        // communication time is strictly lower than LRU's all-pageable
        // staging.
        let run = |policy: EvictionPolicyKind| -> SimDuration {
            let mut cfg = small_config(policy);
            cfg.gpu_capacity = 500;
            let mut mem = GpuMemory::new(cfg);
            let a = ContentKey::intermediate(1, 1, 0, 1);
            let b = ContentKey::intermediate(1, 2, 0, 1);
            let mut clock = 0u64;
            // Alternate touching a and b so each access evicts the other.
            for i in 0..10 {
                let key = if i % 2 == 0 { a } else { b };
                let intent = if i < 2 {
                    AccessIntent::Produce
                } else {
                    AccessIntent::Fetch
                };
                clock += 100;
                mem.access(key, 400, TaskContext::Retraining, 1, 0, 400.0, intent, t(clock));
            }
            mem.stats().comm_time
        };
        let lru = run(EvictionPolicyKind::Lru);
        let pin = run(EvictionPolicyKind::Priority);
        assert!(
            pin < lru,
            "PIN staging {pin:?} should beat pageable-only {lru:?}"
        );
    }
}
