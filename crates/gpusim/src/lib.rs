//! # adainf-gpusim
//!
//! A discrete-event simulator of the paper's edge-server GPU substrate:
//! NVIDIA V100s shared between applications through MPS-style fractional
//! compute allocation, with a limited GPU memory that forces CPU–GPU
//! content movement — the environment AdaInf schedules against.
//!
//! The simulator reproduces the *laws* the paper measures rather than
//! cycle-accurate hardware behaviour:
//!
//! * [`latency`] — per-batch compute latency as a function of request
//!   batch size, allocated GPU fraction and model structure, with a
//!   saturation knee that yields an optimal batch size (Obs. 5) that
//!   shifts with allocated space and structure (Obs. 6, Figs 8–10).
//! * [`memory`] — a GPU memory manager tracking parameter blocks and
//!   intermediate outputs per layer, with pluggable eviction
//!   ([`memory::EvictionPolicyKind::Lru`] for the baselines,
//!   [`memory::EvictionPolicyKind::Priority`] implementing AdaInf's
//!   `S_c = (1−α)·R_c + α·L_s` scoring with PIN staging, §3.4.2) and
//!   reuse-time instrumentation (Figs 12–13).
//! * [`exec`] — a layer-granularity execution engine that interleaves
//!   concurrent tasks; per-request execution refetches shared parameters
//!   under memory pressure while AdaInf's layer-grouped execution (§3.4.1)
//!   fetches each layer's parameters once per batch (Obs. 7, Fig 11).
//! * [`device`] — the edge server: GPU count, aggregate throughput and
//!   memory, busy-time accounting for the utilization plot (Fig 21).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod device;
pub mod exec;
pub mod latency;
pub mod memory;
pub mod transfer;

pub use content::{ContentKey, ContentType, TaskContext};
pub use device::{EdgeServer, GpuSpec};
pub use exec::{ExecMode, TaskExec, TaskResult};
pub use latency::{LatencyModel, StructureCost};
pub use memory::{EvictionPolicyKind, GpuMemory, MemoryConfig, ReuseEvent};
pub use transfer::TransferBus;
