//! PCIe transfer-bus contention.
//!
//! The memory manager's default costing charges each CPU–GPU transfer at
//! the link's nominal bandwidth, independent of what else is moving. On a
//! real server, concurrent `cudaMemcpyAsync` streams share the PCIe
//! links: under heavy eviction traffic every transfer slows down. The
//! [`TransferBus`] tracks recent utilization in fixed windows and inflates
//! the effective cost of a transfer by the load factor of its window —
//! an optional fidelity upgrade for the detailed engine (off by default
//! so the headline calibration is unchanged).

use adainf_simcore::{SimDuration, SimTime};

/// A shared transfer bus with windowed utilization accounting.
#[derive(Clone, Debug)]
pub struct TransferBus {
    /// Nominal bandwidth, bytes/s.
    bandwidth: f64,
    /// Accounting window width.
    window: SimDuration,
    /// Busy time accumulated per window index.
    busy_us: Vec<f64>,
}

impl TransferBus {
    /// Creates a bus with the given nominal bandwidth and a 1 ms
    /// accounting window.
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        TransferBus {
            bandwidth,
            window: SimDuration::from_millis(1),
            busy_us: Vec::new(),
        }
    }

    /// Nominal (uncontended) duration of moving `bytes`.
    pub fn nominal(&self, bytes: u64) -> SimDuration {
        SimDuration::from_millis_f64(bytes as f64 / self.bandwidth * 1e3)
    }

    /// Current load factor of the window containing `at`: busy time over
    /// window width, 0 when idle.
    pub fn load_at(&self, at: SimTime) -> f64 {
        let idx = (at.as_micros() / self.window.as_micros()) as usize;
        let busy = self.busy_us.get(idx).copied().unwrap_or(0.0);
        busy / self.window.as_micros() as f64
    }

    /// Charges a transfer of `bytes` starting at `at`: the effective
    /// duration is the nominal one inflated by `1 + load`, and the bus's
    /// busy time is advanced by the nominal duration (the physical bytes
    /// on the wire).
    pub fn charge(&mut self, bytes: u64, at: SimTime) -> SimDuration {
        let nominal = self.nominal(bytes);
        let load = self.load_at(at);
        // Record busy time across the windows the nominal transfer spans.
        let mut t = at.as_micros();
        let end = t + nominal.as_micros();
        while t < end {
            let idx = (t / self.window.as_micros()) as usize;
            let window_end = (idx as u64 + 1) * self.window.as_micros();
            let span = window_end.min(end) - t;
            if idx >= self.busy_us.len() {
                self.busy_us.resize(idx + 1, 0.0);
            }
            self.busy_us[idx] += span as f64;
            t = window_end.min(end);
        }
        nominal.mul_f64(1.0 + load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_charges_nominal() {
        let mut bus = TransferBus::new(1.0e9); // 1 GB/s → 1 µs per KB
        let t = bus.charge(1_000_000, SimTime::ZERO);
        assert_eq!(t, SimDuration::from_millis(1));
    }

    #[test]
    fn contention_inflates_cost() {
        let mut bus = TransferBus::new(1.0e9);
        // Saturate the first window: 1 ms of traffic in a 1 ms window.
        bus.charge(1_000_000, SimTime::ZERO);
        let loaded = bus.charge(1_000_000, SimTime::from_micros(100));
        assert!(
            loaded > SimDuration::from_millis(1),
            "expected inflation, got {loaded:?}"
        );
        // Far in the future the bus is idle again.
        let later = bus.charge(1_000_000, SimTime::from_secs(1));
        assert_eq!(later, SimDuration::from_millis(1));
    }

    #[test]
    fn load_factor_monotone_in_traffic() {
        let mut bus = TransferBus::new(1.0e9);
        let l0 = bus.load_at(SimTime::ZERO);
        bus.charge(500_000, SimTime::ZERO);
        let l1 = bus.load_at(SimTime::from_micros(10));
        bus.charge(500_000, SimTime::from_micros(20));
        let l2 = bus.load_at(SimTime::from_micros(30));
        assert!(l0 < l1 && l1 < l2, "{l0} {l1} {l2}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        TransferBus::new(0.0);
    }
}
