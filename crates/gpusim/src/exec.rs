//! Layer-granularity execution of concurrent retraining/inference tasks.
//!
//! This is the *detailed* mode of the simulator, used by the offline
//! profiler and the memory-behaviour experiments (Figs 11–13). It executes
//! every layer touch of every concurrent task against the shared
//! [`GpuMemory`], in a deterministic earliest-local-clock interleaving that
//! stands in for MPS time-slicing of co-located kernels \[25\].
//!
//! The execution mode realises §3.4.1:
//!
//! * [`ExecMode::PerRequest`] — the baseline: each request in a batch runs
//!   the model's layers independently, so a layer's parameters are touched
//!   `batch` times with other tasks' (and requests') steps interleaved in
//!   between; under memory pressure the parameters bounce between CPU and
//!   GPU memory.
//! * [`ExecMode::LayerGrouped`] — AdaInf: "runs the execution of a single
//!   model layer for all the requests in a batch at the same time", so
//!   each layer's parameters are fetched at most once per batch.
//!
//! Compute time is identical in both modes (the strategy saves
//! communication, not arithmetic); it is taken from the
//! [`crate::latency::LatencyModel`] and spread over the
//! steps in proportion to their FLOPs.

use crate::content::{ContentKey, TaskContext};
use crate::latency::{LatencyModel, StructureCost};
use crate::memory::{AccessIntent, GpuMemory};
use adainf_simcore::{SimDuration, SimTime};

/// Cost description of one layer.
#[derive(Clone, Copy, Debug)]
pub struct LayerSpec {
    /// Forward FLOPs per sample.
    pub flops: f64,
    /// Parameter bytes of the layer.
    pub param_bytes: u64,
    /// Activation (output) bytes per sample.
    pub activation_bytes: u64,
}

/// What a task does.
#[derive(Clone, Copy, Debug)]
pub enum TaskKind {
    /// Serve `requests` inference requests (in batches of `TaskExec::batch`).
    Inference {
        /// Number of requests in the job for this model.
        requests: u32,
    },
    /// Retrain on `samples` samples for `epochs` epochs.
    Retraining {
        /// Number of retraining samples.
        samples: u32,
        /// Number of passes over the samples.
        epochs: u32,
    },
}

/// Execution strategy (§3.4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Requests run layers independently (baseline; AdaInf/M1 ablation).
    PerRequest,
    /// One pass per layer covering the whole batch (AdaInf).
    LayerGrouped,
}

/// One schedulable task (a vertex of a job's retraining-inference DAG).
#[derive(Clone, Debug)]
pub struct TaskExec {
    /// Owning application.
    pub app: u32,
    /// Model within the application.
    pub model: u32,
    /// Job identifier (session-unique).
    pub job: u64,
    /// Inference or retraining, with its size.
    pub kind: TaskKind,
    /// The structure to execute (full or early-exit prefix).
    pub layers: Vec<LayerSpec>,
    /// Request/sample batch size.
    pub batch: u32,
    /// Allocated GPU fraction (of one GPU).
    pub frac: f64,
    /// Owning application's latency SLO in ms (for eviction scoring).
    pub slo_ms: f64,
    /// Upstream DAG dependency: this task's layer-0 input is the
    /// `(model, layer)` intermediate output of another task of the job.
    pub input_from: Option<(u32, u16)>,
    /// Local start time of the task.
    pub start: SimTime,
}

impl TaskExec {
    /// Aggregate structure cost of this task's layer stack.
    pub fn structure_cost(&self) -> StructureCost {
        StructureCost {
            flops_per_sample: self.layers.iter().map(|l| l.flops).sum(),
            activation_bytes: self
                .layers
                .iter()
                .map(|l| l.activation_bytes as f64)
                .sum(),
            param_bytes: self.layers.iter().map(|l| l.param_bytes as f64).sum(),
        }
    }

    fn context(&self) -> TaskContext {
        match self.kind {
            TaskKind::Inference { .. } => TaskContext::Inference,
            TaskKind::Retraining { .. } => TaskContext::Retraining,
        }
    }
}

/// Outcome of one task's execution.
#[derive(Clone, Copy, Debug)]
pub struct TaskResult {
    /// Pure compute time.
    pub compute: SimDuration,
    /// CPU–GPU communication time incurred by this task's accesses.
    pub comm: SimDuration,
    /// Completion instant (task start + compute + comm).
    pub finished_at: SimTime,
}

/// A single layer touch of some portion of a batch.
#[derive(Clone, Copy, Debug)]
struct Step {
    layer: u16,
    /// Samples covered by the step (whole batch or 1).
    span: u32,
    /// Encoded intermediate slot (distinguishes per-request activations).
    slot: u64,
    /// Backward-pass step (retraining only): reads instead of produces.
    backward: bool,
    /// Compute duration of the step.
    compute: SimDuration,
}

/// Builds the step list of a task under the given mode and latency model.
fn build_steps(task: &TaskExec, model: &LatencyModel, mode: ExecMode) -> Vec<Step> {
    let cost = task.structure_cost();
    let total_flops: f64 = cost.flops_per_sample.max(1.0);
    let mut steps = Vec::new();
    let (units, epochs, train) = match task.kind {
        TaskKind::Inference { requests } => (requests, 1u32, false),
        TaskKind::Retraining { samples, epochs } => (samples, epochs.max(1), true),
    };
    if units == 0 || task.layers.is_empty() {
        return steps;
    }
    let batch = task.batch.max(1);
    let batches = units.div_ceil(batch);
    let per_batch = if train {
        model.per_batch_training(&cost, batch, task.frac)
    } else {
        model.per_batch_inference(&cost, batch, task.frac)
    };
    // Forward gets the inference share; backward (retraining only) the rest.
    let fwd_total = if train {
        per_batch.mul_f64(1.0 / model.train_expansion)
    } else {
        per_batch
    };
    let bwd_total = per_batch.saturating_sub(fwd_total);

    for _epoch in 0..epochs {
        for bi in 0..batches {
            let this_batch = if bi + 1 == batches && units % batch != 0 {
                units % batch
            } else {
                batch
            };
            let groups: Vec<(u32, u64)> = match mode {
                ExecMode::LayerGrouped => vec![(this_batch, (task.job << 8) | 0xFF)],
                ExecMode::PerRequest => (0..this_batch)
                    .map(|r| (1u32, (task.job << 8) | r as u64))
                    .collect(),
            };
            // Forward sweep.
            for (li, layer) in task.layers.iter().enumerate() {
                let share = layer.flops / total_flops;
                for &(span, slot) in &groups {
                    let frac_of_batch = span as f64 / this_batch as f64;
                    steps.push(Step {
                        layer: li as u16,
                        span,
                        slot,
                        backward: false,
                        compute: fwd_total.mul_f64(share * frac_of_batch),
                    });
                }
            }
            // Backward sweep (retraining).
            if train {
                for (li, layer) in task.layers.iter().enumerate().rev() {
                    let share = layer.flops / total_flops;
                    for &(span, slot) in &groups {
                        let frac_of_batch = span as f64 / this_batch as f64;
                        steps.push(Step {
                            layer: li as u16,
                            span,
                            slot,
                            backward: true,
                            compute: bwd_total.mul_f64(share * frac_of_batch),
                        });
                    }
                }
            }
        }
    }
    steps
}

/// Executes a set of concurrent tasks against the shared memory, in
/// earliest-local-clock order, and returns one [`TaskResult`] per task
/// (same order as the input).
pub fn run_concurrent(
    tasks: &[TaskExec],
    model: &LatencyModel,
    mem: &mut GpuMemory,
    mode: ExecMode,
) -> Vec<TaskResult> {
    struct Live {
        steps: Vec<Step>,
        cursor: usize,
        clock: SimTime,
        compute: SimDuration,
        comm: SimDuration,
    }
    let mut live: Vec<Live> = tasks
        .iter()
        .map(|t| Live {
            steps: build_steps(t, model, mode),
            cursor: 0,
            clock: t.start,
            compute: SimDuration::ZERO,
            comm: SimDuration::ZERO,
        })
        .collect();
    // Outstanding tasks per (app, job), to retire a job's intermediates
    // when its last task completes ("evict all intermediate outputs of
    // the job but retain the updated parameters", §3.4.1 — part of the
    // layer-grouped/maximise-usage strategy).
    let mut outstanding: std::collections::BTreeMap<(u32, u64), usize> =
        std::collections::BTreeMap::new();
    for t in tasks {
        *outstanding.entry((t.app, t.job)).or_insert(0) += 1;
    }

    // Earliest-local-clock dispatch emits steps in nondecreasing time
    // order; `strict-invariants` checks that as it goes.
    let mut last_dispatch = SimTime::ZERO;
    loop {
        // Pick the unfinished task with the earliest local clock.
        let next = live
            .iter()
            .enumerate()
            .filter(|(_, l)| l.cursor < l.steps.len())
            .min_by_key(|(i, l)| (l.clock, *i))
            .map(|(i, _)| i);
        let Some(idx) = next else { break };
        let task = &tasks[idx];
        let ctx = task.context();
        let step = live[idx].steps[live[idx].cursor];
        let now = live[idx].clock;
        if cfg!(feature = "strict-invariants") {
            assert!(
                now >= last_dispatch,
                "strict-invariants: dispatch clock went backwards ({now:?} < {last_dispatch:?})"
            );
        }
        last_dispatch = now;
        let mut comm = SimDuration::ZERO;

        let layer = &task.layers[step.layer as usize];
        // Touch the layer's parameters.
        comm += mem.access(
            ContentKey::param(task.app, task.model, step.layer),
            layer.param_bytes,
            ctx,
            task.job,
            task.model,
            task.slo_ms,
            AccessIntent::Fetch,
            now,
        );
        // Layer 0 forward reads the upstream model's output (DAG edge).
        if step.layer == 0 && !step.backward {
            if let Some((up_model, up_layer)) = task.input_from {
                comm += mem.access(
                    ContentKey::intermediate(task.app, up_model, up_layer, step.slot),
                    layer.activation_bytes * step.span as u64,
                    ctx,
                    task.job,
                    task.model,
                    task.slo_ms,
                    AccessIntent::Fetch,
                    now,
                );
            }
        } else if step.layer > 0 && !step.backward {
            // Read the previous layer's activation.
            let prev = &task.layers[step.layer as usize - 1];
            comm += mem.access(
                ContentKey::intermediate(task.app, task.model, step.layer - 1, step.slot),
                prev.activation_bytes * step.span as u64,
                ctx,
                task.job,
                task.model,
                task.slo_ms,
                AccessIntent::Fetch,
                now,
            );
        }
        // The step's own activation: produced forward, re-read backward.
        let intent = if step.backward {
            AccessIntent::Fetch
        } else {
            AccessIntent::Produce
        };
        comm += mem.access(
            ContentKey::intermediate(task.app, task.model, step.layer, step.slot),
            layer.activation_bytes * step.span as u64,
            ctx,
            task.job,
            task.model,
            task.slo_ms,
            intent,
            now,
        );

        let l = &mut live[idx];
        l.comm += comm;
        l.compute += step.compute;
        l.clock = l.clock + step.compute + comm;
        l.cursor += 1;
        if l.cursor == l.steps.len() {
            let slot = outstanding
                .get_mut(&(task.app, task.job))
                // simlint: allow(no-unwrap-in-lib) — every task was counted into `outstanding` above
                .expect("task was registered");
            *slot -= 1;
            if *slot == 0 && mode == ExecMode::LayerGrouped {
                mem.retire_job_group(task.app, task.job, true);
            }
        }
    }

    live.into_iter()
        .map(|l| TaskResult {
            compute: l.compute,
            comm: l.comm,
            finished_at: l.clock,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{EvictionPolicyKind, MemoryConfig};

    fn layers(n: usize, flops: f64, param: u64, act: u64) -> Vec<LayerSpec> {
        (0..n)
            .map(|_| LayerSpec {
                flops,
                param_bytes: param,
                activation_bytes: act,
            })
            .collect()
    }

    fn inference_task(app: u32, model: u32, job: u64, requests: u32, batch: u32) -> TaskExec {
        TaskExec {
            app,
            model,
            job,
            kind: TaskKind::Inference { requests },
            layers: layers(6, 1.0e7, 500_000, 200_000),
            batch,
            frac: 0.5,
            slo_ms: 400.0,
            input_from: None,
            start: SimTime::ZERO,
        }
    }

    /// Parameter-dominated task: big per-layer weights, tiny activations —
    /// the regime where per-request execution refetches weights.
    fn param_heavy_task(app: u32, job: u64) -> TaskExec {
        TaskExec {
            app,
            model: 1,
            job,
            kind: TaskKind::Inference { requests: 32 },
            layers: layers(6, 1.0e7, 2_000_000, 10_000),
            batch: 16,
            frac: 0.5,
            slo_ms: 400.0,
            input_from: None,
            start: SimTime::ZERO,
        }
    }

    fn tight_memory(capacity: u64, policy: EvictionPolicyKind) -> GpuMemory {
        GpuMemory::new(MemoryConfig {
            gpu_capacity: capacity,
            pin_capacity: capacity / 2,
            record_reuse: true,
            policy,
            ..MemoryConfig::default()
        })
    }

    #[test]
    fn compute_matches_latency_model() {
        let model = LatencyModel::default();
        let task = inference_task(1, 1, 1, 16, 16);
        let mut mem = GpuMemory::new(MemoryConfig::default()); // ample memory
        let res = run_concurrent(std::slice::from_ref(&task), &model, &mut mem, ExecMode::LayerGrouped);
        let expect = model.worst_case(&task.structure_cost(), 16, 16, 0.5);
        let got = res[0].compute;
        let diff = got.as_micros().abs_diff(expect.as_micros());
        assert!(
            diff <= expect.as_micros() / 50 + 12,
            "compute {got:?} vs {expect:?}"
        );
    }

    #[test]
    fn layer_grouped_has_less_comm_under_pressure() {
        let model = LatencyModel::default();
        // Two concurrent apps contending for memory that cannot hold both
        // working sets: per-request execution refetches each layer's
        // weights once per request, layer-grouped once per batch.
        let tasks = vec![param_heavy_task(1, 1), param_heavy_task(2, 2)];
        let mut mem_pr = tight_memory(3_000_000, EvictionPolicyKind::Lru);
        let pr = run_concurrent(&tasks, &model, &mut mem_pr, ExecMode::PerRequest);
        let mut mem_lg = tight_memory(3_000_000, EvictionPolicyKind::Lru);
        let lg = run_concurrent(&tasks, &model, &mut mem_lg, ExecMode::LayerGrouped);
        let comm_pr: u64 = pr.iter().map(|r| r.comm.as_micros()).sum();
        let comm_lg: u64 = lg.iter().map(|r| r.comm.as_micros()).sum();
        assert!(
            comm_lg * 2 < comm_pr,
            "layer-grouped {comm_lg}us vs per-request {comm_pr}us"
        );
    }

    #[test]
    fn no_pressure_means_little_comm() {
        let model = LatencyModel::default();
        let task = inference_task(1, 1, 1, 16, 16);
        let mut mem = GpuMemory::new(MemoryConfig::default());
        let res = run_concurrent(&[task], &model, &mut mem, ExecMode::PerRequest);
        // Only the initial parameter load should cost anything.
        let param_bytes = 6 * 500_000;
        let expected =
            SimDuration::from_millis_f64(param_bytes as f64 / 6.0e9 * 1e3);
        assert!(
            res[0].comm <= expected + SimDuration::from_micros(50),
            "comm {:?} expected ≈{expected:?}",
            res[0].comm
        );
    }

    #[test]
    fn retraining_produces_backward_reuse() {
        let model = LatencyModel::default();
        let task = TaskExec {
            kind: TaskKind::Retraining {
                samples: 16,
                epochs: 1,
            },
            ..inference_task(1, 1, 1, 0, 16)
        };
        let mut mem = GpuMemory::new(MemoryConfig {
            record_reuse: true,
            ..MemoryConfig::default()
        });
        run_concurrent(&[task], &model, &mut mem, ExecMode::LayerGrouped);
        use crate::content::ReuseCategory;
        let events = mem.reuse_events();
        assert!(
            events
                .iter()
                .any(|e| e.category == ReuseCategory::ParamRetraining),
            "backward pass must reuse params"
        );
        assert!(
            events
                .iter()
                .any(|e| e.category == ReuseCategory::IntermediateRetraining),
            "backward pass must reuse activations"
        );
    }

    #[test]
    fn dag_dependency_reads_upstream_output() {
        let model = LatencyModel::default();
        let up = inference_task(1, 0, 1, 16, 16);
        let mut down = inference_task(1, 1, 1, 16, 16);
        down.input_from = Some((0, 5)); // model 0's last layer output
        // Downstream starts after upstream so its layer-0 read hits the
        // produced content.
        down.start = SimTime::from_millis(50);
        let mut mem = GpuMemory::new(MemoryConfig {
            record_reuse: true,
            ..MemoryConfig::default()
        });
        run_concurrent(&[up, down], &model, &mut mem, ExecMode::LayerGrouped);
        use crate::memory::CrossReuse;
        assert!(
            mem.reuse_events()
                .iter()
                .any(|e| e.cross == Some(CrossReuse::IntermediateAcrossModels)),
            "DAG hand-off must be recorded as cross-model reuse"
        );
    }

    #[test]
    fn multi_epoch_retraining_multiplies_compute() {
        let model = LatencyModel::default();
        let one = TaskExec {
            kind: TaskKind::Retraining { samples: 32, epochs: 1 },
            ..inference_task(1, 1, 1, 0, 16)
        };
        let three = TaskExec {
            kind: TaskKind::Retraining { samples: 32, epochs: 3 },
            ..inference_task(1, 1, 1, 0, 16)
        };
        let mut mem = GpuMemory::new(MemoryConfig::default());
        let r1 = run_concurrent(&[one], &model, &mut mem, ExecMode::LayerGrouped);
        let mut mem2 = GpuMemory::new(MemoryConfig::default());
        let r3 = run_concurrent(&[three], &model, &mut mem2, ExecMode::LayerGrouped);
        let ratio = r3[0].compute.as_micros() as f64 / r1[0].compute.as_micros().max(1) as f64;
        assert!((ratio - 3.0).abs() < 0.1, "epoch scaling {ratio}");
    }

    #[test]
    fn partial_final_batch_accounted() {
        // 20 requests at batch 16 → one full batch + one of 4.
        let model = LatencyModel::default();
        let task = inference_task(1, 1, 1, 20, 16);
        let mut mem = GpuMemory::new(MemoryConfig::default());
        let res = run_concurrent(std::slice::from_ref(&task), &model, &mut mem, ExecMode::LayerGrouped);
        let expect = model.worst_case(&task.structure_cost(), 20, 16, 0.5);
        let diff = res[0].compute.as_micros().abs_diff(expect.as_micros());
        assert!(diff <= expect.as_micros() / 20 + 20, "{:?} vs {expect:?}", res[0].compute);
    }

    #[test]
    fn consecutive_jobs_reuse_parameters() {
        // Obs. 9 / Fig 13: the second job of the same app hits the
        // parameters the first job left resident.
        let model = LatencyModel::default();
        let job1 = inference_task(1, 1, 1, 16, 16);
        let mut job2 = inference_task(1, 1, 2, 16, 16);
        job2.start = SimTime::from_millis(70);
        let mut mem = GpuMemory::new(MemoryConfig {
            record_reuse: true,
            ..MemoryConfig::default()
        });
        run_concurrent(&[job1, job2], &model, &mut mem, ExecMode::LayerGrouped);
        use crate::memory::CrossReuse;
        let cross_jobs = mem
            .reuse_events()
            .iter()
            .filter(|e| e.cross == Some(CrossReuse::ParamAcrossJobs))
            .count();
        assert!(cross_jobs >= 6, "expected per-layer cross-job reuse, got {cross_jobs}");
        // And the reuse gap reflects the inter-job interval (~70 ms).
        let gap = mem
            .reuse_events()
            .iter()
            .filter(|e| e.cross == Some(CrossReuse::ParamAcrossJobs))
            .map(|e| e.elapsed.as_millis_f64())
            .fold(0.0f64, f64::max);
        assert!(gap > 40.0 && gap < 120.0, "gap {gap}ms");
    }

    #[test]
    fn empty_task_finishes_instantly() {
        let model = LatencyModel::default();
        let task = inference_task(1, 1, 1, 0, 16);
        let mut mem = GpuMemory::new(MemoryConfig::default());
        let res = run_concurrent(&[task], &model, &mut mem, ExecMode::LayerGrouped);
        assert_eq!(res[0].compute, SimDuration::ZERO);
        assert_eq!(res[0].finished_at, SimTime::ZERO);
    }
}
