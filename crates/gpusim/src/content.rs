//! Identification of GPU-memory contents.
//!
//! Following \[17\] (and §2.4), the contents competing for GPU memory are
//! *parameter values* and *intermediate outputs* of model layers. Both are
//! tracked per layer. Parameters are shared across the jobs of an
//! application (Obs. 9: "the parameters from a job will be reused by the
//! next job"); intermediate outputs belong to a single job and are never
//! reused after it completes.

/// Whether a block holds layer parameters or an intermediate output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContentType {
    /// Layer weights/biases. Shared by retraining and inference, and
    /// across consecutive jobs of the same application.
    Param,
    /// A layer's output activation for one job's batch.
    Intermediate,
}

/// The task context in which a content block is touched. Fig 12
/// distinguishes reuse latencies by (content type × task context), giving
/// the four categories of Obs. 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskContext {
    /// Touched by a retraining task.
    Retraining,
    /// Touched by an inference task.
    Inference,
}

/// Unique identity of a content block in GPU/CPU memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey {
    /// Owning application.
    pub app: u32,
    /// Owning model within the application's DAG.
    pub model: u32,
    /// Content type.
    pub ctype: ContentType,
    /// Layer index within the model structure.
    pub layer: u16,
    /// Owning job for intermediates; `0` for parameters, which are shared
    /// across jobs.
    pub job: u64,
}

impl ContentKey {
    /// Key of a parameter block (job-independent).
    pub fn param(app: u32, model: u32, layer: u16) -> Self {
        ContentKey {
            app,
            model,
            ctype: ContentType::Param,
            layer,
            job: 0,
        }
    }

    /// Key of an intermediate output of a specific job.
    pub fn intermediate(app: u32, model: u32, layer: u16, job: u64) -> Self {
        ContentKey {
            app,
            model,
            ctype: ContentType::Intermediate,
            layer,
            job,
        }
    }
}

/// The four reuse categories of Fig 12a.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReuseCategory {
    /// Intermediate output touched during inference (fastest reuse,
    /// 0.01–1.6 ms in the paper).
    IntermediateInference,
    /// Parameters touched during retraining (0.02–6 ms).
    ParamRetraining,
    /// Intermediate output touched during retraining (0.02–7.5 ms).
    IntermediateRetraining,
    /// Parameters touched during inference — only reused by the *next job*
    /// of the application (67–68.6 ms).
    ParamInference,
}

impl ReuseCategory {
    /// Builds the category from a content type and task context.
    pub fn of(ctype: ContentType, ctx: TaskContext) -> Self {
        match (ctype, ctx) {
            (ContentType::Intermediate, TaskContext::Inference) => {
                ReuseCategory::IntermediateInference
            }
            (ContentType::Param, TaskContext::Retraining) => {
                ReuseCategory::ParamRetraining
            }
            (ContentType::Intermediate, TaskContext::Retraining) => {
                ReuseCategory::IntermediateRetraining
            }
            (ContentType::Param, TaskContext::Inference) => {
                ReuseCategory::ParamInference
            }
        }
    }

    /// All categories, in the paper's fast-to-slow reuse order.
    pub fn all() -> [ReuseCategory; 4] {
        [
            ReuseCategory::IntermediateInference,
            ReuseCategory::ParamRetraining,
            ReuseCategory::IntermediateRetraining,
            ReuseCategory::ParamInference,
        ]
    }

    /// Display label used by the figure regenerators.
    pub fn label(self) -> &'static str {
        match self {
            ReuseCategory::IntermediateInference => "intermediate/inference",
            ReuseCategory::ParamRetraining => "param/retraining",
            ReuseCategory::IntermediateRetraining => "intermediate/retraining",
            ReuseCategory::ParamInference => "param/inference",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_keys_are_job_independent() {
        let a = ContentKey::param(1, 2, 3);
        let b = ContentKey::param(1, 2, 3);
        assert_eq!(a, b);
        assert_eq!(a.job, 0);
    }

    #[test]
    fn intermediate_keys_differ_across_jobs() {
        let a = ContentKey::intermediate(1, 2, 3, 10);
        let b = ContentKey::intermediate(1, 2, 3, 11);
        assert_ne!(a, b);
    }

    #[test]
    fn category_mapping_matches_fig12() {
        assert_eq!(
            ReuseCategory::of(ContentType::Intermediate, TaskContext::Inference),
            ReuseCategory::IntermediateInference
        );
        assert_eq!(
            ReuseCategory::of(ContentType::Param, TaskContext::Inference),
            ReuseCategory::ParamInference
        );
        assert_eq!(ReuseCategory::all().len(), 4);
    }
}
