//! A minimal row-major `f32` matrix.
//!
//! Only the operations backpropagation needs are implemented, with plain
//! triple loops — at the scales used here (feature dims ≤ 64, batch ≤ 64)
//! this is far from being a bottleneck, and the code stays auditable.

use adainf_simcore::Prng;
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// He-style random initialisation: `N(0, sqrt(2 / fan_in))`. This is
    /// the standard choice for ReLU networks and keeps small MLPs
    /// trainable from the first step.
    pub fn he_init(rows: usize, cols: usize, rng: &mut Prng) -> Self {
        let std = (2.0 / rows as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| (rng.gauss() * std) as f32)
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A single row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self × other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, a) in arow.iter().enumerate() {
                if *a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Adds a row vector (bias) to every row.
    pub fn add_row_vec(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for (x, b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Element-wise in-place ReLU.
    pub fn relu_inplace(&mut self) {
        for x in &mut self.data {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }

    /// Element-wise in-place multiply by the ReLU mask of `pre` (the
    /// backward pass of ReLU): entries where `pre <= 0` are zeroed.
    pub fn relu_backward_inplace(&mut self, pre: &Matrix) {
        assert_eq!(self.data.len(), pre.data.len(), "shape mismatch");
        for (g, p) in self.data.iter_mut().zip(&pre.data) {
            if *p <= 0.0 {
                *g = 0.0;
            }
        }
    }

    /// Row-wise softmax, numerically stabilised.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut total = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                total += *x;
            }
            for x in row.iter_mut() {
                *x /= total;
            }
        }
        out
    }

    /// `self += k * other`, the SGD update primitive.
    pub fn axpy(&mut self, k: f32, other: &Matrix) {
        assert_eq!(self.data.len(), other.data.len(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Scales every element by `k`.
    pub fn scale(&mut self, k: f32) {
        for x in &mut self.data {
            *x *= k;
        }
    }

    /// Column sums returned as a vector (bias gradient).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Mean of each column (used for mean feature vectors in §3.2).
    pub fn col_means(&self) -> Vec<f32> {
        let mut out = self.col_sums();
        if self.rows > 0 {
            for x in &mut out {
                *x /= self.rows as f32;
            }
        }
        out
    }

    /// Index of the maximum entry of each row (argmax classification).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN logit"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_slice(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit() {
        let a = Matrix::from_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_slice(2, 2, &[1.0, 0.5, -1.0, 2.0]);
        // aᵀ (3x2) × b (2x2) = 3x2
        let c = a.t_matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        // check element (0,0): col0 of a · col0 of b = 1*1 + 4*(-1) = -3
        assert_eq!(c.get(0, 0), -3.0);

        let d = Matrix::from_slice(2, 3, &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        // a (2x3) × dᵀ (3x2) = 2x2; element (0,1) = row0(a)·row1(d) = 6*2
        let e = a.matmul_t(&d);
        assert_eq!(e.get(0, 1), 12.0);
    }

    #[test]
    fn softmax_rows_normalises() {
        let m = Matrix::from_slice(2, 3, &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let total: f32 = s.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
        // Large logits must not overflow.
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn relu_forward_backward() {
        let pre = Matrix::from_slice(1, 4, &[-1.0, 0.0, 2.0, -3.0]);
        let mut act = pre.clone();
        act.relu_inplace();
        assert_eq!(act.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut grad = Matrix::from_slice(1, 4, &[1.0, 1.0, 1.0, 1.0]);
        grad.relu_backward_inplace(&pre);
        assert_eq!(grad.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn col_stats_and_argmax() {
        let m = Matrix::from_slice(2, 2, &[1.0, 5.0, 3.0, 1.0]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
        assert_eq!(m.col_means(), vec![2.0, 3.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn axpy_updates() {
        let mut a = Matrix::zeros(1, 3);
        let g = Matrix::from_slice(1, 3, &[1.0, 2.0, 3.0]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[-0.5, -1.0, -1.5]);
    }

    #[test]
    fn he_init_statistics() {
        let mut rng = Prng::new(11);
        let m = Matrix::he_init(64, 64, &mut rng);
        let mean: f32 = m.data().iter().sum::<f32>() / 4096.0;
        let var: f32 =
            m.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4096.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 2.0 / 64.0).abs() < 0.01, "var {var}");
    }
}
