//! A minimal row-major `f32` matrix.
//!
//! Only the operations backpropagation needs are implemented, with plain
//! triple loops — at the scales used here (feature dims ≤ 64, batch ≤ 64)
//! this is far from being a bottleneck, and the code stays auditable.

use adainf_simcore::Prng;
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// He-style random initialisation: `N(0, sqrt(2 / fan_in))`. This is
    /// the standard choice for ReLU networks and keeps small MLPs
    /// trainable from the first step.
    pub fn he_init(rows: usize, cols: usize, rng: &mut Prng) -> Self {
        let std = (2.0 / rows as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| (rng.gauss() * std) as f32)
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A single row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes this matrix to `rows × cols` and fills it with zeros,
    /// reusing the existing allocation when capacity permits. This is
    /// the reset primitive behind the `*_into` GEMM variants, which lets
    /// scratch buffers be reused across SGD steps without reallocating.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `src` into this matrix, reusing the existing allocation
    /// when capacity permits.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Reshapes this matrix to the row range `r0..r1` of `src` and copies
    /// those rows — one contiguous slab in row-major layout — reusing the
    /// existing allocation when capacity permits. The chunked-slice
    /// primitive behind zero-alloc mini-batch training.
    ///
    /// # Panics
    /// Panics when `r0 > r1` or `r1 > src.rows()`.
    pub fn copy_rows_from(&mut self, src: &Matrix, r0: usize, r1: usize) {
        assert!(r0 <= r1 && r1 <= src.rows, "row range out of bounds");
        self.rows = r1 - r0;
        self.cols = src.cols;
        self.data.clear();
        self.data
            .extend_from_slice(&src.data[r0 * src.cols..r1 * src.cols]);
    }

    /// Reshapes this matrix to `indices.len() × src.cols()` and copies
    /// the selected rows of `src` in index order, reusing the existing
    /// allocation — the gather primitive behind zero-alloc ranked-subset
    /// passes (each row is the verbatim source row, so any row-wise
    /// computation over the gather bit-matches one over a cloned
    /// subset).
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn gather_rows_from(&mut self, src: &Matrix, indices: &[usize]) {
        self.rows = indices.len();
        self.cols = src.cols;
        self.data.clear();
        for &i in indices {
            self.data.extend_from_slice(src.row(i));
        }
    }

    /// `self × other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self × other`, written into `out` (reshaped and zeroed in
    /// place). The i→k→j loop order keeps the inner loop a straight
    /// `axpy` over contiguous rows, which the compiler autovectorises;
    /// per-element accumulation order is the k order, identical to
    /// [`Self::matmul`], so results are bit-identical. Two `self` rows
    /// share each pass over the `other` block, halving the B-row
    /// traffic; the per-element accumulators stay independent, so
    /// blocking changes nothing bitwise.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.reset_zeroed(self.rows, other.cols);
        let w = other.cols;
        let d = self.cols;
        let mut i = 0;
        while i + 2 <= self.rows {
            let a0 = &self.data[i * d..(i + 1) * d];
            let a1 = &self.data[(i + 1) * d..(i + 2) * d];
            let (lo, hi) = out.data.split_at_mut((i + 1) * w);
            let o0 = &mut lo[i * w..];
            let o1 = &mut hi[..w];
            // Eight k steps per pass: each output element still receives
            // its contributions in ascending k order (bit-exact against
            // the one-step loop), while the B rows loaded for the block
            // feed both output rows.
            let mut k = 0;
            while k + 8 <= d {
                let a = &a0[k..k + 8];
                let c = &a1[k..k + 8];
                let b = &other.data[k * w..(k + 8) * w];
                let (b0, rest) = b.split_at(w);
                let (b1, rest) = rest.split_at(w);
                let (b2, rest) = rest.split_at(w);
                let (b3, rest) = rest.split_at(w);
                let (b4, rest) = rest.split_at(w);
                let (b5, rest) = rest.split_at(w);
                let (b6, b7) = rest.split_at(w);
                for (((((((((o, p), &v0), &v1), &v2), &v3), &v4), &v5), &v6), &v7) in o0
                    .iter_mut()
                    .zip(o1.iter_mut())
                    .zip(b0)
                    .zip(b1)
                    .zip(b2)
                    .zip(b3)
                    .zip(b4)
                    .zip(b5)
                    .zip(b6)
                    .zip(b7)
                {
                    let mut acc = *o;
                    acc += a[0] * v0;
                    acc += a[1] * v1;
                    acc += a[2] * v2;
                    acc += a[3] * v3;
                    acc += a[4] * v4;
                    acc += a[5] * v5;
                    acc += a[6] * v6;
                    acc += a[7] * v7;
                    *o = acc;
                    let mut bcc = *p;
                    bcc += c[0] * v0;
                    bcc += c[1] * v1;
                    bcc += c[2] * v2;
                    bcc += c[3] * v3;
                    bcc += c[4] * v4;
                    bcc += c[5] * v5;
                    bcc += c[6] * v6;
                    bcc += c[7] * v7;
                    *p = bcc;
                }
                k += 8;
            }
            for ((&a, &c), orow) in a0[k..]
                .iter()
                .zip(&a1[k..])
                .zip(other.data[k * w..].chunks_exact(w))
            {
                for ((o, p), &b) in o0.iter_mut().zip(o1.iter_mut()).zip(orow) {
                    *o += a * b;
                    *p += c * b;
                }
            }
            i += 2;
        }
        if i < self.rows {
            let arow = self.row(i);
            let out_row = out.row_mut(i);
            let mut k = 0;
            while k + 8 <= arow.len() {
                let a = &arow[k..k + 8];
                let b = &other.data[k * w..(k + 8) * w];
                let (b0, rest) = b.split_at(w);
                let (b1, rest) = rest.split_at(w);
                let (b2, rest) = rest.split_at(w);
                let (b3, rest) = rest.split_at(w);
                let (b4, rest) = rest.split_at(w);
                let (b5, rest) = rest.split_at(w);
                let (b6, b7) = rest.split_at(w);
                for ((((((((o, &v0), &v1), &v2), &v3), &v4), &v5), &v6), &v7) in out_row
                    .iter_mut()
                    .zip(b0)
                    .zip(b1)
                    .zip(b2)
                    .zip(b3)
                    .zip(b4)
                    .zip(b5)
                    .zip(b6)
                    .zip(b7)
                {
                    let mut acc = *o;
                    acc += a[0] * v0;
                    acc += a[1] * v1;
                    acc += a[2] * v2;
                    acc += a[3] * v3;
                    acc += a[4] * v4;
                    acc += a[5] * v5;
                    acc += a[6] * v6;
                    acc += a[7] * v7;
                    *o = acc;
                }
                k += 8;
            }
            for (&a, orow) in arow[k..].iter().zip(other.data[k * w..].chunks_exact(w)) {
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
    }

    /// `relu?(self × weights + bias)`, written into `out` — the fused
    /// dense-layer forward pass. Runs the exact [`Self::matmul_into`]
    /// loop, then applies the bias add (and optional ReLU) to each output
    /// row as soon as its accumulation finishes, while the row is still
    /// cache-hot — instead of two further full-matrix passes. Every
    /// output element sees the same operations in the same order as
    /// `matmul_into` + `add_row_vec` + `relu_inplace`, so results are
    /// bit-identical.
    ///
    /// # Panics
    /// Panics on inner-dimension or bias-width mismatch.
    pub fn affine_into(&self, weights: &Matrix, bias: &[f32], relu: bool, out: &mut Matrix) {
        assert_eq!(self.cols, weights.rows, "matmul shape mismatch");
        assert_eq!(bias.len(), weights.cols, "bias width mismatch");
        // The accumulation pass is the exact [`Self::matmul_into`] loop
        // (shared so the two-row blocking lives in one place).
        self.matmul_into(weights, out);
        // Row epilogue: bias, then the ReLU clamp — the exact order of
        // the unfused add_row_vec / relu_inplace passes.
        for i in 0..self.rows {
            let out_row = out.row_mut(i);
            for (o, &b) in out_row.iter_mut().zip(bias) {
                *o += b;
            }
            if relu {
                for o in out_row.iter_mut() {
                    if *o < 0.0 {
                        *o = 0.0;
                    }
                }
            }
        }
    }

    /// `selfᵀ × other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into(other, &mut out);
        out
    }

    /// `selfᵀ × other`, written into `out` (reshaped and zeroed in
    /// place). Accumulation order per output element matches
    /// [`Self::t_matmul`] exactly (row order of the operands).
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        out.reset_zeroed(self.cols, other.cols);
        let m = self.rows;
        // Eight r steps per pass; per-output-element accumulation stays
        // in ascending r order (bit-exact against the one-step loop)
        // while each output row is loaded/stored once per eight steps —
        // the backward gradient GEMM mirrors the forward kernels'
        // 8-wide blocking.
        let mut r = 0;
        while r + 8 <= m {
            let (a0, a1, a2, a3) = (
                self.row(r),
                self.row(r + 1),
                self.row(r + 2),
                self.row(r + 3),
            );
            let (a4, a5, a6, a7) = (
                self.row(r + 4),
                self.row(r + 5),
                self.row(r + 6),
                self.row(r + 7),
            );
            let (b0, b1, b2, b3) = (
                other.row(r),
                other.row(r + 1),
                other.row(r + 2),
                other.row(r + 3),
            );
            let (b4, b5, b6, b7) = (
                other.row(r + 4),
                other.row(r + 5),
                other.row(r + 6),
                other.row(r + 7),
            );
            for i in 0..self.cols {
                let (x0, x1, x2, x3) = (a0[i], a1[i], a2[i], a3[i]);
                let (x4, x5, x6, x7) = (a4[i], a5[i], a6[i], a7[i]);
                let out_row = out.row_mut(i);
                for ((((((((o, &v0), &v1), &v2), &v3), &v4), &v5), &v6), &v7) in out_row
                    .iter_mut()
                    .zip(b0)
                    .zip(b1)
                    .zip(b2)
                    .zip(b3)
                    .zip(b4)
                    .zip(b5)
                    .zip(b6)
                    .zip(b7)
                {
                    let mut acc = *o;
                    acc += x0 * v0;
                    acc += x1 * v1;
                    acc += x2 * v2;
                    acc += x3 * v3;
                    acc += x4 * v4;
                    acc += x5 * v5;
                    acc += x6 * v6;
                    acc += x7 * v7;
                    *o = acc;
                }
            }
            r += 8;
        }
        while r < m {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
            r += 1;
        }
    }

    /// `self × otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// `self × otherᵀ`, written into `out` (reshaped in place). Each
    /// output element is a single dot product of two contiguous rows,
    /// evaluated in the same order as [`Self::matmul_t`].
    ///
    /// Output columns are processed four at a time: the four dot
    /// products keep independent accumulators, so the additions of
    /// *each* output element still happen in plain k order (bit-exact
    /// against the one-at-a-time loop) while the FP add latency chain
    /// is overlapped fourfold.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        out.reset_zeroed(self.rows, other.rows);
        let n = other.rows;
        let w = other.cols;
        for i in 0..self.rows {
            let arow = self.row(i);
            let out_row = out.row_mut(i);
            let mut j = 0;
            while j + 8 <= n {
                let b = &other.data[j * w..(j + 8) * w];
                let (b0, rest) = b.split_at(w);
                let (b1, rest) = rest.split_at(w);
                let (b2, rest) = rest.split_at(w);
                let (b3, rest) = rest.split_at(w);
                let (b4, rest) = rest.split_at(w);
                let (b5, rest) = rest.split_at(w);
                let (b6, b7) = rest.split_at(w);
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                let (mut s4, mut s5, mut s6, mut s7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for ((((((((&a, &v0), &v1), &v2), &v3), &v4), &v5), &v6), &v7) in arow
                    .iter()
                    .zip(b0)
                    .zip(b1)
                    .zip(b2)
                    .zip(b3)
                    .zip(b4)
                    .zip(b5)
                    .zip(b6)
                    .zip(b7)
                {
                    s0 += a * v0;
                    s1 += a * v1;
                    s2 += a * v2;
                    s3 += a * v3;
                    s4 += a * v4;
                    s5 += a * v5;
                    s6 += a * v6;
                    s7 += a * v7;
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                out_row[j + 4] = s4;
                out_row[j + 5] = s5;
                out_row[j + 6] = s6;
                out_row[j + 7] = s7;
                j += 8;
            }
            for (o, brow) in out_row[j..]
                .iter_mut()
                .zip(other.data[j * w..].chunks_exact(w))
            {
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    }

    /// `(self − mean) × otherᵀ`, written into `out` — the PCA projection
    /// with the per-column mean subtraction fused into the GEMM instead
    /// of materialising a centred copy first. Each `self` element is
    /// centred (`x − mean[k]`) at the moment it enters the dot products,
    /// which is the identical f32 subtraction the standalone centring
    /// pass performs — per-element operation order matches
    /// `center_into` + [`Self::matmul_t_into`] exactly, so results are
    /// bit-identical at one full matrix write+read less.
    ///
    /// # Panics
    /// Panics on column-count or mean-width mismatch.
    pub fn centered_matmul_t_into(&self, mean: &[f32], other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        assert_eq!(mean.len(), self.cols, "mean width mismatch");
        if other.rows == 8 {
            return self.centered_matmul_t8_into(mean, other, out);
        }
        out.reset_zeroed(self.rows, other.rows);
        let n = other.rows;
        let w = other.cols;
        for i in 0..self.rows {
            let arow = self.row(i);
            let out_row = out.row_mut(i);
            let mut j = 0;
            while j + 8 <= n {
                let b = &other.data[j * w..(j + 8) * w];
                let (b0, rest) = b.split_at(w);
                let (b1, rest) = rest.split_at(w);
                let (b2, rest) = rest.split_at(w);
                let (b3, rest) = rest.split_at(w);
                let (b4, rest) = rest.split_at(w);
                let (b5, rest) = rest.split_at(w);
                let (b6, b7) = rest.split_at(w);
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                let (mut s4, mut s5, mut s6, mut s7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (((((((((&a, &m), &v0), &v1), &v2), &v3), &v4), &v5), &v6), &v7) in arow
                    .iter()
                    .zip(mean)
                    .zip(b0)
                    .zip(b1)
                    .zip(b2)
                    .zip(b3)
                    .zip(b4)
                    .zip(b5)
                    .zip(b6)
                    .zip(b7)
                {
                    let x = a - m;
                    s0 += x * v0;
                    s1 += x * v1;
                    s2 += x * v2;
                    s3 += x * v3;
                    s4 += x * v4;
                    s5 += x * v5;
                    s6 += x * v6;
                    s7 += x * v7;
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                out_row[j + 4] = s4;
                out_row[j + 5] = s5;
                out_row[j + 6] = s6;
                out_row[j + 7] = s7;
                j += 8;
            }
            for (o, brow) in out_row[j..]
                .iter_mut()
                .zip(other.data[j * w..].chunks_exact(w))
            {
                let mut acc = 0.0;
                for ((a, m), b) in arow.iter().zip(mean).zip(brow) {
                    acc += (a - m) * b;
                }
                *o = acc;
            }
        }
    }

    /// [`Self::centered_matmul_t_into`] specialised to exactly eight
    /// `other` rows — the default-width PCA projection. The component
    /// rows are first transposed into a k-major `d × 8` layout so the
    /// eight per-element accumulators sit in one contiguous lane group;
    /// the fixed-width `[f32; 8]` accumulator then vectorises to a
    /// single 256-bit multiply-add per `k` step instead of eight scalar
    /// chains fed by strided row loads (measured ~3× on the 6000×32
    /// drift-projection shape). Each output element still owns one
    /// accumulator fed in ascending `k` order, so results are
    /// bit-identical to the general path.
    fn centered_matmul_t8_into(&self, mean: &[f32], other: &Matrix, out: &mut Matrix) {
        let d = self.cols;
        let mut ct = vec![0.0f32; d * 8];
        for j in 0..8 {
            let row = other.row(j);
            for k in 0..d {
                ct[k * 8 + j] = row[k];
            }
        }
        out.reset_zeroed(self.rows, 8);
        for i in 0..self.rows {
            let arow = self.row(i);
            let mut acc = [0.0f32; 8];
            for ((&a, &m), ctk) in arow.iter().zip(mean).zip(ct.chunks_exact(8)) {
                let x = a - m;
                for (s, &c) in acc.iter_mut().zip(ctk) {
                    *s += x * c;
                }
            }
            out.row_mut(i).copy_from_slice(&acc);
        }
    }

    /// `self × v`, written into `out` (resized in place) — the
    /// power-iteration matvec of the PCA fit, in the same blocked family
    /// as [`Self::matmul_t_into`].
    ///
    /// Rows are processed eight at a time with one independent
    /// accumulator each, so every output element is still a plain
    /// ascending-`k` dot product — bit-exact against the scalar
    /// row-by-row loop — while eight FP add latency chains overlap and
    /// eight matrix rows stream through the cache per pass.
    ///
    /// # Panics
    /// Panics when `v.len() != self.cols()`.
    pub fn matvec_into(&self, v: &[f32], out: &mut Vec<f32>) {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        out.clear();
        out.resize(self.rows, 0.0);
        let w = self.cols;
        let mut i = 0;
        while i + 8 <= self.rows {
            let b = &self.data[i * w..(i + 8) * w];
            let (b0, rest) = b.split_at(w);
            let (b1, rest) = rest.split_at(w);
            let (b2, rest) = rest.split_at(w);
            let (b3, rest) = rest.split_at(w);
            let (b4, rest) = rest.split_at(w);
            let (b5, rest) = rest.split_at(w);
            let (b6, b7) = rest.split_at(w);
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let (mut s4, mut s5, mut s6, mut s7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for ((((((((&a, &v0), &v1), &v2), &v3), &v4), &v5), &v6), &v7) in v
                .iter()
                .zip(b0)
                .zip(b1)
                .zip(b2)
                .zip(b3)
                .zip(b4)
                .zip(b5)
                .zip(b6)
                .zip(b7)
            {
                s0 += a * v0;
                s1 += a * v1;
                s2 += a * v2;
                s3 += a * v3;
                s4 += a * v4;
                s5 += a * v5;
                s6 += a * v6;
                s7 += a * v7;
            }
            out[i] = s0;
            out[i + 1] = s1;
            out[i + 2] = s2;
            out[i + 3] = s3;
            out[i + 4] = s4;
            out[i + 5] = s5;
            out[i + 6] = s6;
            out[i + 7] = s7;
            i += 8;
        }
        for (o, row) in out[i..]
            .iter_mut()
            .zip(self.data[i * w..].chunks_exact(w))
        {
            let mut acc = 0.0;
            for (a, b) in v.iter().zip(row) {
                acc += a * b;
            }
            *o = acc;
        }
    }

    /// Adds a row vector (bias) to every row.
    pub fn add_row_vec(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for (x, b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Element-wise in-place ReLU.
    pub fn relu_inplace(&mut self) {
        for x in &mut self.data {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }

    /// Element-wise in-place multiply by the ReLU mask of `pre` (the
    /// backward pass of ReLU): entries where `pre <= 0` are zeroed.
    pub fn relu_backward_inplace(&mut self, pre: &Matrix) {
        assert_eq!(self.data.len(), pre.data.len(), "shape mismatch");
        for (g, p) in self.data.iter_mut().zip(&pre.data) {
            if *p <= 0.0 {
                *g = 0.0;
            }
        }
    }

    /// Row-wise softmax, numerically stabilised.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// In-place row-wise softmax, numerically stabilised.
    pub fn softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut total = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                total += *x;
            }
            for x in row.iter_mut() {
                *x /= total;
            }
        }
    }

    /// `self += k * other`, the SGD update primitive.
    pub fn axpy(&mut self, k: f32, other: &Matrix) {
        assert_eq!(self.data.len(), other.data.len(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Scales every element by `k`.
    pub fn scale(&mut self, k: f32) {
        for x in &mut self.data {
            *x *= k;
        }
    }

    /// Column sums returned as a vector (bias gradient).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.col_sums_into(&mut out);
        out
    }

    /// Column sums written into `out` (resized in place), reusing its
    /// allocation across calls.
    pub fn col_sums_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for (o, x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
    }

    /// Mean of each column (used for mean feature vectors in §3.2).
    pub fn col_means(&self) -> Vec<f32> {
        let mut out = self.col_sums();
        if self.rows > 0 {
            for x in &mut out {
                *x /= self.rows as f32;
            }
        }
        out
    }

    /// Index of the maximum entry of each row (argmax classification).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    // simlint: allow(no-unwrap-in-lib) — logits come out of finite-weight GEMMs; NaN means a training bug worth a loud stop
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN logit"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the natural seed for `*_into` scratch
    /// buffers, which reshape on first use.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

/// Fused SGD-momentum step over one parameter block: per element,
/// `gc = clamp(g·inv_batch, ±bound)`, `v = momentum·v − lr·gc`,
/// `w += v` — the batch-mean scaling, robustness clamp and update
/// applied in a single pass instead of two full-buffer rewrites
/// followed by three vector ops. Per-element arithmetic matches the
/// unfused pipeline exactly (`momentum·v − lr·gc` is the IEEE-identical
/// reassociation of `v·momentum + (−lr)·gc`), so weights are
/// bit-identical; only the raw-gradient buffer is left unscaled, which
/// no caller reads back.
pub fn momentum_step(
    weights: &mut [f32],
    vel: &mut [f32],
    grad: &[f32],
    inv_batch: f32,
    bound: f32,
    lr: f32,
    momentum: f32,
) {
    assert_eq!(weights.len(), grad.len(), "momentum_step shape mismatch");
    assert_eq!(weights.len(), vel.len(), "momentum_step shape mismatch");
    for ((w, v), g) in weights.iter_mut().zip(vel).zip(grad) {
        let gc = (g * inv_batch).clamp(-bound, bound);
        *v = momentum * *v - lr * gc;
        *w += *v;
    }
}

/// Fused Adam step over one parameter block: per element,
/// `gc = clamp(g·inv_batch, ±bound)`, then the bias-corrected moment
/// updates `m = β₁·m + (1−β₁)·gc`, `v = β₂·v + (1−β₂)·gc·gc`,
/// `w −= lr·(m/c1)/(√(v/c2) + ε)` — one pass over four buffers instead
/// of a scale pass, a clamp pass and the update. `c1`/`c2` are the
/// step-count bias corrections `1 − βᵢᵗ`, computed once by the caller.
/// Per-element expressions are unchanged from the unfused pipeline, so
/// parameters and optimizer state are bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn adam_step(
    weights: &mut [f32],
    m1: &mut [f32],
    m2: &mut [f32],
    grad: &[f32],
    inv_batch: f32,
    bound: f32,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    c1: f32,
    c2: f32,
) {
    assert_eq!(weights.len(), grad.len(), "adam_step shape mismatch");
    assert_eq!(weights.len(), m1.len(), "adam_step shape mismatch");
    assert_eq!(weights.len(), m2.len(), "adam_step shape mismatch");
    for (((w, m), v), g) in weights.iter_mut().zip(m1).zip(m2).zip(grad) {
        let gc = (g * inv_batch).clamp(-bound, bound);
        *m = beta1 * *m + (1.0 - beta1) * gc;
        *v = beta2 * *v + (1.0 - beta2) * gc * gc;
        *w -= lr * (*m / c1) / ((*v / c2).sqrt() + eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_slice(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit() {
        let a = Matrix::from_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_slice(2, 2, &[1.0, 0.5, -1.0, 2.0]);
        // aᵀ (3x2) × b (2x2) = 3x2
        let c = a.t_matmul(&b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 2);
        // check element (0,0): col0 of a · col0 of b = 1*1 + 4*(-1) = -3
        assert_eq!(c.get(0, 0), -3.0);

        let d = Matrix::from_slice(2, 3, &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        // a (2x3) × dᵀ (3x2) = 2x2; element (0,1) = row0(a)·row1(d) = 6*2
        let e = a.matmul_t(&d);
        assert_eq!(e.get(0, 1), 12.0);
    }

    #[test]
    fn into_variants_match_allocating_ones_and_reuse_buffers() {
        let mut rng = Prng::new(17);
        let data_a: Vec<f32> = (0..4 * 5).map(|_| rng.gauss() as f32).collect();
        let data_b: Vec<f32> = (0..5 * 3).map(|_| rng.gauss() as f32).collect();
        let a = Matrix::from_slice(4, 5, &data_a);
        let b = Matrix::from_slice(5, 3, &data_b);

        // Scratch buffers deliberately start with the wrong shape and
        // stale contents; every `_into` must reshape and overwrite.
        let mut out = Matrix::from_slice(1, 2, &[9.0, 9.0]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        let data_c: Vec<f32> = (0..4 * 3).map(|_| rng.gauss() as f32).collect();
        let c = Matrix::from_slice(4, 3, &data_c);
        a.t_matmul_into(&c, &mut out);
        assert_eq!(out, a.t_matmul(&c));

        let data_d: Vec<f32> = (0..2 * 5).map(|_| rng.gauss() as f32).collect();
        let d = Matrix::from_slice(2, 5, &data_d);
        a.matmul_t_into(&d, &mut out);
        assert_eq!(out, a.matmul_t(&d));

        // Zero entries in the left operand must not perturb results
        // (the old implementation skipped them; the branch-free one
        // multiplies through).
        let sparse = Matrix::from_slice(2, 2, &[0.0, 1.0, 0.0, 0.0]);
        let dense = Matrix::from_slice(2, 2, &[3.0, -4.0, 5.0, 6.0]);
        assert_eq!(sparse.matmul(&dense).data(), &[5.0, 6.0, 0.0, 0.0]);
    }

    /// The fused dense forward must bit-match the unfused three-pass
    /// pipeline at every shape, including k-block remainders.
    #[test]
    fn affine_into_bit_matches_unfused_pipeline() {
        let mut rng = Prng::new(23);
        for rows in [1usize, 7, 9, 33] {
            for (k, w) in [(16usize, 32usize), (5, 3), (8, 8), (17, 24)] {
                let a_data: Vec<f32> = (0..rows * k).map(|_| rng.gauss() as f32).collect();
                let w_data: Vec<f32> = (0..k * w).map(|_| rng.gauss() as f32).collect();
                let bias: Vec<f32> = (0..w).map(|_| rng.gauss() as f32).collect();
                let a = Matrix::from_slice(rows, k, &a_data);
                let weights = Matrix::from_slice(k, w, &w_data);
                for relu in [false, true] {
                    let mut expect = Matrix::default();
                    a.matmul_into(&weights, &mut expect);
                    expect.add_row_vec(&bias);
                    if relu {
                        expect.relu_inplace();
                    }
                    let mut got = Matrix::from_slice(1, 1, &[5.0]);
                    a.affine_into(&weights, &bias, relu, &mut got);
                    let eb: Vec<u32> = expect.data().iter().map(|x| x.to_bits()).collect();
                    let gb: Vec<u32> = got.data().iter().map(|x| x.to_bits()).collect();
                    assert_eq!(gb, eb, "{rows}x{k}x{w} relu={relu}");
                }
            }
        }
    }

    /// The fused centred projection must bit-match centring into a
    /// scratch matrix first and then running the plain `matmul_t_into`.
    #[test]
    fn centered_matmul_t_bit_matches_two_pass() {
        let mut rng = Prng::new(29);
        for rows in [1usize, 8, 21] {
            for (w, n) in [(32usize, 8usize), (6, 3), (12, 11)] {
                let a_data: Vec<f32> = (0..rows * w).map(|_| rng.gauss() as f32).collect();
                let b_data: Vec<f32> = (0..n * w).map(|_| rng.gauss() as f32).collect();
                let mean: Vec<f32> = (0..w).map(|_| rng.gauss() as f32).collect();
                let a = Matrix::from_slice(rows, w, &a_data);
                let b = Matrix::from_slice(n, w, &b_data);
                let centered_data: Vec<f32> = a
                    .data()
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| x - mean[i % w])
                    .collect();
                let centered = Matrix::from_slice(rows, w, &centered_data);
                let mut expect = Matrix::default();
                centered.matmul_t_into(&b, &mut expect);
                let mut got = Matrix::from_slice(1, 1, &[5.0]);
                a.centered_matmul_t_into(&mean, &b, &mut got);
                let eb: Vec<u32> = expect.data().iter().map(|x| x.to_bits()).collect();
                let gb: Vec<u32> = got.data().iter().map(|x| x.to_bits()).collect();
                assert_eq!(gb, eb, "{rows}x{w} by {n}");
            }
        }
    }

    /// The 8-row-blocked gradient GEMM must bit-match a one-step
    /// ascending-r accumulation at every block remainder (m % 8).
    #[test]
    fn t_matmul_blocked_bit_matches_one_step_loop() {
        let mut rng = Prng::new(37);
        for m in [1usize, 3, 4, 7, 8, 9, 15, 16, 17, 33] {
            for (k, n) in [(5usize, 4usize), (16, 24), (1, 1), (32, 6)] {
                let a_data: Vec<f32> = (0..m * k).map(|_| rng.gauss() as f32).collect();
                let b_data: Vec<f32> = (0..m * n).map(|_| rng.gauss() as f32).collect();
                let a = Matrix::from_slice(m, k, &a_data);
                let b = Matrix::from_slice(m, n, &b_data);
                let mut expect = Matrix::zeros(k, n);
                for r in 0..m {
                    let arow = a.row(r);
                    let brow = b.row(r);
                    for (i, &x) in arow.iter().enumerate() {
                        for (o, &v) in expect.row_mut(i).iter_mut().zip(brow) {
                            *o += x * v;
                        }
                    }
                }
                let mut got = Matrix::from_slice(1, 1, &[5.0]);
                a.t_matmul_into(&b, &mut got);
                let eb: Vec<u32> = expect.data().iter().map(|x| x.to_bits()).collect();
                let gb: Vec<u32> = got.data().iter().map(|x| x.to_bits()).collect();
                assert_eq!(gb, eb, "{m}x{k} by {m}x{n}");
            }
        }
    }

    /// The fused momentum kernel must bit-match the unfused pipeline:
    /// scale pass, clamp pass, then `v·momentum`, `v += −lr·g`,
    /// `w += v` as separate vector ops.
    #[test]
    fn momentum_step_bit_matches_unfused_sequence() {
        let mut rng = Prng::new(41);
        for n in [1usize, 8, 37, 256] {
            let grad: Vec<f32> = (0..n).map(|_| rng.gauss() as f32 * 40.0).collect();
            let w0: Vec<f32> = (0..n).map(|_| rng.gauss() as f32).collect();
            let v0: Vec<f32> = (0..n).map(|_| rng.gauss() as f32).collect();
            let (lr, momentum, batch) = (0.05f32, 0.9f32, 24.0f32);
            // Unfused reference.
            let mut g_ref = Matrix::from_slice(1, n, &grad);
            g_ref.scale(1.0 / batch);
            for g in g_ref.data_mut() {
                *g = g.clamp(-5.0, 5.0);
            }
            let mut w_ref = Matrix::from_slice(1, n, &w0);
            let mut v_ref = Matrix::from_slice(1, n, &v0);
            v_ref.scale(momentum);
            v_ref.axpy(-lr, &g_ref);
            w_ref.axpy(1.0, &v_ref);
            // Fused.
            let (mut w, mut v) = (w0.clone(), v0.clone());
            momentum_step(&mut w, &mut v, &grad, 1.0 / batch, 5.0, lr, momentum);
            let eq = |a: &[f32], b: &[f32]| {
                a.iter().map(|x| x.to_bits()).eq(b.iter().map(|x| x.to_bits()))
            };
            assert!(eq(&w, w_ref.data()), "weights diverge at n={n}");
            assert!(eq(&v, v_ref.data()), "velocity diverges at n={n}");
        }
    }

    /// The fused Adam kernel must bit-match the unfused pipeline
    /// (scale pass, clamp pass, per-element moment/parameter updates).
    #[test]
    fn adam_step_bit_matches_unfused_sequence() {
        let mut rng = Prng::new(43);
        for n in [1usize, 8, 37, 256] {
            let grad: Vec<f32> = (0..n).map(|_| rng.gauss() as f32 * 40.0).collect();
            let w0: Vec<f32> = (0..n).map(|_| rng.gauss() as f32).collect();
            let m0: Vec<f32> = (0..n).map(|_| rng.gauss() as f32 * 0.1).collect();
            let v0: Vec<f32> = (0..n).map(|_| (rng.gauss() as f32 * 0.1).abs()).collect();
            let (lr, beta1, beta2, eps, batch) = (0.02f32, 0.9f32, 0.999f32, 1e-8f32, 24.0f32);
            let (c1, c2) = (1.0 - beta1.powf(3.0), 1.0 - beta2.powf(3.0));
            // Unfused reference.
            let mut g_ref = Matrix::from_slice(1, n, &grad);
            g_ref.scale(1.0 / batch);
            for g in g_ref.data_mut() {
                *g = g.clamp(-5.0, 5.0);
            }
            let (mut w_ref, mut m_ref, mut v_ref) = (w0.clone(), m0.clone(), v0.clone());
            for (((w, m), v), g) in w_ref
                .iter_mut()
                .zip(&mut m_ref)
                .zip(&mut v_ref)
                .zip(g_ref.data())
            {
                *m = beta1 * *m + (1.0 - beta1) * g;
                *v = beta2 * *v + (1.0 - beta2) * g * g;
                *w -= lr * (*m / c1) / ((*v / c2).sqrt() + eps);
            }
            // Fused.
            let (mut w, mut m, mut v) = (w0.clone(), m0.clone(), v0.clone());
            adam_step(
                &mut w, &mut m, &mut v, &grad, 1.0 / batch, 5.0, lr, beta1, beta2, eps, c1, c2,
            );
            let eq = |a: &[f32], b: &[f32]| {
                a.iter().map(|x| x.to_bits()).eq(b.iter().map(|x| x.to_bits()))
            };
            assert!(eq(&w, &w_ref), "weights diverge at n={n}");
            assert!(eq(&m, &m_ref), "first moment diverges at n={n}");
            assert!(eq(&v, &v_ref), "second moment diverges at n={n}");
        }
    }

    #[test]
    fn matvec_bit_matches_scalar_row_dots() {
        let mut rng = Prng::new(31);
        // Cover the 8-wide blocks and every remainder lane (rows % 8).
        for rows in [1usize, 3, 7, 8, 9, 16, 19, 64] {
            for cols in [1usize, 5, 8, 33] {
                let data: Vec<f32> = (0..rows * cols).map(|_| rng.gauss() as f32).collect();
                let m = Matrix::from_slice(rows, cols, &data);
                let v: Vec<f32> = (0..cols).map(|_| rng.gauss() as f32).collect();
                let expect: Vec<u32> = (0..rows)
                    .map(|r| {
                        let mut acc = 0.0f32;
                        for (a, b) in v.iter().zip(m.row(r)) {
                            acc += a * b;
                        }
                        acc.to_bits()
                    })
                    .collect();
                // Dirty, wrongly-sized output buffer must be reshaped.
                let mut out = vec![9.0f32; 3];
                m.matvec_into(&v, &mut out);
                let got: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, expect, "{rows}x{cols}");
            }
        }
    }

    #[test]
    fn copy_from_and_reset_reuse_capacity() {
        let src = Matrix::from_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut dst = Matrix::zeros(8, 8);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.reset_zeroed(3, 2);
        assert_eq!(dst.rows(), 3);
        assert_eq!(dst.cols(), 2);
        assert!(dst.data().iter().all(|&x| x == 0.0));
        let mut sums = vec![7.0; 9];
        src.col_sums_into(&mut sums);
        assert_eq!(sums, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gather_rows_from_selects_in_index_order() {
        let src = Matrix::from_slice(4, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut dst = Matrix::zeros(9, 9);
        dst.gather_rows_from(&src, &[3, 0, 3]);
        assert_eq!(
            dst,
            Matrix::from_slice(3, 2, &[7.0, 8.0, 1.0, 2.0, 7.0, 8.0])
        );
        dst.gather_rows_from(&src, &[]);
        assert_eq!(dst.rows(), 0);
    }

    #[test]
    fn copy_rows_from_extracts_contiguous_chunks() {
        let src = Matrix::from_slice(4, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut dst = Matrix::zeros(9, 9);
        dst.copy_rows_from(&src, 1, 3);
        assert_eq!(dst, Matrix::from_slice(2, 2, &[3.0, 4.0, 5.0, 6.0]));
        // Empty range and full range both work; allocation is reused.
        dst.copy_rows_from(&src, 2, 2);
        assert_eq!(dst.rows(), 0);
        dst.copy_rows_from(&src, 0, 4);
        assert_eq!(dst, src);
    }

    #[test]
    fn softmax_rows_normalises() {
        let m = Matrix::from_slice(2, 3, &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let total: f32 = s.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
        // Large logits must not overflow.
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn relu_forward_backward() {
        let pre = Matrix::from_slice(1, 4, &[-1.0, 0.0, 2.0, -3.0]);
        let mut act = pre.clone();
        act.relu_inplace();
        assert_eq!(act.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut grad = Matrix::from_slice(1, 4, &[1.0, 1.0, 1.0, 1.0]);
        grad.relu_backward_inplace(&pre);
        assert_eq!(grad.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn col_stats_and_argmax() {
        let m = Matrix::from_slice(2, 2, &[1.0, 5.0, 3.0, 1.0]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
        assert_eq!(m.col_means(), vec![2.0, 3.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn axpy_updates() {
        let mut a = Matrix::zeros(1, 3);
        let g = Matrix::from_slice(1, 3, &[1.0, 2.0, 3.0]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[-0.5, -1.0, -1.5]);
    }

    #[test]
    fn he_init_statistics() {
        let mut rng = Prng::new(11);
        let m = Matrix::he_init(64, 64, &mut rng);
        let mean: f32 = m.data().iter().sum::<f32>() / 4096.0;
        let var: f32 = m
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 4096.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 2.0 / 64.0).abs() < 0.01, "var {var}");
    }
}
