//! Principal component analysis by power iteration with deflation.
//!
//! The AdaInf drift detector (§3.2) reduces high-dimensional feature
//! vectors with PCA before computing cosine distances "to get more
//! accurate distance results". Power iteration on the covariance matrix is
//! ample at the dimensionalities involved (≤ 64).

use crate::matrix::Matrix;
use adainf_simcore::Prng;

/// A fitted PCA projection.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Per-feature mean of the fitting data.
    mean: Vec<f32>,
    /// Principal components, one row per component.
    components: Matrix,
}

/// Reusable buffers for [`Pca::fit_with_scratch`] and
/// [`Pca::transform_into`]: the centred data copy, the covariance /
/// deflation matrix and the power-iteration vectors. Reusing one scratch
/// across fits and projections makes the drift-detection data path
/// allocation-free once warm.
#[derive(Clone, Debug, Default)]
pub struct PcaScratch {
    /// Centred copy of the input data (`x − mean` per column).
    centered: Matrix,
    /// Covariance matrix, deflated in place per extracted component.
    cov: Matrix,
    /// Power-iteration vector.
    v: Vec<f32>,
    /// Power-iteration / Rayleigh product buffer.
    w: Vec<f32>,
}

impl Pca {
    /// Fits `k` principal components to the rows of `data`.
    ///
    /// `k` is clamped to the feature dimensionality. Components are
    /// extracted by power iteration with Hotelling deflation; 60 iterations
    /// per component is far beyond convergence for these sizes.
    ///
    /// # Panics
    /// Panics when `data` has no rows.
    pub fn fit(data: &Matrix, k: usize, rng: &mut Prng) -> Self {
        Self::fit_with_scratch(data, k, rng, &mut PcaScratch::default())
    }

    /// [`Self::fit`] with caller-provided buffers: the centred copy,
    /// covariance and iteration vectors live in `scratch` and are reused
    /// across calls. The covariance is built as `Xcᵀ·Xc / n` via the
    /// blocked [`Matrix::t_matmul_into`] GEMM kernel rather than a triple
    /// scalar loop.
    ///
    /// # Panics
    /// Panics when `data` has no rows.
    pub fn fit_with_scratch(
        data: &Matrix,
        k: usize,
        rng: &mut Prng,
        scratch: &mut PcaScratch,
    ) -> Self {
        assert!(data.rows() > 0, "cannot fit PCA to an empty matrix");
        let d = data.cols();
        let k = k.min(d).max(1);
        let mean = data.col_means();

        // Covariance matrix (d × d), centred: cov = Xcᵀ·Xc / n.
        center_into(data, &mean, &mut scratch.centered);
        let PcaScratch {
            centered,
            cov,
            v,
            w,
        } = scratch;
        centered.t_matmul_into(centered, cov);
        cov.scale(1.0 / data.rows() as f32);

        let mut components = Matrix::zeros(k, d);
        let deflated = cov;
        for comp in 0..k {
            // Random start vector.
            v.clear();
            v.extend((0..d).map(|_| rng.gauss() as f32));
            normalize(v);
            for _ in 0..60 {
                w.clear();
                w.resize(d, 0.0);
                for (wi, i) in w.iter_mut().zip(0..d) {
                    let row = deflated.row(i);
                    let mut acc = 0.0;
                    for (r, x) in row.iter().zip(&*v) {
                        acc += r * x;
                    }
                    *wi = acc;
                }
                normalize(w);
                std::mem::swap(v, w);
            }
            // Rayleigh quotient = eigenvalue estimate, for deflation.
            w.clear();
            w.resize(d, 0.0);
            for (avi, i) in w.iter_mut().zip(0..d) {
                let row = deflated.row(i);
                *avi = row.iter().zip(&*v).map(|(r, x)| r * x).sum();
            }
            let lambda: f32 = w.iter().zip(&*v).map(|(a, x)| a * x).sum();
            // Deflate: C ← C − λ v vᵀ.
            for i in 0..d {
                let vi = v[i];
                let row = deflated.row_mut(i);
                for (j, c) in row.iter_mut().enumerate() {
                    *c -= lambda * vi * v[j];
                }
            }
            components.row_mut(comp).copy_from_slice(v);
        }
        Pca { mean, components }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.rows()
    }

    /// Projects each row of `data` onto the principal components,
    /// returning an `n × k` matrix.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.transform_into(data, &mut PcaScratch::default(), &mut out);
        out
    }

    /// [`Self::transform`] into a caller-provided output buffer, centring
    /// through `scratch`. The projection `Xc · Cᵀ` runs on the blocked
    /// [`Matrix::matmul_t_into`] kernel, whose per-element accumulation
    /// order (ascending feature index) matches the scalar loop exactly —
    /// results are bit-identical to [`Self::transform`].
    ///
    /// # Panics
    /// Panics on feature-dimensionality mismatch.
    pub fn transform_into(&self, data: &Matrix, scratch: &mut PcaScratch, out: &mut Matrix) {
        assert_eq!(data.cols(), self.mean.len(), "dimensionality mismatch");
        center_into(data, &self.mean, &mut scratch.centered);
        scratch.centered.matmul_t_into(&self.components, out);
    }

    /// Projects a single vector.
    pub fn transform_vec(&self, v: &[f32]) -> Vec<f32> {
        let m = Matrix::from_slice(1, v.len(), v);
        self.transform(&m).row(0).to_vec()
    }
}

/// Writes `data − mean` (per column) into `out`, reusing its allocation.
fn center_into(data: &Matrix, mean: &[f32], out: &mut Matrix) {
    out.reset_zeroed(data.rows(), data.cols());
    for r in 0..data.rows() {
        for ((o, &x), &m) in out.row_mut(r).iter_mut().zip(data.row(r)).zip(mean) {
            *o = x - m;
        }
    }
}

fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_component_finds_dominant_direction() {
        // Data stretched along (1, 1)/√2 with tiny orthogonal noise.
        let mut rng = Prng::new(5);
        let n = 400;
        let mut data = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let t = rng.gauss() * 5.0;
            let noise = rng.gauss() * 0.1;
            data.push((t + noise) as f32);
            data.push((t - noise) as f32);
        }
        let m = Matrix::from_slice(n, 2, &data);
        let pca = Pca::fit(&m, 1, &mut rng);
        let projected = pca.transform(&m);
        // Projection must capture nearly all the variance.
        let total_var: f32 = {
            let means = m.col_means();
            let mut acc = 0.0;
            for r in 0..n {
                for (c, &mean) in means.iter().enumerate().take(2) {
                    let d = m.get(r, c) - mean;
                    acc += d * d;
                }
            }
            acc / n as f32
        };
        let proj_var: f32 = {
            let mean: f32 = projected.data().iter().sum::<f32>() / n as f32;
            projected
                .data()
                .iter()
                .map(|x| (x - mean) * (x - mean))
                .sum::<f32>()
                / n as f32
        };
        assert!(
            proj_var / total_var > 0.99,
            "captured {} of {}",
            proj_var,
            total_var
        );
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = Prng::new(6);
        let n = 200;
        let d = 8;
        let mut data = Vec::with_capacity(n * d);
        for _ in 0..n * d {
            data.push(rng.gauss() as f32);
        }
        let m = Matrix::from_slice(n, d, &data);
        let pca = Pca::fit(&m, 3, &mut rng);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f32 = pca
                    .components
                    .row(i)
                    .iter()
                    .zip(pca.components.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 0.05, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn scratch_variants_match_allocating_ones() {
        let mut rng = Prng::new(9);
        let n = 64;
        let d = 8;
        let data: Vec<f32> = (0..n * d).map(|_| rng.gauss() as f32).collect();
        let m = Matrix::from_slice(n, d, &data);
        // Identical rng streams must give identical fits whichever entry
        // point is used — fit delegates to fit_with_scratch.
        let mut r1 = Prng::new(42);
        let mut r2 = Prng::new(42);
        let mut scratch = PcaScratch::default();
        let a = Pca::fit(&m, 3, &mut r1);
        let b = Pca::fit_with_scratch(&m, 3, &mut r2, &mut scratch);
        assert_eq!(a.components.data(), b.components.data());
        assert_eq!(a.mean, b.mean);
        // transform_into with a dirty, reused scratch bit-matches
        // transform.
        let expect = a.transform(&m);
        let mut out = Matrix::from_slice(1, 1, &[7.0]);
        b.transform_into(&m, &mut scratch, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn k_clamps_to_dimensionality() {
        let mut rng = Prng::new(7);
        let m = Matrix::from_slice(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let pca = Pca::fit(&m, 10, &mut rng);
        assert_eq!(pca.k(), 2);
        assert_eq!(pca.transform_vec(&[1.0, 2.0]).len(), 2);
    }
}
