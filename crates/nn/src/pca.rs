//! Principal component analysis by power iteration with deflation.
//!
//! The AdaInf drift detector (§3.2) reduces high-dimensional feature
//! vectors with PCA before computing cosine distances "to get more
//! accurate distance results". Power iteration on the covariance matrix is
//! ample at the dimensionalities involved (≤ 64).

use crate::matrix::Matrix;
use adainf_simcore::Prng;

/// Iteration ceiling per component — the schedule cold starts always run
/// in full (bit-compatible with the historical fixed-iteration fit) and
/// the backstop when a warm start's convergence early-exit never fires
/// (e.g. near-degenerate eigenvalue pairs).
pub const MAX_POWER_ITERS: usize = 60;

/// Relative eigenvalue-estimate tolerance of the convergence early-exit
/// for warm-started components: iteration stops once
/// `|λ_t − λ_{t−1}| ≤ tol·|λ_t|`. Below f32 machine epsilon, so the exit
/// fires only when the Rayleigh estimate has stabilised to the last bit —
/// a warm vector that is already the fixed point leaves immediately,
/// while anything still moving keeps iterating. Cold (random-start)
/// components never exit early: they run the full [`MAX_POWER_ITERS`]
/// schedule, keeping cold fits bit-identical to the pre-warm-start
/// kernel.
pub const CONVERGENCE_TOL: f32 = 1e-8;

/// A fitted PCA projection.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Per-feature mean of the fitting data.
    mean: Vec<f32>,
    /// Principal components, one row per component.
    components: Matrix,
}

/// Reusable buffers for [`Pca::fit_with_scratch`] and
/// [`Pca::transform_into`]: the centred data copy, the covariance /
/// deflation matrix and the power-iteration vectors. Reusing one scratch
/// across fits and projections makes the drift-detection data path
/// allocation-free once warm.
#[derive(Clone, Debug, Default)]
pub struct PcaScratch {
    /// Centred copy of the input data (`x − mean` per column).
    centered: Matrix,
    /// Covariance matrix, deflated in place per extracted component.
    cov: Matrix,
    /// Power-iteration vector.
    v: Vec<f32>,
    /// Power-iteration / Rayleigh product buffer.
    w: Vec<f32>,
}

impl Pca {
    /// Fits `k` principal components to the rows of `data`.
    ///
    /// `k` is clamped to the feature dimensionality. Components are
    /// extracted by power iteration with Hotelling deflation; each
    /// component iterates until its Rayleigh-quotient estimate converges
    /// (`|λ_t − λ_{t−1}| ≤ tol·|λ_t|`) with [`MAX_POWER_ITERS`] as the
    /// backstop.
    ///
    /// # Panics
    /// Panics when `data` has no rows.
    pub fn fit(data: &Matrix, k: usize, rng: &mut Prng) -> Self {
        Self::fit_with_scratch(data, k, rng, &mut PcaScratch::default())
    }

    /// [`Self::fit`] with caller-provided buffers: the centred copy,
    /// covariance and iteration vectors live in `scratch` and are reused
    /// across calls. The covariance is built as `Xcᵀ·Xc / n` via the
    /// blocked [`Matrix::t_matmul_into`] GEMM kernel rather than a triple
    /// scalar loop.
    ///
    /// # Panics
    /// Panics when `data` has no rows.
    pub fn fit_with_scratch(
        data: &Matrix,
        k: usize,
        rng: &mut Prng,
        scratch: &mut PcaScratch,
    ) -> Self {
        Self::fit_warm_with_scratch(data, k, rng, scratch, None)
    }

    /// [`Self::fit_with_scratch`] with an optional warm-start basis: when
    /// `warm` supplies a row for a component (matching the feature
    /// dimensionality, with non-negligible norm), power iteration starts
    /// from that row instead of a fresh Gaussian draw; components without
    /// a usable warm row fall back to the keyed random start, consuming
    /// the rng only for those draws. A basis from a fit of closely
    /// related data (e.g. the previous drift period's old-sample
    /// features) is already near the dominant subspace, so the
    /// convergence early-exit fires within a few iterations instead of
    /// tens. The early-exit is armed only for warm-started components —
    /// cold components run the full fixed schedule, so a fit without a
    /// usable warm basis is bit-identical to [`Self::fit_with_scratch`]
    /// before warm starts existed.
    ///
    /// Determinism: the fit is a pure function of `(data, k, the rng
    /// state, warm)` — callers replaying a build with the same warm basis
    /// get bit-identical components.
    ///
    /// # Panics
    /// Panics when `data` has no rows.
    pub fn fit_warm_with_scratch(
        data: &Matrix,
        k: usize,
        rng: &mut Prng,
        scratch: &mut PcaScratch,
        warm: Option<&Matrix>,
    ) -> Self {
        assert!(data.rows() > 0, "cannot fit PCA to an empty matrix");
        let d = data.cols();
        let k = k.min(d).max(1);
        let mean = data.col_means();

        // Covariance matrix (d × d), centred: cov = Xcᵀ·Xc / n.
        center_into(data, &mean, &mut scratch.centered);
        let PcaScratch {
            centered,
            cov,
            v,
            w,
        } = scratch;
        centered.t_matmul_into(centered, cov);
        cov.scale(1.0 / data.rows() as f32);

        let mut components = Matrix::zeros(k, d);
        let deflated = cov;
        for comp in 0..k {
            // Warm start from the caller's basis row when usable,
            // otherwise a fresh random direction.
            v.clear();
            let warm_row = warm
                .filter(|b| b.cols() == d && comp < b.rows())
                .map(|b| b.row(comp))
                .filter(|row| row.iter().map(|x| x * x).sum::<f32>().sqrt() > 1e-6);
            let warmed = warm_row.is_some();
            match warm_row {
                Some(row) => v.extend_from_slice(row),
                None => v.extend((0..d).map(|_| rng.gauss() as f32)),
            }
            normalize(v);

            // Power iteration with a Rayleigh-quotient convergence
            // early-exit. Each pass computes w = C·v through the blocked
            // 8-wide matvec kernel and reads the eigenvalue estimate
            // λ = vᵀ·C·v off the same product (v is unit), so the λ used
            // for deflation costs no extra matvec. When the estimate
            // never converges, the loop runs exactly [`MAX_POWER_ITERS`]
            // normalize steps and measures λ on the final vector — bit
            // for bit the fixed-iteration schedule of the pre-convergence
            // fit (the per-pass estimates are pure reads).
            let lambda: f32;
            let mut prev = f32::NAN;
            let mut steps = 0;
            loop {
                deflated.matvec_into(v, w);
                let est: f32 = v.iter().zip(&*w).map(|(x, y)| x * y).sum();
                let converged = warmed
                    && prev.is_finite()
                    && (est - prev).abs() <= CONVERGENCE_TOL * est.abs();
                if converged || steps >= MAX_POWER_ITERS {
                    lambda = est;
                    break;
                }
                prev = est;
                steps += 1;
                normalize(w);
                std::mem::swap(v, w);
            }
            // Deflate in one fused pass: C ← C − λ v vᵀ, with the λv
            // factor hoisted per row. `v` is the unit vector λ was
            // measured on, so the deflated residual is exact.
            for i in 0..d {
                let lvi = lambda * v[i];
                let row = deflated.row_mut(i);
                for (c, &vj) in row.iter_mut().zip(&*v) {
                    *c -= lvi * vj;
                }
            }
            components.row_mut(comp).copy_from_slice(v);
        }
        Pca { mean, components }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.rows()
    }

    /// The fitted principal components, one unit row per component —
    /// the warm-start basis for a subsequent fit of closely related
    /// data.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Consumes the fit, returning the component matrix without a copy.
    pub fn into_components(self) -> Matrix {
        self.components
    }

    /// Projects each row of `data` onto the principal components,
    /// returning an `n × k` matrix.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.transform_into(data, &mut PcaScratch::default(), &mut out);
        out
    }

    /// [`Self::transform`] into a caller-provided output buffer. The
    /// projection `(X − μ) · Cᵀ` runs on the fused
    /// [`Matrix::centered_matmul_t_into`] kernel — each element is
    /// centred as it enters the dot products instead of materialising a
    /// centred copy first. Per-element operation order matches the
    /// two-pass pipeline exactly, so results are bit-identical to
    /// [`Self::transform`]. (`scratch` is kept in the signature for the
    /// established call sites; the fused kernel no longer touches it.)
    ///
    /// # Panics
    /// Panics on feature-dimensionality mismatch.
    pub fn transform_into(&self, data: &Matrix, scratch: &mut PcaScratch, out: &mut Matrix) {
        assert_eq!(data.cols(), self.mean.len(), "dimensionality mismatch");
        let _ = scratch;
        data.centered_matmul_t_into(&self.mean, &self.components, out);
    }

    /// Projects a single vector.
    pub fn transform_vec(&self, v: &[f32]) -> Vec<f32> {
        let m = Matrix::from_slice(1, v.len(), v);
        self.transform(&m).row(0).to_vec()
    }
}

/// Writes `data − mean` (per column) into `out`, reusing its allocation.
fn center_into(data: &Matrix, mean: &[f32], out: &mut Matrix) {
    out.reset_zeroed(data.rows(), data.cols());
    for r in 0..data.rows() {
        for ((o, &x), &m) in out.row_mut(r).iter_mut().zip(data.row(r)).zip(mean) {
            *o = x - m;
        }
    }
}

fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_component_finds_dominant_direction() {
        // Data stretched along (1, 1)/√2 with tiny orthogonal noise.
        let mut rng = Prng::new(5);
        let n = 400;
        let mut data = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let t = rng.gauss() * 5.0;
            let noise = rng.gauss() * 0.1;
            data.push((t + noise) as f32);
            data.push((t - noise) as f32);
        }
        let m = Matrix::from_slice(n, 2, &data);
        let pca = Pca::fit(&m, 1, &mut rng);
        let projected = pca.transform(&m);
        // Projection must capture nearly all the variance.
        let total_var: f32 = {
            let means = m.col_means();
            let mut acc = 0.0;
            for r in 0..n {
                for (c, &mean) in means.iter().enumerate().take(2) {
                    let d = m.get(r, c) - mean;
                    acc += d * d;
                }
            }
            acc / n as f32
        };
        let proj_var: f32 = {
            let mean: f32 = projected.data().iter().sum::<f32>() / n as f32;
            projected
                .data()
                .iter()
                .map(|x| (x - mean) * (x - mean))
                .sum::<f32>()
                / n as f32
        };
        assert!(
            proj_var / total_var > 0.99,
            "captured {} of {}",
            proj_var,
            total_var
        );
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = Prng::new(6);
        let n = 200;
        let d = 8;
        let mut data = Vec::with_capacity(n * d);
        for _ in 0..n * d {
            data.push(rng.gauss() as f32);
        }
        let m = Matrix::from_slice(n, d, &data);
        let pca = Pca::fit(&m, 3, &mut rng);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f32 = pca
                    .components
                    .row(i)
                    .iter()
                    .zip(pca.components.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 0.05, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn scratch_variants_match_allocating_ones() {
        let mut rng = Prng::new(9);
        let n = 64;
        let d = 8;
        let data: Vec<f32> = (0..n * d).map(|_| rng.gauss() as f32).collect();
        let m = Matrix::from_slice(n, d, &data);
        // Identical rng streams must give identical fits whichever entry
        // point is used — fit delegates to fit_with_scratch.
        let mut r1 = Prng::new(42);
        let mut r2 = Prng::new(42);
        let mut scratch = PcaScratch::default();
        let a = Pca::fit(&m, 3, &mut r1);
        let b = Pca::fit_with_scratch(&m, 3, &mut r2, &mut scratch);
        assert_eq!(a.components.data(), b.components.data());
        assert_eq!(a.mean, b.mean);
        // transform_into with a dirty, reused scratch bit-matches
        // transform.
        let expect = a.transform(&m);
        let mut out = Matrix::from_slice(1, 1, &[7.0]);
        b.transform_into(&m, &mut scratch, &mut out);
        assert_eq!(out, expect);
    }

    /// Random data at several seeds: warm-started fits must keep the two
    /// structural properties the drift ranking relies on — components
    /// orthonormal, and captured variance no worse than the cold fit's.
    #[test]
    fn warm_started_fits_stay_orthonormal_and_capture_variance() {
        for seed in [3u64, 17, 91] {
            let mut rng = Prng::new(seed);
            let n = 200;
            let d = 12;
            let k = 4;
            let data: Vec<f32> = (0..n * d).map(|_| rng.gauss() as f32).collect();
            let m = Matrix::from_slice(n, d, &data);
            // Perturbed copy standing in for "next period's" data.
            let drifted: Vec<f32> = data
                .iter()
                .enumerate()
                .map(|(i, &x)| x + 0.05 * ((i % 7) as f32 - 3.0))
                .collect();
            let m2 = Matrix::from_slice(n, d, &drifted);

            let mut scratch = PcaScratch::default();
            let mut r1 = Prng::new(seed ^ 0xABCD);
            let cold = Pca::fit_with_scratch(&m2, k, &mut r1, &mut scratch);
            let prev = Pca::fit(&m, k, &mut Prng::new(seed ^ 0xABCD));
            let mut r2 = Prng::new(seed ^ 0xABCD);
            let warm = Pca::fit_warm_with_scratch(
                &m2,
                k,
                &mut r2,
                &mut scratch,
                Some(prev.components()),
            );

            // Orthonormality.
            for i in 0..k {
                for j in 0..k {
                    let dot: f32 = warm
                        .components
                        .row(i)
                        .iter()
                        .zip(warm.components.row(j))
                        .map(|(a, b)| a * b)
                        .sum();
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!((dot - expect).abs() < 0.05, "seed {seed} ({i},{j}) {dot}");
                }
            }
            // Variance capture: projected variance of the warm fit within
            // 1 % of the cold fit's.
            let var_of = |p: &Pca| -> f32 {
                let proj = p.transform(&m2);
                let mut acc = 0.0;
                for c in 0..proj.cols() {
                    let mean: f32 =
                        (0..n).map(|r| proj.get(r, c)).sum::<f32>() / n as f32;
                    acc += (0..n)
                        .map(|r| {
                            let v = proj.get(r, c) - mean;
                            v * v
                        })
                        .sum::<f32>()
                        / n as f32;
                }
                acc
            };
            let (cv, wv) = (var_of(&cold), var_of(&warm));
            assert!(wv >= cv * 0.99, "seed {seed}: warm {wv} vs cold {cv}");
        }
    }

    /// A warm basis of the wrong dimensionality (or with too few rows)
    /// must fall back to the keyed random start — bit-identical to the
    /// cold fit from the same rng state.
    #[test]
    fn unusable_warm_basis_falls_back_to_cold_fit() {
        let mut rng = Prng::new(12);
        let n = 80;
        let d = 6;
        let data: Vec<f32> = (0..n * d).map(|_| rng.gauss() as f32).collect();
        let m = Matrix::from_slice(n, d, &data);
        let mut scratch = PcaScratch::default();
        let cold = Pca::fit_with_scratch(&m, 3, &mut Prng::new(5), &mut scratch);
        // Wrong width: unusable for every component.
        let bad = Matrix::zeros(3, d + 1);
        let warm =
            Pca::fit_warm_with_scratch(&m, 3, &mut Prng::new(5), &mut scratch, Some(&bad));
        assert_eq!(cold.components.data(), warm.components.data());
        // All-zero rows: norm filter rejects them, same fallback.
        let zeros = Matrix::zeros(3, d);
        let warm2 =
            Pca::fit_warm_with_scratch(&m, 3, &mut Prng::new(5), &mut scratch, Some(&zeros));
        assert_eq!(cold.components.data(), warm2.components.data());
    }

    /// Warm-starting from the *same* data's converged basis must exit in
    /// a couple of iterations and reproduce essentially the same
    /// components (the self-consistency of the early-exit criterion).
    #[test]
    fn warm_start_from_own_basis_is_a_fixed_point() {
        let mut rng = Prng::new(44);
        let n = 150;
        let d = 10;
        let data: Vec<f32> = (0..n * d).map(|_| rng.gauss() as f32).collect();
        let m = Matrix::from_slice(n, d, &data);
        let first = Pca::fit(&m, 3, &mut Prng::new(9));
        let again = Pca::fit_warm_with_scratch(
            &m,
            3,
            &mut Prng::new(9),
            &mut PcaScratch::default(),
            Some(first.components()),
        );
        for i in 0..3 {
            let dot: f32 = first
                .components
                .row(i)
                .iter()
                .zip(again.components.row(i))
                .map(|(a, b)| a * b)
                .sum();
            assert!(dot.abs() > 0.999, "component {i} drifted: |dot| {dot}");
        }
    }

    #[test]
    fn k_clamps_to_dimensionality() {
        let mut rng = Prng::new(7);
        let m = Matrix::from_slice(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let pca = Pca::fit(&m, 10, &mut rng);
        assert_eq!(pca.k(), 2);
        assert_eq!(pca.transform_vec(&[1.0, 2.0]).len(), 2);
    }
}
