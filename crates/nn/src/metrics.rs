//! Distance and divergence measures.
//!
//! * Cosine distance — the drift detector (§3.2) ranks new samples by the
//!   cosine distance of their feature vector to the mean feature vector of
//!   the previous period's training data.
//! * Jensen–Shannon divergence — Fig 6 reports the JS divergence of class
//!   label distributions in consecutive time periods as the drift signal.

/// Cosine distance `1 − cos(a, b)` in `\[0, 2\]`. Returns `1.0` when either
/// vector is (numerically) zero — maximally non-informative.
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        dot += *x as f64 * *y as f64;
        na += *x as f64 * *x as f64;
        nb += *y as f64 * *y as f64;
    }
    if na < 1e-24 || nb < 1e-24 {
        return 1.0;
    }
    1.0 - dot / (na.sqrt() * nb.sqrt())
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats. Zero-probability
/// entries of `p` contribute nothing; zero entries of `q` where `p > 0`
/// are floored to avoid infinities (the label histograms this is applied
/// to are finite-sample estimates).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution size mismatch");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            acc += pi * (pi / qi.max(1e-12)).ln();
        }
    }
    acc
}

/// Jensen–Shannon divergence in nats: symmetric, bounded by `ln 2`.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution size mismatch");
    let m: Vec<f64> = p.iter().zip(q).map(|(a, b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Normalises a non-negative histogram into a probability distribution.
/// An all-zero histogram becomes the uniform distribution.
pub fn normalize_hist(counts: &[f64]) -> Vec<f64> {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / counts.len().max(1) as f64; counts.len()];
    }
    counts.iter().map(|c| c / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_distance_basics() {
        assert!((cosine_distance(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-9);
        assert!((cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-9);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-9);
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn cosine_distance_scale_invariant() {
        let a = [0.3f32, -1.2, 2.5];
        let b = [0.6f32, -2.4, 5.0];
        assert!(cosine_distance(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn js_divergence_properties() {
        let p = [0.5, 0.5];
        let q = [0.5, 0.5];
        assert!(js_divergence(&p, &q).abs() < 1e-12);
        let r = [1.0, 0.0];
        let s = [0.0, 1.0];
        // Disjoint support → ln 2.
        assert!((js_divergence(&r, &s) - (2.0f64).ln()).abs() < 1e-6);
        // Symmetric.
        let t = [0.8, 0.2];
        assert!((js_divergence(&p, &t) - js_divergence(&t, &p)).abs() < 1e-12);
        // Bounded.
        assert!(js_divergence(&p, &t) <= (2.0f64).ln());
    }

    #[test]
    fn kl_handles_zeros() {
        let p = [0.0, 1.0];
        let q = [0.5, 0.5];
        let kl = kl_divergence(&p, &q);
        assert!((kl - (2.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn normalize_hist_cases() {
        assert_eq!(normalize_hist(&[2.0, 2.0]), vec![0.5, 0.5]);
        assert_eq!(normalize_hist(&[0.0, 0.0]), vec![0.5, 0.5]);
    }
}
