//! # adainf-nn
//!
//! A small, dependency-free neural-network library written for the AdaInf
//! reproduction. The paper's accuracy dynamics — accuracy dropping under
//! data drift, recovering with retraining samples, early-exit structures
//! trading accuracy for latency — are produced by *actual learning* on
//! these networks rather than by a lookup table. The heavy backbones
//! (TinyYOLOv3, MobileNetV2, …) are represented by cost profiles in
//! `adainf-modelzoo`; this crate provides the trainable classifier heads
//! that sit behind those profiles, plus the numerical utilities the AdaInf
//! drift detector needs (PCA, cosine distance, Jensen–Shannon divergence).
//!
//! Contents:
//!
//! * [`matrix`] — a minimal row-major `f32` matrix with the handful of ops
//!   backprop needs.
//! * [`layer`] — dense layers with ReLU, forward/backward passes.
//! * [`mlp`] — [`mlp::EarlyExitMlp`]: a multi-layer perceptron with a
//!   softmax classification head after every hidden layer (deep
//!   supervision, as in BranchyNet/SPINN), trained with SGD + momentum.
//! * [`pca`] — principal component analysis by power iteration, used by
//!   the drift detector (§3.2) before computing cosine distances.
//! * [`metrics`] — cosine distance, KL and Jensen–Shannon divergence
//!   (Fig 6), accuracy helpers.
//! * [`average`] — parameter averaging across concurrently retrained model
//!   versions (§3.3.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod average;
pub mod layer;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod pca;

pub use matrix::Matrix;
pub use mlp::{EarlyExitMlp, InferScratch, MlpConfig, TrainBatch, TrainScratch};
