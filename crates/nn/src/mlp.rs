//! Early-exit multi-layer perceptrons.
//!
//! An [`EarlyExitMlp`] is a trunk of ReLU dense layers with a softmax
//! classification head attached after *every* trunk layer (deep
//! supervision, the BranchyNet/SPINN construction the paper's early-exit
//! structures follow \[22\]). Inference can stop at any exit: earlier exits
//! are cheaper but less accurate — exactly the trade-off AdaInf's structure
//! selector (§3.3.2) exploits.
//!
//! Training uses SGD with momentum on a weighted sum of the per-exit
//! cross-entropy losses, so every exit remains usable after retraining.

use crate::layer::{Dense, GradScratch, Update};
use crate::matrix::Matrix;
use adainf_simcore::Prng;

/// Hyper-parameters of an [`EarlyExitMlp`].
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Width of each trunk layer; its length is the number of exits.
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Loss weight per exit; later exits usually get more weight. Must
    /// have the same length as `hidden` (checked at build time).
    pub exit_weights: Vec<f32>,
    /// Optional update-rule override (e.g. [`Update::adam`]); `None`
    /// uses SGD with the `lr`/`momentum` fields above.
    pub update: Option<Update>,
}

impl MlpConfig {
    /// A reasonable default: two hidden layers, final exit weighted 1.0
    /// and the early exit 0.4.
    pub fn small(input_dim: usize, classes: usize) -> Self {
        MlpConfig {
            input_dim,
            hidden: vec![32, 32],
            classes,
            lr: 0.05,
            momentum: 0.9,
            exit_weights: vec![0.4, 1.0],
            update: None,
        }
    }

    /// The effective update rule.
    pub fn update_rule(&self) -> Update {
        self.update.unwrap_or(Update::SgdMomentum {
            lr: self.lr,
            momentum: self.momentum,
        })
    }
}

/// A labelled mini-batch.
#[derive(Clone, Debug)]
pub struct TrainBatch {
    /// Feature rows, `batch × input_dim`.
    pub inputs: Matrix,
    /// Class label per row.
    pub labels: Vec<usize>,
}

/// An MLP with an early-exit head after every trunk layer.
///
/// ```
/// use adainf_nn::{EarlyExitMlp, Matrix, MlpConfig, TrainBatch};
/// use adainf_simcore::Prng;
/// let mut rng = Prng::new(3);
/// let mut net = EarlyExitMlp::new(MlpConfig::small(4, 2), &mut rng);
/// // Two separable blobs at ±1.
/// let data: Vec<f32> = (0..32).flat_map(|i| {
///     let c = if i % 2 == 0 { -1.0f32 } else { 1.0 };
///     vec![c; 4]
/// }).collect();
/// let batch = TrainBatch {
///     inputs: Matrix::from_slice(32, 4, &data),
///     labels: (0..32).map(|i| i % 2).collect(),
/// };
/// net.train_epochs(&batch, 20);
/// let acc = net.accuracy(&batch.inputs, &batch.labels, net.num_exits() - 1);
/// assert!(acc > 0.95);
/// ```
#[derive(Debug)]
pub struct EarlyExitMlp {
    trunk: Vec<Dense>,
    heads: Vec<Dense>,
    config: MlpConfig,
    scratch: TrainScratch,
}

impl Clone for EarlyExitMlp {
    /// Clones the parameters and optimizer state; the training scratch
    /// buffers start empty in the clone (they re-warm on first use).
    fn clone(&self) -> Self {
        EarlyExitMlp {
            trunk: self.trunk.clone(),
            heads: self.heads.clone(),
            config: self.config.clone(),
            scratch: TrainScratch::default(),
        }
    }
}

/// Ping-pong activation buffers for the allocation-free inference
/// entry points ([`EarlyExitMlp::predict_with_scratch`]). One instance
/// serves any number of forward passes; buffers reshape on first use.
#[derive(Clone, Debug, Default)]
pub struct InferScratch {
    ping: Matrix,
    pong: Matrix,
}

/// Preallocated buffers reused by every [`EarlyExitMlp::train_batch`]
/// call, so steady-state SGD retraining performs zero heap
/// allocations: forward activations and pre-activations per trunk
/// layer, softmax/gradient carriers, and per-layer parameter-gradient
/// scratch.
///
/// Public so parallel training fan-outs can hold one instance per
/// *worker* (via [`EarlyExitMlp::train_batch_parts_with`]) instead of
/// re-warming each model's embedded scratch; the buffers carry no
/// model state — every field is fully overwritten before it is read —
/// so sharing an instance across models is bit-safe.
#[derive(Debug, Default)]
pub struct TrainScratch {
    /// Post-activation output of each trunk layer.
    activations: Vec<Matrix>,
    /// Pre-activation output of each trunk layer (ReLU mask input).
    trunk_pre: Vec<Matrix>,
    /// Head logits, softmaxed in place into class probabilities.
    probs: Matrix,
    /// Gradient carrier flowing backward through the trunk.
    grad: Matrix,
    /// Per-layer backward output buffer, swapped with `grad`.
    grad_in: Matrix,
    /// Gradient each head injects into its trunk level.
    head_grads: Vec<Matrix>,
    /// Parameter-gradient buffers shared by every layer's update.
    layer: GradScratch,
}

impl EarlyExitMlp {
    /// Builds a randomly-initialised network.
    ///
    /// # Panics
    /// Panics if `hidden` is empty or `exit_weights` length mismatches.
    pub fn new(config: MlpConfig, rng: &mut Prng) -> Self {
        assert!(!config.hidden.is_empty(), "need at least one trunk layer");
        assert_eq!(
            config.hidden.len(),
            config.exit_weights.len(),
            "one exit weight per trunk layer"
        );
        let mut trunk = Vec::with_capacity(config.hidden.len());
        let mut heads = Vec::with_capacity(config.hidden.len());
        let mut in_dim = config.input_dim;
        for &h in &config.hidden {
            trunk.push(Dense::new(in_dim, h, true, rng));
            heads.push(Dense::new(h, config.classes, false, rng));
            in_dim = h;
        }
        EarlyExitMlp {
            trunk,
            heads,
            config,
            scratch: TrainScratch::default(),
        }
    }

    /// Number of exits (== trunk depth).
    pub fn num_exits(&self) -> usize {
        self.trunk.len()
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.config.classes
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.trunk
            .iter()
            .chain(self.heads.iter())
            .map(Dense::param_count)
            .sum()
    }

    /// Class-probability rows at the given exit (0-based; the last exit is
    /// the "full structure").
    ///
    /// # Panics
    /// Panics if `exit >= num_exits()`.
    pub fn probabilities(&self, inputs: &Matrix, exit: usize) -> Matrix {
        assert!(exit < self.num_exits(), "exit out of range");
        let mut x = inputs.clone();
        for layer in &self.trunk[..=exit] {
            x = layer.infer(&x);
        }
        self.heads[exit].infer(&x).softmax_rows()
    }

    /// Predicted class per row at the given exit.
    pub fn predict(&self, inputs: &Matrix, exit: usize) -> Vec<usize> {
        self.probabilities(inputs, exit).argmax_rows()
    }

    /// [`Self::predict`] through caller-provided ping-pong buffers: no
    /// input clone, no per-layer allocation, softmax in place. The
    /// forward kernels and the softmax/argmax math are the exact ones
    /// [`Self::predict`] runs, so predictions are bit-identical.
    ///
    /// # Panics
    /// Panics if `exit >= num_exits()`.
    pub fn predict_with_scratch(
        &self,
        inputs: &Matrix,
        exit: usize,
        scratch: &mut InferScratch,
    ) -> Vec<usize> {
        assert!(exit < self.num_exits(), "exit out of range");
        let InferScratch { ping, pong } = scratch;
        self.trunk[0].infer_into(inputs, ping);
        for layer in &self.trunk[1..=exit] {
            layer.infer_into(ping, pong);
            std::mem::swap(ping, pong);
        }
        self.heads[exit].infer_into(ping, pong);
        pong.softmax_rows_inplace();
        pong.argmax_rows()
    }

    /// [`Self::predict_with_scratch`] resumed from the first trunk
    /// layer's output: `features` must be the matrix
    /// [`Self::features_into`] produced for the same rows (it IS
    /// `trunk[0]`'s post-activation output, bit for bit), so the pass
    /// skips that layer and runs the identical remaining ladder —
    /// predictions are bit-equal to the full input pass at one dense
    /// layer less. Callers holding cached feature matrices (the drift
    /// detector's per-period artifacts) use this for their lazy
    /// prefix-accuracy extensions.
    ///
    /// # Panics
    /// Panics if `exit >= num_exits()` or the feature width mismatches.
    pub fn predict_from_features_with_scratch(
        &self,
        features: &Matrix,
        exit: usize,
        scratch: &mut InferScratch,
    ) -> Vec<usize> {
        assert!(exit < self.num_exits(), "exit out of range");
        assert_eq!(
            features.cols(),
            self.config.hidden[0],
            "feature width mismatch"
        );
        let InferScratch { ping, pong } = scratch;
        if exit == 0 {
            self.heads[0].infer_into(features, pong);
        } else {
            self.trunk[1].infer_into(features, ping);
            for layer in &self.trunk[2..=exit] {
                layer.infer_into(ping, pong);
                std::mem::swap(ping, pong);
            }
            self.heads[exit].infer_into(ping, pong);
        }
        pong.softmax_rows_inplace();
        pong.argmax_rows()
    }

    /// Fraction of rows classified correctly at the given exit.
    pub fn accuracy(&self, inputs: &Matrix, labels: &[usize], exit: usize) -> f64 {
        assert_eq!(inputs.rows(), labels.len(), "label count mismatch");
        if labels.is_empty() {
            return 0.0;
        }
        let preds = self.predict(inputs, exit);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }

    /// The hidden representation at the *first* trunk layer — used as the
    /// "feature vector" of a sample by the drift detector (§3.2).
    pub fn features(&self, inputs: &Matrix) -> Matrix {
        self.trunk[0].infer(inputs)
    }

    /// [`Self::features`] into a caller-owned buffer (reshaped in
    /// place), for the drift data path's reusable feature matrices.
    pub fn features_into(&self, inputs: &Matrix, out: &mut Matrix) {
        self.trunk[0].infer_into(inputs, out);
    }

    /// SPINN-style confidence-gated inference \[22\]: each row exits at
    /// the first head whose top softmax probability reaches
    /// `confidence`, falling through to the final exit otherwise.
    /// Returns the predicted class and the exit used per row.
    ///
    /// This is the *dynamic* early-exit mode of the SPINN citation; the
    /// AdaInf scheduler instead picks a *static* exit per structure
    /// choice (§3.3.2). Both modes share the same heads.
    pub fn predict_adaptive(&self, inputs: &Matrix, confidence: f32) -> Vec<(usize, usize)> {
        let n = inputs.rows();
        let mut out: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut x = inputs.clone();
        for exit in 0..self.num_exits() {
            x = self.trunk[exit].infer(&x);
            let probs = self.heads[exit].infer(&x).softmax_rows();
            let last = exit + 1 == self.num_exits();
            for (r, slot) in out.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let row = probs.row(r);
                let (best, &p) = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite prob")) // simlint: allow(no-unwrap-in-lib) — softmax outputs are finite probabilities
                    .expect("non-empty class row"); // simlint: allow(no-unwrap-in-lib) — class count is fixed and > 0
                if p >= confidence || last {
                    *slot = Some((best, exit));
                }
            }
            if out.iter().all(Option::is_some) {
                break;
            }
        }
        out.into_iter()
            .map(|o| o.expect("all rows exited")) // simlint: allow(no-unwrap-in-lib) — the final exit runs with `last == true`, which fills every remaining row
            .collect()
    }

    /// One SGD step on a mini-batch with deep supervision: the loss is the
    /// exit-weighted sum of per-exit cross-entropies. Returns the mean
    /// (weighted) loss, for monitoring.
    ///
    /// All intermediate buffers live in the network's `TrainScratch`
    /// and are reused across calls, so steady-state retraining performs
    /// zero heap allocations once the buffers have warmed up.
    pub fn train_batch(&mut self, batch: &TrainBatch) -> f64 {
        self.train_batch_parts(&batch.inputs, &batch.labels)
    }

    /// [`Self::train_batch`] on borrowed inputs and labels, so callers
    /// slicing mini-batches out of a larger sample set need not assemble
    /// a [`TrainBatch`] (and clone rows into it) per step.
    pub fn train_batch_parts(&mut self, inputs: &Matrix, labels: &[usize]) -> f64 {
        assert_eq!(inputs.rows(), labels.len());
        if labels.is_empty() {
            return 0.0;
        }
        let update = self.config.update_rule();
        let n_exits = self.num_exits();
        let scratch = &mut self.scratch;
        scratch.activations.resize_with(n_exits, Matrix::default);
        scratch.trunk_pre.resize_with(n_exits, Matrix::default);
        scratch.head_grads.resize_with(n_exits, Matrix::default);

        // Forward through the trunk, keeping each layer's input
        // (previous activation) and pre-activation for the backward
        // pass.
        for e in 0..n_exits {
            let (earlier, rest) = scratch.activations.split_at_mut(e);
            let input = if e == 0 { inputs } else { &earlier[e - 1] };
            self.trunk[e].forward_into(input, &mut scratch.trunk_pre[e], &mut rest[0]);
        }

        // Per-exit head forward + softmax-CE gradient, updating heads and
        // collecting the gradient each head injects into its trunk level.
        let mut total_loss = 0.0f64;
        for e in 0..n_exits {
            let w = self.config.exit_weights[e];
            self.heads[e].infer_into(&scratch.activations[e], &mut scratch.probs);
            scratch.probs.softmax_rows_inplace();
            // Loss and gradient: dL/dlogits = (p − onehot) · w.
            scratch.grad.copy_from(&scratch.probs);
            for (r, &label) in labels.iter().enumerate() {
                let p = scratch.probs.get(r, label).max(1e-12);
                total_loss += -(p as f64).ln() * w as f64;
                scratch.grad.set(r, label, scratch.grad.get(r, label) - 1.0);
            }
            scratch.grad.scale(w);
            // Heads have no ReLU, so the pre-activation argument is
            // never read; pass the probs buffer to satisfy the shape.
            self.heads[e].backward_scratch(
                &scratch.activations[e],
                &scratch.probs,
                &mut scratch.grad,
                update,
                &mut scratch.head_grads[e],
                &mut scratch.layer,
            );
        }

        // Backward through the trunk, adding each head's contribution at
        // its level.
        std::mem::swap(&mut scratch.grad, &mut scratch.head_grads[n_exits - 1]);
        for e in (0..n_exits).rev() {
            let input = if e == 0 {
                inputs
            } else {
                &scratch.activations[e - 1]
            };
            self.trunk[e].backward_scratch(
                input,
                &scratch.trunk_pre[e],
                &mut scratch.grad,
                update,
                &mut scratch.grad_in,
                &mut scratch.layer,
            );
            std::mem::swap(&mut scratch.grad, &mut scratch.grad_in);
            if e > 0 {
                // `grad` currently targets activation e-1; add the exit
                // gradient injected there.
                scratch.grad.axpy(1.0, &scratch.head_grads[e - 1]);
            }
        }
        total_loss / labels.len() as f64
    }

    /// [`Self::train_batch_parts`] using a caller-owned scratch instead
    /// of the model's embedded one — the entry point for parallel
    /// training fan-outs, where one warmed [`TrainScratch`] per worker
    /// serves every model that worker trains. Implemented as two
    /// pointer swaps around the embedded-scratch path, so the math (and
    /// its result, bit for bit) is identical.
    pub fn train_batch_parts_with(
        &mut self,
        inputs: &Matrix,
        labels: &[usize],
        scratch: &mut TrainScratch,
    ) -> f64 {
        std::mem::swap(&mut self.scratch, scratch);
        let loss = self.train_batch_parts(inputs, labels);
        std::mem::swap(&mut self.scratch, scratch);
        loss
    }

    /// Trains on `batch` for `epochs` passes; returns the final loss.
    pub fn train_epochs(&mut self, batch: &TrainBatch, epochs: usize) -> f64 {
        let mut loss = 0.0;
        for _ in 0..epochs {
            loss = self.train_batch(batch);
        }
        loss
    }

    /// Flattens all parameters (trunk then heads) into a vector.
    pub fn flatten_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in self.trunk.iter().chain(self.heads.iter()) {
            layer.append_params(&mut out);
        }
        out
    }

    /// Loads parameters produced by [`Self::flatten_params`] on a network
    /// of identical shape.
    ///
    /// # Panics
    /// Panics if the parameter count does not match.
    pub fn load_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.param_count(), "parameter count mismatch");
        let mut offset = 0;
        for layer in self.trunk.iter_mut().chain(self.heads.iter_mut()) {
            offset += layer.load_params(&params[offset..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs; any working learner must reach
    /// high accuracy quickly.
    fn blob_batch(rng: &mut Prng, n: usize, dim: usize) -> TrainBatch {
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let center = if label == 0 { -1.5 } else { 1.5 };
            for _ in 0..dim {
                data.push((center + rng.gauss() * 0.5) as f32);
            }
            labels.push(label);
        }
        TrainBatch {
            inputs: Matrix::from_slice(n, dim, &data),
            labels,
        }
    }

    #[test]
    fn learns_separable_blobs_at_every_exit() {
        let mut rng = Prng::new(42);
        let cfg = MlpConfig::small(8, 2);
        let mut net = EarlyExitMlp::new(cfg, &mut rng);
        let train = blob_batch(&mut rng, 64, 8);
        let test = blob_batch(&mut rng, 128, 8);
        let before = net.accuracy(&test.inputs, &test.labels, 1);
        let mut last_loss = f64::INFINITY;
        for _ in 0..30 {
            last_loss = net.train_batch(&train);
        }
        for exit in 0..net.num_exits() {
            let acc = net.accuracy(&test.inputs, &test.labels, exit);
            assert!(acc > 0.95, "exit {exit} accuracy {acc}");
        }
        assert!(last_loss < 0.2, "loss {last_loss}");
        let after = net.accuracy(&test.inputs, &test.labels, 1);
        assert!(after > before, "training must improve accuracy");
    }

    #[test]
    fn adam_learns_blobs_too() {
        let mut rng = Prng::new(44);
        let mut cfg = MlpConfig::small(8, 2);
        cfg.update = Some(Update::adam(0.01));
        let mut net = EarlyExitMlp::new(cfg, &mut rng);
        let train = blob_batch(&mut rng, 64, 8);
        let test = blob_batch(&mut rng, 128, 8);
        for _ in 0..60 {
            net.train_batch(&train);
        }
        let acc = net.accuracy(&test.inputs, &test.labels, 1);
        assert!(acc > 0.95, "adam accuracy {acc}");
    }

    #[test]
    fn training_is_nan_safe_under_extreme_inputs() {
        // Gradient clipping must keep the network finite even on
        // pathological feature magnitudes.
        let mut rng = Prng::new(45);
        let mut net = EarlyExitMlp::new(MlpConfig::small(4, 2), &mut rng);
        let data: Vec<f32> = (0..64)
            .map(|i| if i % 3 == 0 { 1e6 } else { -1e6 })
            .collect();
        let batch = TrainBatch {
            inputs: Matrix::from_slice(16, 4, &data),
            labels: (0..16).map(|i| i % 2).collect(),
        };
        for _ in 0..50 {
            let loss = net.train_batch(&batch);
            assert!(loss.is_finite(), "loss diverged");
        }
        for p in net.flatten_params() {
            assert!(p.is_finite(), "parameter became non-finite");
        }
        // Predictions still well-defined.
        let _ = net.predict(&batch.inputs, 1);
    }

    #[test]
    fn loss_decreases_monotonically_enough() {
        let mut rng = Prng::new(7);
        let mut net = EarlyExitMlp::new(MlpConfig::small(4, 3), &mut rng);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = i % 3;
            for d in 0..4 {
                let center = if d == c { 2.0 } else { 0.0 };
                data.push((center + rng.gauss() * 0.3) as f32);
            }
            labels.push(c);
        }
        let batch = TrainBatch {
            inputs: Matrix::from_slice(60, 4, &data),
            labels,
        };
        let first = net.train_batch(&batch);
        let last = net.train_epochs(&batch, 40);
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn adaptive_inference_exits_early_when_confident() {
        let mut rng = Prng::new(77);
        let mut net = EarlyExitMlp::new(MlpConfig::small(8, 2), &mut rng);
        let train = blob_batch(&mut rng, 64, 8);
        for _ in 0..40 {
            net.train_batch(&train);
        }
        let test = blob_batch(&mut rng, 128, 8);
        // Permissive gate: most samples exit at head 0.
        let relaxed = net.predict_adaptive(&test.inputs, 0.6);
        let early = relaxed.iter().filter(|(_, e)| *e == 0).count();
        assert!(early > 64, "only {early} early exits at 0.6");
        // Strict gate: nothing clears 1.0, everything falls through.
        let strict = net.predict_adaptive(&test.inputs, 1.01);
        assert!(strict.iter().all(|(_, e)| *e == net.num_exits() - 1));
        // Accuracy stays high under the permissive gate.
        let correct = relaxed
            .iter()
            .zip(&test.labels)
            .filter(|((p, _), l)| p == *l)
            .count();
        assert!(correct as f64 / test.labels.len() as f64 > 0.9);
    }

    #[test]
    fn params_round_trip_preserves_predictions() {
        let mut rng = Prng::new(9);
        let cfg = MlpConfig::small(6, 4);
        let mut a = EarlyExitMlp::new(cfg.clone(), &mut rng);
        let b = EarlyExitMlp::new(cfg, &mut rng);
        let batch = blob_batch(&mut rng, 16, 6);
        a.train_epochs(&batch, 5);
        let params = a.flatten_params();
        let mut b2 = b.clone();
        b2.load_params(&params);
        let pa = a.predict(&batch.inputs, 1);
        let pb = b2.predict(&batch.inputs, 1);
        assert_eq!(pa, pb);
    }

    /// The scratch-based inference entry points must bit-match their
    /// allocating counterparts at every exit, with dirty reused buffers.
    #[test]
    fn scratch_inference_matches_allocating_paths() {
        let mut rng = Prng::new(13);
        let mut net = EarlyExitMlp::new(MlpConfig::small(8, 3), &mut rng);
        let train = blob_batch(&mut rng, 48, 8);
        net.train_epochs(&train, 10);
        let test = blob_batch(&mut rng, 96, 8);
        let mut scratch = InferScratch::default();
        for exit in 0..net.num_exits() {
            let plain = net.predict(&test.inputs, exit);
            let fast = net.predict_with_scratch(&test.inputs, exit, &mut scratch);
            assert_eq!(plain, fast, "exit {exit}");
        }
        let feats = net.features(&test.inputs);
        let mut out = Matrix::from_slice(1, 1, &[3.0]);
        net.features_into(&test.inputs, &mut out);
        assert_eq!(feats, out);
    }

    #[test]
    fn features_have_first_layer_width() {
        let mut rng = Prng::new(3);
        let net = EarlyExitMlp::new(MlpConfig::small(8, 2), &mut rng);
        let batch = blob_batch(&mut rng, 4, 8);
        let f = net.features(&batch.inputs);
        assert_eq!(f.rows(), 4);
        assert_eq!(f.cols(), 32);
    }

    #[test]
    #[should_panic(expected = "one exit weight per trunk layer")]
    fn mismatched_exit_weights_panic() {
        let mut rng = Prng::new(1);
        EarlyExitMlp::new(
            MlpConfig {
                input_dim: 4,
                hidden: vec![8, 8],
                classes: 2,
                lr: 0.1,
                momentum: 0.9,
                exit_weights: vec![1.0],
                update: None,
            },
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "at least one trunk layer")]
    fn empty_trunk_panics() {
        let mut rng = Prng::new(1);
        EarlyExitMlp::new(
            MlpConfig {
                input_dim: 4,
                hidden: vec![],
                classes: 2,
                lr: 0.1,
                momentum: 0.9,
                exit_weights: vec![],
                update: None,
            },
            &mut rng,
        );
    }

    #[test]
    fn empty_batch_train_is_zero_loss() {
        let mut rng = Prng::new(2);
        let mut net = EarlyExitMlp::new(MlpConfig::small(4, 2), &mut rng);
        let batch = TrainBatch {
            inputs: Matrix::zeros(0, 4),
            labels: vec![],
        };
        assert_eq!(net.train_batch(&batch), 0.0);
        assert_eq!(net.accuracy(&batch.inputs, &batch.labels, 0), 0.0);
    }

    #[test]
    fn param_count_matches_architecture() {
        let mut rng = Prng::new(3);
        let net = EarlyExitMlp::new(
            MlpConfig {
                input_dim: 10,
                hidden: vec![8, 6],
                classes: 4,
                lr: 0.1,
                momentum: 0.9,
                exit_weights: vec![0.5, 1.0],
                update: None,
            },
            &mut rng,
        );
        // trunk: 10*8+8 + 8*6+6 ; heads: 8*4+4 + 6*4+4
        let expect = (10 * 8 + 8) + (8 * 6 + 6) + (8 * 4 + 4) + (6 * 4 + 4);
        assert_eq!(net.param_count(), expect);
        assert_eq!(net.flatten_params().len(), expect);
    }

    #[test]
    #[should_panic(expected = "exit out of range")]
    fn bad_exit_panics() {
        let mut rng = Prng::new(1);
        let net = EarlyExitMlp::new(MlpConfig::small(4, 2), &mut rng);
        let x = Matrix::zeros(1, 4);
        net.probabilities(&x, 5);
    }
}
