//! Parameter averaging across model versions.
//!
//! §3.3.2: when a job starts retraining a model while other concurrent
//! jobs have already retrained (or are retraining) the same model, AdaInf
//! initialises from the *average* of the current parameter values of the
//! different versions, citing \[26\] for the robustness benefit.

use crate::mlp::EarlyExitMlp;

/// Averages the flattened parameter vectors of several model versions.
///
/// Returns `None` when `versions` is empty or the lengths disagree (which
/// would mean the callers averaged architecturally different models — a
/// logic error surfaced to the caller rather than a panic because version
/// sets are assembled dynamically from in-flight jobs).
pub fn average_params(versions: &[Vec<f32>]) -> Option<Vec<f32>> {
    let first = versions.first()?;
    let n = first.len();
    if versions.iter().any(|v| v.len() != n) {
        return None;
    }
    let mut out = vec![0.0f32; n];
    for v in versions {
        for (o, x) in out.iter_mut().zip(v) {
            *o += x;
        }
    }
    let k = versions.len() as f32;
    for o in &mut out {
        *o /= k;
    }
    Some(out)
}

/// Convenience: averages live networks of identical architecture and loads
/// the result into `target`.
///
/// Returns `false` (leaving `target` untouched) when the shapes disagree.
pub fn average_into(target: &mut EarlyExitMlp, versions: &[&EarlyExitMlp]) -> bool {
    if versions.is_empty() {
        return false;
    }
    let flats: Vec<Vec<f32>> = versions.iter().map(|m| m.flatten_params()).collect();
    match average_params(&flats) {
        Some(avg) if avg.len() == target.param_count() => {
            target.load_params(&avg);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::mlp::{MlpConfig, TrainBatch};
    use adainf_simcore::Prng;

    #[test]
    fn average_params_is_elementwise_mean() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![3.0f32, 4.0, 5.0];
        assert_eq!(average_params(&[a, b]).unwrap(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(average_params(&[vec![1.0], vec![1.0, 2.0]]).is_none());
        assert!(average_params(&[]).is_none());
    }

    #[test]
    fn averaging_two_trained_versions_stays_reasonable() {
        let mut rng = Prng::new(21);
        let cfg = MlpConfig::small(6, 2);
        let base = EarlyExitMlp::new(cfg.clone(), &mut rng);

        // Two copies trained on the same separable blobs.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let l = i % 2;
            let c = if l == 0 { -1.5 } else { 1.5 };
            for _ in 0..6 {
                data.push((c + rng.gauss() * 0.4) as f32);
            }
            labels.push(l);
        }
        let batch = TrainBatch {
            inputs: Matrix::from_slice(80, 6, &data),
            labels: labels.clone(),
        };
        let mut v1 = base.clone();
        let mut v2 = base.clone();
        v1.train_epochs(&batch, 25);
        v2.train_epochs(&batch, 25);

        let mut merged = base.clone();
        assert!(average_into(&mut merged, &[&v1, &v2]));
        let acc = merged.accuracy(&batch.inputs, &labels, 1);
        assert!(acc > 0.9, "averaged accuracy {acc}");
    }
}
