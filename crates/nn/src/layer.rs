//! Dense layers with manual forward/backward passes.

use crate::matrix::Matrix;
use adainf_simcore::Prng;

/// The update rule applied by [`Dense::backward`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Update {
    /// Classic SGD with momentum: `v = m·v − lr·g ; w += v`.
    SgdMomentum {
        /// Learning rate.
        lr: f32,
        /// Velocity decay.
        momentum: f32,
    },
    /// Adam (Kingma & Ba): bias-corrected first/second moment estimates.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay (typ. 0.9).
        beta1: f32,
        /// Second-moment decay (typ. 0.999).
        beta2: f32,
        /// Numerical floor.
        eps: f32,
    },
}

impl Update {
    /// Adam with the textbook defaults at the given learning rate.
    pub fn adam(lr: f32) -> Update {
        Update::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// A fully-connected layer `y = x·W + b` with an optional ReLU.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Weight matrix, `in_dim × out_dim`.
    pub weights: Matrix,
    /// Bias vector, length `out_dim`.
    pub bias: Vec<f32>,
    /// Whether a ReLU follows the affine map.
    pub relu: bool,
    // First-moment buffers (SGD velocity / Adam m).
    vel_w: Matrix,
    vel_b: Vec<f32>,
    // Adam second-moment buffers, allocated on first Adam step.
    adam_v_w: Option<Matrix>,
    adam_v_b: Vec<f32>,
    // Adam step counter (bias correction).
    steps: u64,
}

/// Cached activations needed by the backward pass of one layer.
#[derive(Clone, Debug)]
pub struct DenseCache {
    /// The layer input.
    pub input: Matrix,
    /// Pre-activation output (before ReLU), used for the ReLU mask.
    pub pre: Matrix,
}

/// Reusable parameter-gradient buffers for [`Dense::backward_scratch`].
/// Holding one of these across SGD steps makes the backward pass free
/// of heap allocations in steady state.
#[derive(Clone, Debug, Default)]
pub struct GradScratch {
    grad_w: Matrix,
    grad_b: Vec<f32>,
}

impl Dense {
    /// Creates a He-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, rng: &mut Prng) -> Self {
        Dense {
            weights: Matrix::he_init(in_dim, out_dim, rng),
            bias: vec![0.0; out_dim],
            relu,
            vel_w: Matrix::zeros(in_dim, out_dim),
            vel_b: vec![0.0; out_dim],
            adam_v_w: None,
            adam_v_b: Vec::new(),
            steps: 0,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Forward pass; returns the activation and the cache for backward.
    pub fn forward(&self, input: &Matrix) -> (Matrix, DenseCache) {
        let mut pre = Matrix::default();
        let mut out = Matrix::default();
        self.forward_into(input, &mut pre, &mut out);
        (
            out,
            DenseCache {
                input: input.clone(),
                pre,
            },
        )
    }

    /// Forward pass writing the pre-activation into `pre` and the
    /// activation into `out`, both reshaped in place. Allocation-free
    /// once the buffers have warmed up; values match [`Self::forward`]
    /// exactly.
    pub fn forward_into(&self, input: &Matrix, pre: &mut Matrix, out: &mut Matrix) {
        input.matmul_into(&self.weights, pre);
        pre.add_row_vec(&self.bias);
        out.copy_from(pre);
        if self.relu {
            out.relu_inplace();
        }
    }

    /// Forward pass without caching (inference).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.infer_into(input, &mut out);
        out
    }

    /// Inference forward pass into a caller-owned buffer, through the
    /// fused [`Matrix::affine_into`] kernel — bias and ReLU are applied
    /// per output row inside the GEMM instead of as two further
    /// full-matrix passes. Bit-identical to the unfused pipeline.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        input.affine_into(&self.weights, &self.bias, self.relu, out);
    }

    /// Backward pass with SGD-momentum (kept as the common fast path).
    /// See [`Self::backward_with`] for pluggable update rules.
    pub fn backward(
        &mut self,
        cache: &DenseCache,
        grad_out: Matrix,
        lr: f32,
        momentum: f32,
    ) -> Matrix {
        self.backward_with(cache, grad_out, Update::SgdMomentum { lr, momentum })
    }

    /// Backward pass: consumes the gradient w.r.t. this layer's output,
    /// applies the given update rule, and returns the gradient w.r.t.
    /// the input. The gradient is averaged over the batch.
    pub fn backward_with(
        &mut self,
        cache: &DenseCache,
        mut grad_out: Matrix,
        update: Update,
    ) -> Matrix {
        let mut grad_in = Matrix::default();
        let mut scratch = GradScratch::default();
        self.backward_scratch(
            &cache.input,
            &cache.pre,
            &mut grad_out,
            update,
            &mut grad_in,
            &mut scratch,
        );
        grad_in
    }

    /// Allocation-free backward pass. `input`/`pre` are the forward
    /// activations (what a [`DenseCache`] holds), `grad_out` is the
    /// gradient w.r.t. this layer's output (mutated in place by the
    /// ReLU mask), `grad_in` receives the gradient w.r.t. the input,
    /// and `scratch` holds the reusable parameter-gradient buffers.
    /// Arithmetic and update order match [`Self::backward_with`]
    /// exactly, so results are bit-identical.
    pub fn backward_scratch(
        &mut self,
        input: &Matrix,
        pre: &Matrix,
        grad_out: &mut Matrix,
        update: Update,
        grad_in: &mut Matrix,
        scratch: &mut GradScratch,
    ) {
        if self.relu {
            grad_out.relu_backward_inplace(pre);
        }
        let batch = input.rows().max(1) as f32;
        // Gradient w.r.t. input, for the upstream layer (reads the
        // pre-update weights, so it must precede the optimizer step).
        grad_out.matmul_t_into(&self.weights, grad_in);
        // Raw weight-gradient sums; the batch-mean scaling and
        // robustness clamp are fused into the optimizer kernels below,
        // saving two full passes over the gradient buffer per step.
        let grad_w = &mut scratch.grad_w;
        input.t_matmul_into(grad_out, grad_w);
        // The bias gradient is a short vector — scale and clamp in
        // place, exactly as before.
        let grad_b = &mut scratch.grad_b;
        grad_out.col_sums_into(grad_b);
        for g in grad_b.iter_mut() {
            *g = (*g / batch).clamp(-5.0, 5.0);
        }
        self.apply_update(update, &scratch.grad_w, 1.0 / batch, &scratch.grad_b);
    }

    /// Applies one optimizer step: `grad_w` holds *raw* gradient sums
    /// (scaled by `inv_batch` and clamped inside the fused kernels),
    /// `grad_b` is already batch-averaged and clamped.
    fn apply_update(
        &mut self,
        update: Update,
        grad_w: &Matrix,
        inv_batch: f32,
        grad_b: &[f32],
    ) {
        match update {
            Update::SgdMomentum { lr, momentum } => {
                // Momentum update: v = m·v − lr·g ; w += v.
                crate::matrix::momentum_step(
                    self.weights.data_mut(),
                    self.vel_w.data_mut(),
                    grad_w.data(),
                    inv_batch,
                    5.0,
                    lr,
                    momentum,
                );
                for ((b, v), g) in
                    self.bias.iter_mut().zip(&mut self.vel_b).zip(grad_b)
                {
                    *v = momentum * *v - lr * g;
                    *b += *v;
                }
            }
            Update::Adam { lr, beta1, beta2, eps } => {
                self.steps += 1;
                if self.adam_v_b.len() != self.bias.len() {
                    self.adam_v_b = vec![0.0; self.bias.len()];
                }
                let t = self.steps as f32;
                let c1 = 1.0 - beta1.powf(t);
                let c2 = 1.0 - beta2.powf(t);
                let (rows, cols) = (self.weights.rows(), self.weights.cols());
                let v_w = self.adam_v_w.get_or_insert_with(|| Matrix::zeros(rows, cols));
                crate::matrix::adam_step(
                    self.weights.data_mut(),
                    self.vel_w.data_mut(),
                    v_w.data_mut(),
                    grad_w.data(),
                    inv_batch,
                    5.0,
                    lr,
                    beta1,
                    beta2,
                    eps,
                    c1,
                    c2,
                );
                for ((b, m), (v, g)) in self
                    .bias
                    .iter_mut()
                    .zip(&mut self.vel_b)
                    .zip(self.adam_v_b.iter_mut().zip(grad_b))
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    *b -= lr * (*m / c1) / ((*v / c2).sqrt() + eps);
                }
            }
        }
    }

    /// Flattens the parameters into `out` (used by parameter averaging).
    pub fn append_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weights.data());
        out.extend_from_slice(&self.bias);
    }

    /// Loads parameters from a flat slice, returning how many were read.
    pub fn load_params(&mut self, params: &[f32]) -> usize {
        let w = self.weights.data_mut();
        let nw = w.len();
        w.copy_from_slice(&params[..nw]);
        let nb = self.bias.len();
        self.bias.copy_from_slice(&params[nw..nw + nb]);
        nw + nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_values() {
        let mut rng = Prng::new(1);
        let mut layer = Dense::new(3, 2, false, &mut rng);
        // Overwrite with known params.
        layer
            .weights
            .data_mut()
            .copy_from_slice(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        layer.bias = vec![0.5, -0.5];
        let x = Matrix::from_slice(1, 3, &[1.0, 2.0, 3.0]);
        let y = layer.infer(&x);
        // y0 = 1*1 + 2*0 + 3*1 + 0.5 = 4.5 ; y1 = 0 + 2 + 3 − 0.5 = 4.5
        assert_eq!(y.data(), &[4.5, 4.5]);
    }

    #[test]
    fn gradient_check_single_layer() {
        // Numerical gradient check of dLoss/dW for a tiny layer with
        // L = sum(y), so dL/dy = 1.
        let mut rng = Prng::new(2);
        let layer = Dense::new(2, 2, true, &mut rng);
        let x = Matrix::from_slice(2, 2, &[0.3, -0.7, 1.2, 0.4]);
        let eps = 1e-3;

        let loss = |l: &Dense| -> f32 { l.infer(&x).data().iter().sum() };

        // Analytic: run backward with grad_out = ones and lr so small the
        // update exposes the gradient: after update w' = w − lr·g, so
        // g ≈ (w − w')/lr. Use zero momentum.
        let mut l2 = layer.clone();
        let (_, cache) = l2.forward(&x);
        let ones = Matrix::from_slice(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        let lr = 1e-4;
        let w_before = l2.weights.clone();
        l2.backward(&cache, ones, lr, 0.0);
        for r in 0..2 {
            for c in 0..2 {
                let analytic = (w_before.get(r, c) - l2.weights.get(r, c)) / lr;
                // Numerical gradient (batch-mean convention: divide by batch).
                let mut lp = layer.clone();
                lp.weights.set(r, c, w_before.get(r, c) + eps);
                let mut lm = layer.clone();
                lm.weights.set(r, c, w_before.get(r, c) - eps);
                let numeric = (loss(&lp) - loss(&lm)) / (2.0 * eps) / 2.0;
                assert!(
                    (analytic - numeric).abs() < 0.02,
                    "grad mismatch at ({r},{c}): {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn adam_converges_on_a_linear_target() {
        // Fit y = sum(x) with a single linear layer under Adam.
        let mut rng = Prng::new(5);
        let mut layer = Dense::new(3, 1, false, &mut rng);
        let mut last = f32::INFINITY;
        for step in 0..400 {
            let x = Matrix::from_slice(
                4,
                3,
                &(0..12)
                    .map(|i| ((i * 7 + step) % 11) as f32 / 11.0 - 0.5)
                    .collect::<Vec<_>>(),
            );
            let target: Vec<f32> = (0..4)
                .map(|r| x.row(r).iter().sum::<f32>())
                .collect();
            let (y, cache) = layer.forward(&x);
            let mut grad = Matrix::zeros(4, 1);
            let mut loss = 0.0;
            for (r, &tgt) in target.iter().enumerate() {
                let e = y.get(r, 0) - tgt;
                loss += e * e;
                grad.set(r, 0, 2.0 * e);
            }
            last = loss;
            layer.backward_with(&cache, grad, Update::adam(0.02));
        }
        assert!(last < 0.01, "adam did not converge: {last}");
        // Weights near the true [1, 1, 1].
        for c in 0..3 {
            assert!((layer.weights.get(c, 0) - 1.0).abs() < 0.15);
        }
    }

    #[test]
    fn params_round_trip() {
        let mut rng = Prng::new(3);
        let layer = Dense::new(4, 3, true, &mut rng);
        let mut flat = Vec::new();
        layer.append_params(&mut flat);
        assert_eq!(flat.len(), layer.param_count());
        let mut other = Dense::new(4, 3, true, &mut rng);
        let read = other.load_params(&flat);
        assert_eq!(read, flat.len());
        assert_eq!(other.weights.data(), layer.weights.data());
        assert_eq!(other.bias, layer.bias);
    }
}
