//! Property tests pinning the blocked/unrolled GEMM kernels to the
//! naive triple-loop reference, bit for bit.
//!
//! The `_into` kernels unroll across *independent* output elements, so
//! every output element must still receive its contributions in plain
//! ascending-k order — exactly what the reference below computes. Any
//! reassociation (e.g. multi-lane partial sums of one dot product)
//! would change low-order bits and fail these tests. Shapes are drawn
//! past the unroll widths (8-wide k / j, 4-wide r) so the blocked
//! bodies, the tails, and the degenerate 1×1 cases are all exercised.

use adainf_nn::Matrix;
use adainf_simcore::Prng;
use proptest::{prop_assert, proptest};

fn random_matrix(rows: usize, cols: usize, rng: &mut Prng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gauss() as f32).collect();
    Matrix::from_slice(rows, cols, &data)
}

/// Plain i→j→k triple loop: the seed engine's accumulation order.
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn assert_bit_identical(label: &str, got: &Matrix, want: &Matrix) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert!(got.rows() == want.rows(), "{} rows", label);
    prop_assert!(got.cols() == want.cols(), "{} cols", label);
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        prop_assert!(
            g.to_bits() == w.to_bits(),
            "{} element {}: {} != {}",
            label,
            i,
            g,
            w
        );
    }
    Ok(())
}

proptest! {
    fn matmul_into_matches_reference(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = Prng::new(seed);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let want = reference_matmul(&a, &b);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        assert_bit_identical("matmul_into", &out, &want)?;
        // The allocating form must agree with its _into twin.
        assert_bit_identical("matmul", &a.matmul(&b), &want)?;
    }

    fn t_matmul_into_matches_reference(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = Prng::new(seed);
        // selfᵀ (k×m over m×k storage) × other (m×n): contraction over
        // the shared row index, ascending — same order as the reference
        // over materialised aᵀ.
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(m, n, &mut rng);
        let mut at = Matrix::zeros(k, m);
        for i in 0..m {
            for j in 0..k {
                at.set(j, i, a.get(i, j));
            }
        }
        let want = reference_matmul(&at, &b);
        let mut out = Matrix::zeros(0, 0);
        a.t_matmul_into(&b, &mut out);
        assert_bit_identical("t_matmul_into", &out, &want)?;
    }

    fn matmul_t_into_matches_reference(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = Prng::new(seed);
        // self (m×k) × otherᵀ (k×n over n×k storage).
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(n, k, &mut rng);
        let mut bt = Matrix::zeros(k, n);
        for i in 0..n {
            for j in 0..k {
                bt.set(j, i, b.get(i, j));
            }
        }
        let want = reference_matmul(&a, &bt);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_t_into(&b, &mut out);
        assert_bit_identical("matmul_t_into", &out, &want)?;
    }
}
