//! The application catalogue (§4, Fig 17).
//!
//! Eight default applications: the video-surveillance application of §2,
//! six applications from Scrooge \[10\], and the social-media application
//! from InferLine \[27\] with a more complex DAG. For the varying-#apps
//! experiment (Figs 18b/19b), six further applications from Nexus \[23\]
//! are available (they are listed verbatim in §4).
//!
//! SLOs are drawn from the `[400, 600]` ms range of \[10\]; per-node drift
//! profiles follow the paper's observations (object detection essentially
//! stable, fine-grained recognition tasks drifting more).

use crate::dag::{AppSpec, NodeSpec};
use adainf_driftgen::DriftProfile;
use adainf_modelzoo::zoo;
use adainf_simcore::SimDuration;

fn node(
    name: &str,
    profile: adainf_modelzoo::ModelProfile,
    classes: usize,
    drift: DriftProfile,
    upstream: Option<usize>,
) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        profile,
        classes,
        drift,
        upstream,
    }
}

/// App 0 — the video surveillance application of Fig 1.
pub fn video_surveillance(id: u32) -> AppSpec {
    AppSpec::new(
        id,
        "video surveillance",
        SimDuration::from_millis(400),
        vec![
            node("object detection", zoo::tiny_yolo_v3(), 3, DriftProfile::Stable, None),
            node("vehicle type recognition", zoo::mobilenet_v2(), 6, DriftProfile::Severe, Some(0)),
            node("person activity recognition", zoo::shufflenet(), 5, DriftProfile::Moderate, Some(0)),
        ],
    )
}

/// App 1 — traffic monitoring \[10\].
pub fn traffic_monitoring(id: u32) -> AppSpec {
    AppSpec::new(
        id,
        "traffic monitoring",
        SimDuration::from_millis(450),
        vec![
            node("vehicle detection", zoo::ssdlite(), 3, DriftProfile::Mild, None),
            node("vehicle classification", zoo::resnet18(), 8, DriftProfile::Severe, Some(0)),
        ],
    )
}

/// App 2 — face authentication pipeline \[10\].
pub fn face_authentication(id: u32) -> AppSpec {
    AppSpec::new(
        id,
        "face authentication",
        SimDuration::from_millis(500),
        vec![
            node("face detection", zoo::mobilenet_v2(), 2, DriftProfile::Stable, None),
            node("face recognition", zoo::resnet18(), 12, DriftProfile::Mild, Some(0)),
        ],
    )
}

/// App 3 — voice assistant \[10\].
pub fn voice_assistant(id: u32) -> AppSpec {
    AppSpec::new(
        id,
        "voice assistant",
        SimDuration::from_millis(550),
        vec![
            node("speech recognition", zoo::audio_net(), 10, DriftProfile::Moderate, None),
            node("intent classification", zoo::intent_net(), 8, DriftProfile::Moderate, Some(0)),
        ],
    )
}

/// App 4 — drone footage analysis \[10\].
pub fn drone_footage(id: u32) -> AppSpec {
    AppSpec::new(
        id,
        "drone footage analysis",
        SimDuration::from_millis(600),
        vec![
            node("object detection", zoo::tiny_yolo_v3(), 4, DriftProfile::Mild, None),
            node("land-cover recognition", zoo::shufflenet(), 6, DriftProfile::Moderate, Some(0)),
            node("target recognition", zoo::mobilenet_v2(), 7, DriftProfile::Mild, Some(0)),
        ],
    )
}

/// App 5 — retail shelf analytics \[10\].
pub fn retail_analytics(id: u32) -> AppSpec {
    AppSpec::new(
        id,
        "retail analytics",
        SimDuration::from_millis(500),
        vec![
            node("shelf detection", zoo::ssdlite(), 3, DriftProfile::Mild, None),
            node("product recognition", zoo::mobilenet_v2(), 12, DriftProfile::Severe, Some(0)),
        ],
    )
}

/// App 6 — licence-plate reading \[10\].
pub fn license_plate(id: u32) -> AppSpec {
    AppSpec::new(
        id,
        "license plate reading",
        SimDuration::from_millis(450),
        vec![
            node("plate detection", zoo::ssdlite(), 2, DriftProfile::Stable, None),
            node("text recognition", zoo::stn_ocr(), 10, DriftProfile::Mild, Some(0)),
        ],
    )
}

/// App 7 — the social media application \[27\] with the complex DAG of §4:
/// image recognition (tag suggestion) and a safety classifier over the
/// linked image, plus language identification feeding translation.
pub fn social_media(id: u32) -> AppSpec {
    AppSpec::new(
        id,
        "social media",
        SimDuration::from_millis(600),
        vec![
            node("image recognition", zoo::image_recognizer(), 10, DriftProfile::Moderate, None),
            node("safety classification", zoo::nsfw_net(), 2, DriftProfile::Mild, Some(0)),
            node("person tag suggestion", zoo::mobilenet_v2(), 12, DriftProfile::Moderate, Some(0)),
            node("language identification", zoo::lang_id(), 6, DriftProfile::Mild, None),
            node("translation", zoo::translator(), 8, DriftProfile::Mild, Some(3)),
        ],
    )
}

/// The eight default applications of §4.
pub fn default_apps() -> Vec<AppSpec> {
    vec![
        video_surveillance(0),
        traffic_monitoring(1),
        face_authentication(2),
        voice_assistant(3),
        drone_footage(4),
        retail_analytics(5),
        license_plate(6),
        social_media(7),
    ]
}

/// The six extension applications from Nexus \[23\], quoted in §4.
pub fn extension_apps() -> Vec<AppSpec> {
    vec![
        // Analyzing video games: SSDLite → STN-OCR + ResNet18.
        AppSpec::new(
            8,
            "video game analysis",
            SimDuration::from_millis(500),
            vec![
                node("object detection", zoo::ssdlite(), 5, DriftProfile::Mild, None),
                node("text recognition", zoo::stn_ocr(), 10, DriftProfile::Mild, Some(0)),
                node("object recognition", zoo::resnet18(), 9, DriftProfile::Moderate, Some(0)),
            ],
        ),
        // Rating dance performance: TinyYOLOv3 → ShuffleNet.
        AppSpec::new(
            9,
            "dance performance rating",
            SimDuration::from_millis(450),
            vec![
                node("person detection", zoo::tiny_yolo_v3(), 2, DriftProfile::Stable, None),
                node("pose recognition", zoo::shufflenet(), 8, DriftProfile::Moderate, Some(0)),
            ],
        ),
        // Billboard response estimation: SSDLite → MobileNetV2 + ResNet18.
        AppSpec::new(
            10,
            "billboard response estimation",
            SimDuration::from_millis(550),
            vec![
                node("object detection", zoo::ssdlite(), 3, DriftProfile::Mild, None),
                node("face recognition", zoo::mobilenet_v2(), 10, DriftProfile::Mild, Some(0)),
                node("gaze recognition", zoo::resnet18(), 5, DriftProfile::Moderate, Some(0)),
            ],
        ),
        // Bike-rack occupancy on buses: TinyYOLOv3 only.
        AppSpec::new(
            11,
            "bike-rack occupancy",
            SimDuration::from_millis(400),
            vec![node("object detection", zoo::tiny_yolo_v3(), 3, DriftProfile::Mild, None)],
        ),
        // Amber-alert vehicle matching: STN-OCR + SSDLite → ResNet18.
        AppSpec::new(
            12,
            "amber alert matching",
            SimDuration::from_millis(500),
            vec![
                node("text recognition", zoo::stn_ocr(), 10, DriftProfile::Mild, None),
                node("object detection", zoo::ssdlite(), 3, DriftProfile::Mild, None),
                node("make/model recognition", zoo::resnet18(), 12, DriftProfile::Severe, Some(1)),
            ],
        ),
        // Corporate logo placement: TinyYOLOv3 → MobileNetV2 + ShuffleNet.
        AppSpec::new(
            13,
            "logo placement rating",
            SimDuration::from_millis(600),
            vec![
                node("object detection", zoo::tiny_yolo_v3(), 3, DriftProfile::Stable, None),
                node("icon recognition", zoo::mobilenet_v2(), 9, DriftProfile::Moderate, Some(0)),
                node("pose recognition", zoo::shufflenet(), 8, DriftProfile::Mild, Some(0)),
            ],
        ),
    ]
}

/// The first `n` applications (defaults first, then extensions),
/// re-numbered contiguously. Supports `1..=14`.
///
/// # Panics
/// Panics if `n` is 0 or above 14.
pub fn apps_for_count(n: usize) -> Vec<AppSpec> {
    assert!((1..=14).contains(&n), "supported app counts are 1..=14");
    let mut all = default_apps();
    all.extend(extension_apps());
    all.truncate(n);
    for (i, app) in all.iter_mut().enumerate() {
        app.id = i as u32;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalogue_has_eight_apps() {
        let apps = default_apps();
        assert_eq!(apps.len(), 8);
        for (i, app) in apps.iter().enumerate() {
            assert_eq!(app.id, i as u32);
            let slo = app.slo.as_millis_f64();
            assert!((400.0..=600.0).contains(&slo), "{} slo {slo}", app.name);
        }
    }

    #[test]
    fn extensions_bring_total_to_fourteen() {
        assert_eq!(extension_apps().len(), 6);
        let all = apps_for_count(14);
        assert_eq!(all.len(), 14);
        assert_eq!(all[13].id, 13);
    }

    #[test]
    fn social_media_has_complex_dag() {
        let app = social_media(7);
        assert_eq!(app.num_models(), 5);
        // Two roots (image branch, text branch).
        let roots = app.nodes.iter().filter(|n| n.upstream.is_none()).count();
        assert_eq!(roots, 2);
        assert!(app.leaves().len() >= 3);
    }

    #[test]
    fn surveillance_drift_matches_observations() {
        let app = video_surveillance(0);
        assert_eq!(app.nodes[0].drift, DriftProfile::Stable);
        assert_eq!(app.nodes[1].drift, DriftProfile::Severe);
        assert_eq!(app.nodes[2].drift, DriftProfile::Moderate);
    }

    #[test]
    #[should_panic(expected = "supported app counts")]
    fn zero_apps_rejected() {
        apps_for_count(0);
    }

    #[test]
    fn every_app_is_well_formed() {
        for app in apps_for_count(14) {
            // At least one root and one leaf; topological parent order.
            assert!(app.nodes.iter().any(|n| n.upstream.is_none()), "{}", app.name);
            assert!(!app.leaves().is_empty(), "{}", app.name);
            for (i, n) in app.nodes.iter().enumerate() {
                if let Some(up) = n.upstream {
                    assert!(up < i);
                }
                assert!(n.classes >= 2, "{}: {}", app.name, n.name);
                assert!(n.profile.num_layers() >= 2);
            }
            // Cost aggregation is strictly positive and finite.
            let c = app.full_structure_cost();
            assert!(c.flops_per_sample > 0.0 && c.flops_per_sample.is_finite());
            assert!(c.param_bytes > 0.0);
        }
    }

    #[test]
    fn app_ids_are_contiguous_for_every_count() {
        for n in 1..=14 {
            let apps = apps_for_count(n);
            assert_eq!(apps.len(), n);
            for (i, a) in apps.iter().enumerate() {
                assert_eq!(a.id, i as u32);
            }
        }
    }

    #[test]
    fn single_model_app_exists() {
        // §1: "AdaInf is also applicable to single-model applications" —
        // the bike-rack app is single-model.
        let apps = apps_for_count(14);
        assert!(apps.iter().any(|a| a.num_models() == 1));
    }
}
