//! # adainf-apps
//!
//! The multi-model applications of the paper: DAG specifications
//! ([`dag::AppSpec`]), the application catalogue of §4/Fig 17
//! ([`catalog`]) — eight default applications plus the six extension
//! applications used by the varying-#apps experiments — and the runtime
//! state of a deployed application ([`runtime::AppRuntime`]: one drifting
//! task stream and one trainable model per DAG node, plus the
//! application's arrival trace).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod dag;
pub mod runtime;

pub use catalog::{default_apps, extension_apps, apps_for_count};
pub use dag::{AppSpec, NodeSpec};
pub use runtime::AppRuntime;
