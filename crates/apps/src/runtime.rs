//! Runtime state of a deployed application.
//!
//! An [`AppRuntime`] owns, per DAG node, the drifting task stream (the
//! node's live data) and the trainable model instance serving it, plus
//! the application's request-arrival trace. It manages the per-period
//! life-cycle: at each period boundary the previous period's requests
//! (with golden labels) become the new retraining pool (§3.2), the
//! streams take their drift step, and fresh evaluation sets are drawn.
//!
//! Accuracy evaluation is cached per `(model version, period)` so the
//! harness can score millions of requests without re-running the head on
//! every job.

use crate::dag::AppSpec;
use adainf_driftgen::{ArrivalTrace, LabeledSamples, RetrainPool, TaskStream, TaskStreamConfig};
use adainf_driftgen::workload::ArrivalConfig;
use adainf_modelzoo::head::HEAD_EXITS;
use adainf_modelzoo::TrainableModel;
use adainf_simcore::{Prng, SimTime};

/// Samples drawn per node per period as the retraining pool (stand-in for
/// "the inference requests collected during the previous time period").
pub const DEFAULT_POOL_SIZE: usize = 1500;

/// Evaluation-set size per node per period.
pub const EVAL_SIZE: usize = 400;

/// Live state of one application on the edge server.
pub struct AppRuntime {
    /// The application's DAG specification.
    pub spec: AppSpec,
    /// One trainable model per DAG node.
    pub models: Vec<TrainableModel>,
    /// One drifting task stream per DAG node.
    pub streams: Vec<TaskStream>,
    /// One retraining pool per DAG node (refreshed each period).
    pub pools: Vec<RetrainPool>,
    /// The application's request-arrival trace.
    pub arrivals: ArrivalTrace,
    /// Per-node samples of the *previous* period's training data — the
    /// "old training samples" the drift detector compares against (§3.2).
    old_samples: Vec<LabeledSamples>,
    /// Per-node held-out samples aligned with the *current* pool's
    /// distribution (promoted to `old_ref` at the next boundary).
    ref_samples: Vec<LabeledSamples>,
    /// Per-node held-out samples aligned with `old_samples` — the
    /// distribution the model was last retrained on. Never trained on:
    /// the drift detector's drift-free counterfactual (tail accuracy on
    /// these is what the new pool's tail is compared against, avoiding
    /// train-set memorisation bias).
    old_ref: Vec<LabeledSamples>,
    /// Per-node evaluation sets for the current period.
    eval_sets: Vec<LabeledSamples>,
    /// Initial full-structure accuracy `I_m` per node (§3.2).
    initial_accuracy: Vec<f64>,
    /// Per-node accuracy cache: (trained-sample bucket, period) →
    /// accuracy per head exit. Keyed by `trained_samples / 256` rather
    /// than the raw version so that incremental retraining (thousands of
    /// tiny slices per period) re-evaluates only every ~256 consumed
    /// samples — accuracy moves smoothly in between.
    acc_cache: Vec<(u64, u64, [f64; HEAD_EXITS])>,
    /// Current period index.
    period: u64,
    /// Retraining pool size per period.
    pool_size: usize,
}

impl AppRuntime {
    /// Deploys `spec`: builds streams and models, trains every model on
    /// initial data (the "first 40 % of the dataset" role, §2), and draws
    /// the first pools and evaluation sets.
    pub fn new(spec: AppSpec, arrival: ArrivalConfig, pool_size: usize, root: &Prng) -> Self {
        let mut rng = root.split(0x0A11_0000 ^ spec.id as u64);
        let mut models = Vec::with_capacity(spec.nodes.len());
        let mut streams = Vec::with_capacity(spec.nodes.len());
        for (i, nspec) in spec.nodes.iter().enumerate() {
            let (p, m) = nspec.drift.intensities();
            let stream = TaskStream::new(
                TaskStreamConfig::new(
                    nspec.name.clone(),
                    nspec.classes,
                    (spec.id as u64) << 16 | i as u64,
                )
                .with_drift(p, m),
                root,
            );
            models.push(TrainableModel::new(nspec.profile.clone(), nspec.classes, &mut rng));
            streams.push(stream);
        }
        let arrivals = ArrivalTrace::new(arrival, spec.id as u64, root);
        let n = spec.nodes.len();
        let mut rt = AppRuntime {
            spec,
            models,
            streams,
            pools: (0..n).map(|_| RetrainPool::empty()).collect(),
            arrivals,
            old_samples: Vec::new(),
            ref_samples: Vec::new(),
            old_ref: Vec::new(),
            eval_sets: Vec::new(),
            initial_accuracy: vec![0.0; n],
            acc_cache: vec![(u64::MAX, u64::MAX, [0.0; HEAD_EXITS]); n],
            period: 0,
            pool_size,
        };
        rt.initial_train();
        rt
    }

    /// Convenience constructor with default arrival/pool settings.
    pub fn with_defaults(spec: AppSpec, root: &Prng) -> Self {
        AppRuntime::new(spec, ArrivalConfig::default(), DEFAULT_POOL_SIZE, root)
    }

    fn initial_train(&mut self) {
        for i in 0..self.models.len() {
            let train = self.streams[i].sample(700);
            self.models[i].train_slice(&train, 12);
            let eval = self.streams[i].sample(EVAL_SIZE);
            self.initial_accuracy[i] =
                self.models[i].accuracy_on(&eval, self.models[i].profile.full_cut());
            self.old_samples.push(train);
            self.ref_samples.push(self.streams[i].sample(600));
            self.old_ref.push(self.streams[i].sample(600));
            self.eval_sets.push(eval);
            // Period-0 pool: the initial data is the "previous" data.
            self.pools[i] = RetrainPool::new(self.streams[i].sample(self.pool_size));
        }
    }

    /// Current period index.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Initial full-structure accuracy `I_m` of node `i`.
    pub fn initial_accuracy(&self, node: usize) -> f64 {
        self.initial_accuracy[node]
    }

    /// The previous period's training samples of node `i` (drift-detector
    /// comparison basis).
    pub fn old_samples(&self, node: usize) -> &LabeledSamples {
        &self.old_samples[node]
    }

    /// Held-out samples from the distribution the model was last
    /// retrained on (never trained on) — the drift detector's drift-free
    /// counterfactual.
    pub fn ref_samples(&self, node: usize) -> &LabeledSamples {
        &self.old_ref[node]
    }

    /// The current evaluation set of node `i`.
    pub fn eval_set(&self, node: usize) -> &LabeledSamples {
        &self.eval_sets[node]
    }

    /// Advances to the next period: the current pools' data becomes the
    /// "old samples", streams drift, and new pools/eval sets are drawn
    /// from the new distribution (the pool lags one period, as retraining
    /// data is always the previous period's requests).
    pub fn advance_period(&mut self) {
        self.period += 1;
        for i in 0..self.streams.len() {
            // New pool drawn from the distribution requests just lived in,
            // plus a held-out reference set from the same distribution.
            let pool_samples = self.streams[i].sample(self.pool_size);
            self.old_ref[i] = std::mem::replace(
                &mut self.ref_samples[i],
                self.streams[i].sample(600),
            );
            self.old_samples[i] = self.pools[i].samples().clone();
            self.pools[i] = RetrainPool::new(pool_samples);
            self.streams[i].advance_period();
            self.eval_sets[i] = self.streams[i].sample(EVAL_SIZE);
        }
    }

    /// Accuracy of node `i` at structure cut `cut`, on the current
    /// period's evaluation set, cached per (model version, period).
    pub fn accuracy(&mut self, node: usize, cut: usize) -> f64 {
        let bucket = self.models[node].trained_samples() / 256;
        let (cb, cp, cached) = self.acc_cache[node];
        let exit = self.models[node].head_exit_for_cut(cut);
        if cb == bucket && cp == self.period {
            return cached[exit];
        }
        let mut accs = [0.0; HEAD_EXITS];
        // Evaluate each distinct head exit once.
        let profile_cuts: Vec<usize> = {
            // Find a representative cut per exit.
            let l = self.models[node].profile.num_layers();
            (0..HEAD_EXITS)
                .map(|e| ((e + 1) * l).div_ceil(HEAD_EXITS).saturating_sub(1))
                .collect()
        };
        for (e, &c) in profile_cuts.iter().enumerate() {
            accs[e] = self.models[node].accuracy_on(&self.eval_sets[node], c);
        }
        self.acc_cache[node] = (bucket, self.period, accs);
        accs[exit]
    }

    /// Requests arriving for this application in the session at `t`.
    pub fn requests_in_session(&mut self, t: SimTime) -> u32 {
        self.arrivals.requests_in_session(t)
    }

    /// Label distribution (priors) of node `i`'s stream — the Fig 6
    /// drift signal.
    pub fn label_distribution(&self, node: usize) -> Vec<f64> {
        self.streams[node].priors().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn surveillance_runtime() -> AppRuntime {
        let root = Prng::new(2024);
        AppRuntime::new(
            catalog::video_surveillance(0),
            ArrivalConfig::default(),
            600,
            &root,
        )
    }

    #[test]
    fn initial_training_reaches_high_accuracy() {
        let mut rt = surveillance_runtime();
        for node in 0..3 {
            let acc = rt.accuracy(node, rt.spec.nodes[node].profile.full_cut());
            assert!(acc > 0.82, "node {node} initial accuracy {acc}");
            assert!((rt.initial_accuracy(node) - acc).abs() < 0.12);
        }
    }

    #[test]
    fn drifted_severe_node_loses_accuracy_without_retraining() {
        let mut rt = surveillance_runtime();
        let cut = rt.spec.nodes[1].profile.full_cut();
        let before = rt.accuracy(1, cut);
        for _ in 0..6 {
            rt.advance_period();
        }
        let after = rt.accuracy(1, cut);
        assert!(
            after < before - 0.05,
            "severe-drift node should decay: {before} -> {after}"
        );
    }

    #[test]
    fn stable_node_holds_accuracy() {
        let mut rt = surveillance_runtime();
        let cut = rt.spec.nodes[0].profile.full_cut();
        let before = rt.accuracy(0, cut);
        for _ in 0..6 {
            rt.advance_period();
        }
        let after = rt.accuracy(0, cut);
        assert!(
            after > before - 0.06,
            "stable node should hold: {before} -> {after}"
        );
    }

    #[test]
    fn retraining_from_pool_recovers_accuracy() {
        let mut rt = surveillance_runtime();
        let cut = rt.spec.nodes[1].profile.full_cut();
        for _ in 0..5 {
            rt.advance_period();
        }
        let stale = rt.accuracy(1, cut);
        // Consume the pool in slices, as incremental retraining would.
        for _ in 0..20 {
            let batch = rt.pools[1].take(32);
            if batch.is_empty() {
                break;
            }
            rt.models[1].train_slice(&batch, 2);
        }
        let retrained = rt.accuracy(1, cut);
        assert!(
            retrained > stale,
            "retraining should help: {stale} -> {retrained}"
        );
    }

    #[test]
    fn accuracy_cache_tracks_version_and_period() {
        let mut rt = surveillance_runtime();
        let cut = rt.spec.nodes[1].profile.full_cut();
        let a = rt.accuracy(1, cut);
        let b = rt.accuracy(1, cut);
        assert_eq!(a, b, "cached result must be identical");
        // Train past the 256-sample refresh bucket.
        for _ in 0..6 {
            let batch = rt.pools[1].take(64);
            rt.models[1].train_slice(&batch, 1);
        }
        // New bucket → re-evaluates (value may or may not change, but
        // the call must not panic and must return a valid probability).
        let c = rt.accuracy(1, cut);
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn pools_refresh_each_period() {
        let mut rt = surveillance_runtime();
        rt.pools[0].take(600);
        assert_eq!(rt.pools[0].remaining(), 0);
        rt.advance_period();
        assert_eq!(rt.pools[0].remaining(), 600);
        assert_eq!(rt.period(), 1);
    }

    #[test]
    fn all_catalog_apps_deploy() {
        let root = Prng::new(7);
        for spec in catalog::apps_for_count(14) {
            let name = spec.name.clone();
            let rt = AppRuntime::new(spec, ArrivalConfig::default(), 100, &root);
            assert!(!rt.models.is_empty(), "{name} deployed no models");
        }
    }
}
