//! Application DAG specifications.
//!
//! A multi-model application is "several DNN models organized in a
//! directed acyclic graph" (§1, Fig 1): each node runs a model whose input
//! is either the raw stream input (roots) or the output of an upstream
//! model. Since every node has at most one upstream model in all of the
//! paper's applications (Fig 17), the DAG is stored as a parent pointer
//! per node; nodes are kept in topological order by construction.

use adainf_driftgen::DriftProfile;
use adainf_gpusim::StructureCost;
use adainf_modelzoo::ModelProfile;
use adainf_simcore::SimDuration;

/// One model node of an application DAG.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Task name ("vehicle type recognition").
    pub name: String,
    /// The backbone cost profile the node runs.
    pub profile: ModelProfile,
    /// Classes of the node's classification task.
    pub classes: usize,
    /// Drift intensity of the node's data (Obs. 2–3).
    pub drift: DriftProfile,
    /// Index of the upstream node whose output feeds this node; `None`
    /// for roots consuming the raw input.
    pub upstream: Option<usize>,
}

/// A multi-model application.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Stable application id (index into the catalogue).
    pub id: u32,
    /// Application name.
    pub name: String,
    /// Latency SLO of the application's jobs (400–600 ms, §4).
    pub slo: SimDuration,
    /// DAG nodes in topological order (`upstream < index`).
    pub nodes: Vec<NodeSpec>,
}

impl AppSpec {
    /// Builds an application, validating the topological invariant.
    ///
    /// # Panics
    /// Panics if any node references an upstream at or after itself.
    pub fn new(
        id: u32,
        name: impl Into<String>,
        slo: SimDuration,
        nodes: Vec<NodeSpec>,
    ) -> Self {
        assert!(!nodes.is_empty(), "an application needs at least one model");
        for (i, n) in nodes.iter().enumerate() {
            if let Some(up) = n.upstream {
                assert!(up < i, "node {i} upstream {up} breaks topological order");
            }
        }
        AppSpec {
            id,
            name: name.into(),
            slo,
            nodes,
        }
    }

    /// Number of models.
    pub fn num_models(&self) -> usize {
        self.nodes.len()
    }

    /// Indices of the leaf nodes — the outputs whose predictions define
    /// the application's accuracy (§2: "the percentage of all inference
    /// requests for vehicle type and person activity outputs … predicted
    /// correctly").
    pub fn leaves(&self) -> Vec<usize> {
        let mut has_child = vec![false; self.nodes.len()];
        for n in &self.nodes {
            if let Some(up) = n.upstream {
                has_child[up] = true;
            }
        }
        (0..self.nodes.len()).filter(|i| !has_child[*i]).collect()
    }

    /// Aggregate cost of the full structures of all models (the "initial
    /// DAG" used for offline profiling, §3.3.1).
    pub fn full_structure_cost(&self) -> StructureCost {
        self.nodes
            .iter()
            .fold(StructureCost::zero(), |acc, n| acc.plus(n.profile.full_cost()))
    }

    /// Aggregate cost for an arbitrary per-model structure choice.
    ///
    /// # Panics
    /// Panics if `cuts` length mismatches the node count.
    pub fn structure_cost(&self, cuts: &[usize]) -> StructureCost {
        assert_eq!(cuts.len(), self.nodes.len(), "one cut per node");
        self.nodes
            .iter()
            .zip(cuts)
            .fold(StructureCost::zero(), |acc, (n, &c)| {
                acc.plus(n.profile.structure_cost(c))
            })
    }

    /// Per-node full cuts (the full-structure choice vector).
    pub fn full_cuts(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.profile.full_cut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_modelzoo::zoo;

    fn surveillance() -> AppSpec {
        AppSpec::new(
            0,
            "video surveillance",
            SimDuration::from_millis(400),
            vec![
                NodeSpec {
                    name: "object detection".into(),
                    profile: zoo::tiny_yolo_v3(),
                    classes: 3,
                    drift: DriftProfile::Stable,
                    upstream: None,
                },
                NodeSpec {
                    name: "vehicle type recognition".into(),
                    profile: zoo::mobilenet_v2(),
                    classes: 6,
                    drift: DriftProfile::Severe,
                    upstream: Some(0),
                },
                NodeSpec {
                    name: "person activity recognition".into(),
                    profile: zoo::shufflenet(),
                    classes: 5,
                    drift: DriftProfile::Moderate,
                    upstream: Some(0),
                },
            ],
        )
    }

    #[test]
    fn leaves_are_the_recognition_tasks() {
        let app = surveillance();
        assert_eq!(app.leaves(), vec![1, 2]);
    }

    #[test]
    fn structure_cost_sums_nodes() {
        let app = surveillance();
        let full = app.full_structure_cost();
        let by_cuts = app.structure_cost(&app.full_cuts());
        assert!((full.flops_per_sample - by_cuts.flops_per_sample).abs() < 1e-6);
        assert!((full.flops_per_sample - 1.5e8).abs() / 1.5e8 < 0.01);
    }

    #[test]
    fn early_cuts_reduce_cost() {
        let app = surveillance();
        let mut cuts = app.full_cuts();
        cuts[1] = 2;
        assert!(
            app.structure_cost(&cuts).flops_per_sample
                < app.full_structure_cost().flops_per_sample
        );
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn bad_upstream_panics() {
        AppSpec::new(
            0,
            "bad",
            SimDuration::from_millis(400),
            vec![NodeSpec {
                name: "self-loop".into(),
                profile: zoo::shufflenet(),
                classes: 2,
                drift: DriftProfile::Stable,
                upstream: Some(0),
            }],
        );
    }
}
