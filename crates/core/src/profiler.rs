//! Offline profiling tables.
//!
//! AdaInf "performs offline profiling to find an application's per-batch
//! inference latency … for a set of request batch sizes when it is
//! allocated with an entire GPU" (§3.3.1), the same for every early-exit
//! structure and for retraining settings (§3.3.2), and profiles the
//! communication behaviour of its memory strategies so scheduling can
//! account for them (§3.4). The [`Profiler`] is the in-simulator stand-in:
//! it queries the GPU latency model for compute time (what `nvprof` on an
//! idle V100 would measure) and carries **communication inflation
//! factors** per memory strategy, measured with the detailed
//! layer-granularity execution engine by [`measure_inflation`].

use crate::regression::PowerLawScaler;
use adainf_gpusim::exec::{run_concurrent, TaskExec, TaskKind};
use adainf_gpusim::{
    EvictionPolicyKind, ExecMode, GpuMemory, LatencyModel, MemoryConfig, StructureCost,
};
use adainf_simcore::{SimDuration, SimTime};

/// Multiplicative latency inflation by CPU–GPU communication for each
/// (execution mode, eviction policy) pair, under the default multi-model
/// memory pressure.
///
/// Defaults reproduce the paper's observations: the baseline combination
/// (per-request execution + LRU) spends ~24 % of inference latency on
/// communication (Obs. 7 ⇒ inflation ≈ 1/(1−0.24) ≈ 1.32); each AdaInf
/// strategy claws part of that back (Fig 22: M1 is worth slightly more
/// than M2). `fig11`/`fig12` regenerate these factors from the detailed
/// engine via [`measure_inflation`].
#[derive(Clone, Copy, Debug)]
pub struct CommProfile {
    /// LayerGrouped + Priority (full AdaInf).
    pub grouped_priority: f64,
    /// LayerGrouped + LRU (AdaInf/M2).
    pub grouped_lru: f64,
    /// PerRequest + Priority (AdaInf/M1).
    pub per_request_priority: f64,
    /// PerRequest + LRU (baselines).
    pub per_request_lru: f64,
}

impl Default for CommProfile {
    fn default() -> Self {
        CommProfile {
            grouped_priority: 1.12,
            grouped_lru: 1.20,
            per_request_priority: 1.24,
            per_request_lru: 1.32,
        }
    }
}

impl CommProfile {
    /// The inflation factor for a strategy combination.
    pub fn inflation(&self, mode: ExecMode, policy: EvictionPolicyKind) -> f64 {
        match (mode, policy) {
            (ExecMode::LayerGrouped, EvictionPolicyKind::Priority) => self.grouped_priority,
            (ExecMode::LayerGrouped, EvictionPolicyKind::Lru) => self.grouped_lru,
            (ExecMode::PerRequest, EvictionPolicyKind::Priority) => self.per_request_priority,
            (ExecMode::PerRequest, EvictionPolicyKind::Lru) => self.per_request_lru,
        }
    }
}

/// The profiling-table facade used by all schedulers.
#[derive(Clone, Debug)]
pub struct Profiler {
    /// The GPU latency law (compute component).
    pub latency: LatencyModel,
    /// Communication inflation per memory strategy.
    pub comm: CommProfile,
    /// Power-law scaler fitted to the reference structure's profile,
    /// used for fraction scaling/inversion (§3.3.1).
    pub scaler: PowerLawScaler,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new(LatencyModel::default(), CommProfile::default())
    }
}

impl Profiler {
    /// Builds the profiler, fitting the regression scaler from profiled
    /// points of the reference structure (as AdaInf fits its non-linear
    /// model from offline profiles).
    pub fn new(latency: LatencyModel, comm: CommProfile) -> Self {
        let reference = StructureCost {
            flops_per_sample: latency.flops_ref,
            activation_bytes: latency.act_ref,
            param_bytes: 3.0e7,
        };
        let points: Vec<(f64, f64)> = [1.0, 0.75, 0.5, 0.25, 0.125]
            .iter()
            .map(|&g| {
                (
                    g,
                    latency
                        .per_batch_inference(&reference, 16, g)
                        .as_millis_f64(),
                )
            })
            .collect();
        let scaler = PowerLawScaler::fit(&points);
        Profiler {
            latency,
            comm,
            scaler,
        }
    }

    /// Profiled worst-case inference latency at **full GPU** for a job of
    /// `n` requests at batch `b` (compute only — profiling runs alone on
    /// an idle GPU).
    pub fn worst_case_full(&self, cost: &StructureCost, n: u32, batch: u32) -> SimDuration {
        self.latency.worst_case(cost, n, batch, 1.0)
    }

    /// The batch size minimising worst-case latency at full GPU, with the
    /// latency (§3.3.1 step 1).
    pub fn optimal_batch_full(&self, cost: &StructureCost, n: u32) -> (u32, SimDuration) {
        self.latency.optimal_batch(cost, n, 1.0)
    }

    /// The batch size minimising the **scaled** worst-case latency at
    /// fraction `g` (§3.3.1 step 2 / §3.3.2 re-adjustment).
    pub fn optimal_batch_at(&self, cost: &StructureCost, n: u32, g: f64) -> (u32, SimDuration) {
        self.latency.optimal_batch(cost, n, g)
    }

    /// End-to-end inference latency estimate for a job: compute at the
    /// fraction times the communication inflation of the strategy pair.
    pub fn inference_latency(
        &self,
        cost: &StructureCost,
        n: u32,
        batch: u32,
        g: f64,
        mode: ExecMode,
        policy: EvictionPolicyKind,
    ) -> SimDuration {
        self.latency
            .worst_case(cost, n, batch, g)
            .mul_f64(self.comm.inflation(mode, policy))
    }

    /// Retraining samples that fit in `budget` at fraction `g` with the
    /// given batch (§3.3.2 retraining-setting selection).
    pub fn samples_within(
        &self,
        cost: &StructureCost,
        batch: u32,
        g: f64,
        budget: SimDuration,
    ) -> u32 {
        self.latency.samples_within(cost, batch, g, budget)
    }

    /// The retraining batch size that maximises samples trained per unit
    /// time at fraction `g` (part of the §3.3.2 retraining-setting
    /// selection: batch size is one of the profiled setting dimensions).
    pub fn best_train_batch(&self, cost: &StructureCost, g: f64) -> u32 {
        use adainf_gpusim::latency::BATCH_CANDIDATES;
        // Evaluate each candidate's rate exactly once (a comparator
        // passed to `max_by` re-derives both sides at every comparison).
        // `>=` keeps the last of equal maxima, matching `max_by`.
        let mut best = 32u32;
        let mut best_rate = f64::NEG_INFINITY;
        for &b in BATCH_CANDIDATES.iter() {
            let rate = b as f64
                / self
                    .latency
                    .per_batch_training(cost, b, g)
                    .as_millis_f64()
                    .max(1e-9);
            if rate >= best_rate {
                best = b;
                best_rate = rate;
            }
        }
        best
    }

    /// Latency of a retraining setting at fraction `g`.
    pub fn training_latency(
        &self,
        cost: &StructureCost,
        samples: u32,
        batch: u32,
        epochs: u32,
        g: f64,
    ) -> SimDuration {
        self.latency.training_latency(cost, samples, batch, epochs, g)
    }
}

/// Measures the communication inflation factor of a strategy pair with
/// the detailed engine: `apps` concurrent parameter-plus-activation-heavy
/// inference tasks contend for `capacity` bytes of GPU memory. Returns
/// `(compute + comm) / compute`.
pub fn measure_inflation(
    mode: ExecMode,
    policy: EvictionPolicyKind,
    apps: u32,
    capacity: u64,
) -> f64 {
    let latency = LatencyModel::default();
    let mut tasks = Vec::new();
    for a in 0..apps {
        // A 12-layer, parameter-heavy structure per app, matching the
        // compressed backbones of the zoo.
        let layers: Vec<adainf_gpusim::exec::LayerSpec> = (0..12)
            .map(|_| adainf_gpusim::exec::LayerSpec {
                flops: 1.0e7,
                param_bytes: 900_000,
                activation_bytes: 120_000,
            })
            .collect();
        tasks.push(TaskExec {
            app: a,
            model: 0,
            job: a as u64 + 1,
            kind: TaskKind::Inference { requests: 32 },
            layers,
            batch: 16,
            frac: 1.0 / apps as f64,
            slo_ms: 400.0 + 25.0 * a as f64,
            input_from: None,
            start: SimTime::ZERO,
        });
    }
    let mut mem = GpuMemory::new(MemoryConfig {
        gpu_capacity: capacity,
        pin_capacity: capacity / 4,
        policy,
        ..MemoryConfig::default()
    });
    let results = run_concurrent(&tasks, &latency, &mut mem, mode);
    let compute: f64 = results.iter().map(|r| r.compute.as_millis_f64()).sum();
    let comm: f64 = results.iter().map(|r| r.comm.as_millis_f64()).sum();
    if compute <= 0.0 {
        1.0
    } else {
        (compute + comm) / compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> StructureCost {
        StructureCost {
            flops_per_sample: 1.5e8,
            activation_bytes: 2.0e6,
            param_bytes: 3.0e7,
        }
    }

    #[test]
    fn comm_profile_ordering_matches_fig22() {
        let c = CommProfile::default();
        assert!(c.grouped_priority < c.grouped_lru);
        assert!(c.grouped_lru < c.per_request_priority);
        assert!(c.per_request_priority < c.per_request_lru);
        // Baseline comm share ≈ 24 %.
        let share = 1.0 - 1.0 / c.per_request_lru;
        assert!((share - 0.24).abs() < 0.02, "share {share}");
    }

    #[test]
    fn profiler_scaler_tracks_latency_model() {
        let p = Profiler::default();
        let full = p.worst_case_full(&reference(), 64, 16).as_millis_f64();
        let predicted = p.scaler.scale(full, 0.5);
        let actual = p
            .latency
            .worst_case(&reference(), 64, 16, 0.5)
            .as_millis_f64();
        // Regression error exists (the knee shifts) but stays bounded.
        assert!(
            (predicted - actual).abs() / actual < 0.8,
            "predicted {predicted} actual {actual}"
        );
    }

    #[test]
    fn inference_latency_includes_inflation() {
        let p = Profiler::default();
        let bare = p.latency.worst_case(&reference(), 32, 16, 0.5);
        let adainf = p.inference_latency(
            &reference(),
            32,
            16,
            0.5,
            ExecMode::LayerGrouped,
            EvictionPolicyKind::Priority,
        );
        let baseline = p.inference_latency(
            &reference(),
            32,
            16,
            0.5,
            ExecMode::PerRequest,
            EvictionPolicyKind::Lru,
        );
        assert!(adainf > bare);
        assert!(baseline > adainf);
    }

    #[test]
    fn measured_inflation_reproduces_observation7() {
        // Under contention, the baseline pair must lose noticeably more
        // to communication than the AdaInf pair.
        let capacity = 9_000_000;
        let baseline = measure_inflation(
            ExecMode::PerRequest,
            EvictionPolicyKind::Lru,
            3,
            capacity,
        );
        let adainf = measure_inflation(
            ExecMode::LayerGrouped,
            EvictionPolicyKind::Priority,
            3,
            capacity,
        );
        assert!(
            baseline > adainf + 0.05,
            "baseline {baseline} vs adainf {adainf}"
        );
        assert!(baseline > 1.1, "baseline inflation {baseline}");
    }
}
