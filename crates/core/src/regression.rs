//! The non-linear regression scaling of \[3\].
//!
//! AdaInf (like Ekya) never queries the GPU at schedule time: it scales
//! offline-profiled latencies between GPU fractions with a fitted
//! regression model. We fit a power law `L(g) = L(1) · g^(−θ)` by
//! least squares in log–log space — the classic throughput-scaling form.
//! Because the true simulator law also shifts its batching knee with the
//! fraction, the fit has honest approximation error, exactly like the
//! paper's profiling-based estimates.

/// A fitted power-law latency scaler.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawScaler {
    /// Scaling exponent θ (positive: less space → more latency).
    pub theta: f64,
}

impl PowerLawScaler {
    /// Fits θ from `(fraction, latency)` observations (latency in any
    /// consistent unit). Requires at least two points with positive
    /// values; falls back to θ = 1 (linear scaling) otherwise.
    pub fn fit(points: &[(f64, f64)]) -> Self {
        let logs: Vec<(f64, f64)> = points
            .iter()
            .filter(|(g, l)| *g > 0.0 && *l > 0.0)
            .map(|(g, l)| (g.ln(), l.ln()))
            .collect();
        if logs.len() < 2 {
            return PowerLawScaler { theta: 1.0 };
        }
        let n = logs.len() as f64;
        let mx: f64 = logs.iter().map(|(x, _)| x).sum::<f64>() / n;
        let my: f64 = logs.iter().map(|(_, y)| y).sum::<f64>() / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for (x, y) in &logs {
            num += (x - mx) * (y - my);
            den += (x - mx) * (x - mx);
        }
        if den < 1e-12 {
            return PowerLawScaler { theta: 1.0 };
        }
        // Slope is −θ.
        PowerLawScaler {
            theta: (-(num / den)).max(0.05),
        }
    }

    /// Latency at fraction `g` given the latency at full GPU.
    pub fn scale(&self, latency_full: f64, g: f64) -> f64 {
        latency_full * g.clamp(1e-4, 1.0).powf(-self.theta)
    }

    /// The fraction needed to bring `latency_full` down to `target`
    /// (clamped to `(0, 1]`; returns 1.0 when even a full GPU is too slow
    /// — the caller deals with infeasibility).
    pub fn required_fraction(&self, latency_full: f64, target: f64) -> f64 {
        if target <= 0.0 || latency_full <= 0.0 {
            return 1.0;
        }
        (latency_full / target).powf(1.0 / self.theta).clamp(1e-4, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_power_law() {
        let theta = 0.85;
        let points: Vec<(f64, f64)> = [1.0, 0.5, 0.25, 0.125]
            .iter()
            .map(|&g: &f64| (g, 100.0 * g.powf(-theta)))
            .collect();
        let s = PowerLawScaler::fit(&points);
        assert!((s.theta - theta).abs() < 1e-6, "theta {}", s.theta);
        assert!((s.scale(100.0, 0.5) - 100.0 * 0.5f64.powf(-theta)).abs() < 1e-6);
    }

    #[test]
    fn required_fraction_inverts_scale() {
        let s = PowerLawScaler { theta: 0.9 };
        let g = s.required_fraction(50.0, 200.0);
        assert!((s.scale(50.0, g) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn required_fraction_clamps() {
        let s = PowerLawScaler { theta: 1.0 };
        // Needs more than a full GPU → clamp to 1.
        assert_eq!(s.required_fraction(500.0, 100.0), 1.0);
        // Degenerate targets.
        assert_eq!(s.required_fraction(100.0, 0.0), 1.0);
    }

    #[test]
    fn degenerate_fits_fall_back() {
        assert_eq!(PowerLawScaler::fit(&[]).theta, 1.0);
        assert_eq!(PowerLawScaler::fit(&[(1.0, 10.0)]).theta, 1.0);
        assert_eq!(PowerLawScaler::fit(&[(1.0, 10.0), (1.0, 10.0)]).theta, 1.0);
    }
}
