//! The AdaInf scheduler (§3.1 overview).
//!
//! At each period boundary: run drift detection per application, build
//! the retraining-inference DAGs, order every retraining pool by
//! deviation (most-deviating samples first) and refresh the per-structure
//! accuracy snapshots. At each session: divide GPU space among the jobs
//! (§3.3.1) and divide each job's SLO time between inference and
//! retraining (§3.3.2), emitting one [`JobPlan`] per job.
//!
//! Planning overheads are measured with wall-clock timers and reported in
//! the period plan (Table 1 — the paper's AdaInf takes ~4.2 s for the
//! periodical DAG update and ~2 ms per scheduling round).

use crate::cache::DecisionCache;
use crate::config::AdaInfConfig;
use crate::drift_cache::{BuiltArtifacts, DetectScratch, DriftCache, DriftSnapshot};
use crate::drift_detect::{detect_drift_cached, DriftReport};
use crate::incremental::RetrainProgress;
use crate::plan::{AppPeriodPlan, JobPlan, PeriodPlan, Scheduler, SessionCtx};
use crate::predict::{LatencyFeatures, LatencyPredictor, PredictedLatency};
use crate::profiler::Profiler;
use crate::ridag::RiDag;
use crate::space::{
    divide_space, divide_space_cached, divide_space_joint, divide_space_joint_cached, JobDemand,
};
use crate::timealloc::{allocate_time, clamp_slices, plan_time, select_structures, strategies};
use adainf_apps::{AppRuntime, AppSpec};
use adainf_simcore::parallel;
use adainf_simcore::walltime::WallTimer;
use adainf_simcore::{Prng, SimDuration, SimTime};
use std::sync::Arc;

/// Per-application scheduling state snapshotted at the period boundary.
#[derive(Clone, Debug, Default)]
struct AppState {
    ridag: RiDag,
    /// `(cut, accuracy)` per node, refreshed each period from the `S`
    /// new training samples (§3.3.2).
    acc_table: Vec<Vec<(usize, f64)>>,
    initial_acc: Vec<f64>,
    /// Early-exit structure choice per node for this period (§3.3.2
    /// step 1). The selection depends only on period state, never on a
    /// session's GPU fraction or request count, so it is made once here.
    cuts: Vec<usize>,
    /// AdaInf/U: the DAG freezes at its first non-empty detection ("it
    /// creates the retraining-inference DAG once").
    frozen: bool,
}

/// The AdaInf scheduler.
pub struct AdaInfScheduler {
    config: AdaInfConfig,
    /// Shared, immutable profiling tables (the harness hands the same
    /// `Arc` to the world model — no per-construction clone).
    profiler: Arc<Profiler>,
    rng: Prng,
    specs: Arc<[AppSpec]>,
    states: Vec<AppState>,
    /// Drift reports of the latest detection round (Table 2).
    pub last_reports: Vec<DriftReport>,
    /// Live incremental-retraining progress (planned slices; the harness
    /// holds ground truth for actually consumed samples).
    pub progress: RetrainProgress,
    /// Cumulative wall-clock spent in session scheduling, and calls.
    sched_wall_ns: u128,
    sched_calls: u64,
    /// Cumulative wall-clock of period-boundary drift **work** —
    /// caller-thread compute plus background-worker build time. With
    /// the overlapped pipeline off this is exactly the inline drift
    /// block; with it on the same work total is split across threads.
    drift_wall_ns: u128,
    /// The same drift work wall-clock, per period boundary in period
    /// order — the distribution behind the harness's p99 drift latency.
    drift_period_ns: Vec<u64>,
    /// Cumulative wall-clock the serving loop was actually **stalled**
    /// by drift work — the critical path: snapshot + spawn, the
    /// detection sweep's own compute, and time blocked joining
    /// background builds. Equal to `drift_wall_ns` when the overlap is
    /// off; the gap between the two is the overlap win.
    drift_blocked_ns: u128,
    /// Exact memoisation of the per-session searches (see [`crate::cache`]).
    cache: DecisionCache,
    /// Per-period drift artifact cache (see [`crate::drift_cache`]):
    /// detection and retraining-order selection share one feature/PCA/
    /// ranking computation per `(app, node, period, model version)`.
    drift: DriftCache,
    /// Largest resolved worker-thread count used by any parallel drift
    /// prebuild this run (0 when no fan-out ran). Bench rows record it so
    /// results document the host parallelism they were measured under.
    worker_threads: usize,
    /// Online per-app latency predictor (see [`crate::predict`]), built
    /// only when [`AdaInfConfig::predicted_latency`] is on.
    predictor: Option<LatencyPredictor>,
}

impl AdaInfScheduler {
    /// Creates the scheduler for a fixed application set. `profiler` and
    /// `specs` accept owned values or pre-shared `Arc`s.
    pub fn new(
        config: AdaInfConfig,
        profiler: impl Into<Arc<Profiler>>,
        specs: impl Into<Arc<[AppSpec]>>,
        seed: u64,
    ) -> Self {
        let specs = specs.into();
        let n = specs.len();
        let drift = DriftCache::new(config.drift_artifact_cache);
        let predictor = config
            .predicted_latency
            .then(|| LatencyPredictor::new(n, config.predictor_warmup as u64));
        AdaInfScheduler {
            config,
            profiler: profiler.into(),
            // simlint: allow(prng-stream-discipline) — the scheduler's ctor IS its seed boundary: callers hand it the run seed, and the xor-label keeps its stream disjoint from the harness's
            rng: Prng::new(seed ^ 0x000A_DA1F),
            specs,
            states: vec![AppState::default(); n],
            last_reports: Vec::new(),
            progress: RetrainProgress::new(),
            sched_wall_ns: 0,
            sched_calls: 0,
            drift_wall_ns: 0,
            drift_period_ns: Vec::new(),
            drift_blocked_ns: 0,
            cache: DecisionCache::default(),
            drift,
            worker_threads: 0,
            predictor,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaInfConfig {
        &self.config
    }

    /// Mean measured wall-clock per session scheduling call.
    pub fn mean_sched_wall(&self) -> std::time::Duration {
        if self.sched_calls == 0 {
            return std::time::Duration::ZERO;
        }
        std::time::Duration::from_nanos((self.sched_wall_ns / self.sched_calls as u128) as u64)
    }

    /// `(hits, misses, evictions)` of the decision cache so far.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (self.cache.hits, self.cache.misses, self.cache.evictions)
    }

    /// `(hits, misses)` of the drift artifact cache so far.
    pub fn drift_cache_stats(&self) -> (u64, u64) {
        (self.drift.hits, self.drift.misses)
    }

    /// Refreshes the per-node `(cut, accuracy)` tables and initial
    /// accuracies. Reads only model weights and evaluation sets (and
    /// writes only the runtime's accuracy cache) — disjoint from
    /// everything the drift sweep touches, which is what lets the
    /// overlapped pipeline run this in the window between spawning the
    /// background builds and joining them, bit-identically to the
    /// inline order.
    fn refresh_accuracy_values(&mut self, apps: &mut [AppRuntime]) {
        for (a, rt) in apps.iter_mut().enumerate() {
            let mut table = Vec::with_capacity(rt.spec.nodes.len());
            let mut init = Vec::with_capacity(rt.spec.nodes.len());
            for node in 0..rt.spec.nodes.len() {
                let cuts = rt.spec.nodes[node].profile.exit_points();
                let entries: Vec<(usize, f64)> = cuts
                    .into_iter()
                    .map(|cut| (cut, rt.accuracy(node, cut)))
                    .collect();
                table.push(entries);
                init.push(rt.initial_accuracy(node));
            }
            self.states[a].acc_table = table;
            self.states[a].initial_acc = init;
        }
    }

    /// With the tables refreshed and this period's RI-DAGs built, makes
    /// the period's structure choice per application (it is
    /// session-invariant, §3.3.2 step 1). Must run after the drift
    /// sweep — the selection reads the new DAGs.
    fn select_period_structures(&mut self) {
        for a in 0..self.states.len() {
            let state = &self.states[a];
            let acc_table = &state.acc_table;
            let acc = |node: usize, cut: usize| -> f64 {
                acc_table
                    .get(node)
                    .and_then(|entries| entries.iter().find(|(c, _)| *c == cut).map(|(_, a)| *a))
                    .unwrap_or(0.0)
            };
            let cuts = select_structures(
                &self.specs[a],
                &state.ridag,
                &acc,
                &state.initial_acc,
                &self.config,
            );
            self.states[a].cuts = cuts;
        }
    }
}

impl Scheduler for AdaInfScheduler {
    fn name(&self) -> String {
        self.config.variant_name().to_string()
    }

    fn cache_stats(&self) -> (u64, u64, u64) {
        (self.cache.hits, self.cache.misses, self.cache.evictions)
    }

    fn drift_overhead_ns(&self) -> u128 {
        self.drift_wall_ns
    }

    fn drift_period_ns(&self) -> &[u64] {
        &self.drift_period_ns
    }

    fn drift_blocked_ns(&self) -> u128 {
        self.drift_blocked_ns
    }

    fn worker_threads(&self) -> Option<usize> {
        (self.worker_threads > 0).then_some(self.worker_threads)
    }

    fn predictor_enabled(&self) -> bool {
        self.predictor.is_some()
    }

    fn predict_latency(
        &self,
        app: usize,
        feats: &LatencyFeatures,
    ) -> Option<PredictedLatency> {
        self.predictor.as_ref()?.predict(app, feats)
    }

    fn observe_latency(
        &mut self,
        app: usize,
        feats: &LatencyFeatures,
        per_batch_us: f64,
        fixed_us: f64,
    ) {
        if let Some(p) = self.predictor.as_mut() {
            p.observe(app, feats, per_batch_us, fixed_us);
        }
    }

    fn on_period_start(
        &mut self,
        apps: &mut [AppRuntime],
        _server: &adainf_gpusim::GpuSpec,
        _now: SimTime,
    ) -> PeriodPlan {
        let wall = WallTimer::start();
        self.last_reports.clear();

        let overlap = self.config.drift_artifact_cache
            && self.config.drift_parallel_build
            && self.config.drift_overlap;

        // Three drift wall-clock components, accumulated separately so
        // the metrics can tell total *work* apart from the serving
        // loop's *stall*:
        //   caller  — time this thread spent inside the drift sections
        //             (snapshot + spawn + the sweep, waits included);
        //   built   — background workers' build time;
        //   blocked — the subset of `caller` spent waiting on joins.
        // Total work = caller − blocked + built; critical path = caller.
        let mut drift_caller_ns: u128 = 0;
        let mut drift_built_ns: u128 = 0;
        let mut drift_blocked_ns: u128 = 0;

        if overlap {
            // ---- Overlapped period pipeline ----
            // Stage 1: snapshot the stale artifact inputs at their
            // (pool generation, model version) keys and launch the
            // builds on a detached background stage.
            let seg = WallTimer::start();
            let (mut stage, slots) = {
                let AdaInfScheduler {
                    config,
                    rng,
                    states,
                    drift,
                    worker_threads,
                    ..
                } = &mut *self;
                let mut jobs: Vec<(usize, usize)> = Vec::new();
                for (a, rt) in apps.iter().enumerate() {
                    let update_dag = config.update_dag_each_period || !states[a].frozen;
                    for node in 0..rt.spec.nodes.len() {
                        if update_dag || states[a].ridag.retrains(node) {
                            jobs.push((a, node));
                        }
                    }
                }
                let snaps = drift.snapshot_stale(&jobs, apps, rng);
                if !snaps.is_empty() {
                    *worker_threads = (*worker_threads)
                        .max(parallel::resolved_threads(snaps.len(), config.drift_workers).max(1));
                }
                let slots: Vec<(usize, usize)> = snaps.iter().map(|s| s.slot).collect();
                let pca_components = config.pca_components;
                let stage = parallel::spawn_background(
                    snaps,
                    config.drift_workers,
                    DetectScratch::default,
                    move |_, snap: DriftSnapshot, scratch: &mut DetectScratch| {
                        let t = WallTimer::start();
                        let built = snap.build(pca_components, scratch);
                        (built, t.elapsed_nanos() as u64)
                    },
                );
                (stage, slots)
            };
            drift_caller_ns += seg.elapsed_nanos();

            // Overlap window: the accuracy-table value refresh reads
            // only model weights and evaluation sets — independent of
            // every build in flight — so it fills the caller's wait.
            self.refresh_accuracy_values(apps);

            // Stage 2: the detection sweep, joining each application's
            // background builds right before it needs them (first
            // artifact consumption). Inserts happen in job order, so
            // cache counters and warm chains are bit-identical to the
            // inline prebuild's.
            let seg = WallTimer::start();
            {
                let AdaInfScheduler {
                    config,
                    rng,
                    states,
                    last_reports,
                    drift,
                    ..
                } = &mut *self;
                let mut next_slot = 0usize;
                for (a, rt) in apps.iter_mut().enumerate() {
                    while next_slot < slots.len() && slots[next_slot].0 == a {
                        let waited = WallTimer::start();
                        let (built, build_ns): (BuiltArtifacts, u64) = stage.take(next_slot);
                        drift_blocked_ns += waited.elapsed_nanos();
                        drift_built_ns += u128::from(build_ns);
                        drift.insert_built(built);
                        next_slot += 1;
                    }
                    let update_dag = config.update_dag_each_period || !states[a].frozen;
                    if update_dag {
                        let report = detect_drift_cached(rt, a, config, drift, rng);
                        states[a].ridag = RiDag::build(&rt.spec, &report);
                        if !report.impacted.is_empty() {
                            states[a].frozen = true;
                        }
                        last_reports.push(report);
                    }
                    for node in 0..rt.spec.nodes.len() {
                        if states[a].ridag.retrains(node) {
                            let order = drift
                                .artifacts(a, rt, node, config.pca_components, rng)
                                .retrain
                                .clone();
                            rt.pools[node].set_order(&order);
                        }
                    }
                }
                // Next-boundary backstop: nothing should be left (every
                // job belongs to an application the sweep visited), but
                // join defensively before the ledger check retires the
                // stage — finish() asserts every snapshot was built and
                // joined exactly once.
                let waited = WallTimer::start();
                for (_, (built, build_ns)) in stage.drain() {
                    drift_built_ns += u128::from(build_ns);
                    drift.insert_built(built);
                }
                drift_blocked_ns += waited.elapsed_nanos();
                stage.finish();
            }
            drift_caller_ns += seg.elapsed_nanos();
        } else {
            let seg = WallTimer::start();
            {
                // Disjoint field borrows: the drift cache and rng are used
                // while states and reports are written.
                let AdaInfScheduler {
                    config,
                    rng,
                    states,
                    last_reports,
                    drift,
                    worker_threads,
                    ..
                } = &mut *self;
                // Build this period's artifacts concurrently before the
                // sequential sweep reads them. The job set mirrors exactly
                // what the sweep below touches — every node of apps that run
                // detection, and only the frozen RI-DAG's retraining nodes
                // otherwise — so warm-start chains are identical whether the
                // entries were prebuilt or built on first lookup.
                if config.drift_artifact_cache && config.drift_parallel_build {
                    let mut jobs: Vec<(usize, usize)> = Vec::new();
                    for (a, rt) in apps.iter().enumerate() {
                        let update_dag = config.update_dag_each_period || !states[a].frozen;
                        for node in 0..rt.spec.nodes.len() {
                            if update_dag || states[a].ridag.retrains(node) {
                                jobs.push((a, node));
                            }
                        }
                    }
                    *worker_threads =
                        (*worker_threads).max(parallel::resolved_threads(jobs.len(), 0));
                    drift.prebuild(&jobs, apps, config.pca_components, rng, 0);
                }
                for (a, rt) in apps.iter_mut().enumerate() {
                    // AdaInf/U builds each application's DAG once — frozen at
                    // the first period in which drift is detected at all.
                    let update_dag = config.update_dag_each_period || !states[a].frozen;
                    if update_dag {
                        let report = detect_drift_cached(rt, a, config, drift, rng);
                        states[a].ridag = RiDag::build(&rt.spec, &report);
                        if !report.impacted.is_empty() {
                            states[a].frozen = true;
                        }
                        last_reports.push(report);
                    }
                    // Order every retraining pool by deviation so retraining
                    // consumes the most-deviating samples first (§3.3.2). This
                    // applies even for /U — sample selection is not part of
                    // the DAG-update ablation. The order comes from the same
                    // cached artifacts the detector just built.
                    for node in 0..rt.spec.nodes.len() {
                        if states[a].ridag.retrains(node) {
                            let order = drift
                                .artifacts(a, rt, node, config.pca_components, rng)
                                .retrain
                                .clone();
                            rt.pools[node].set_order(&order);
                        }
                    }
                }
            }
            // Inline: the whole drift block runs on (and stalls) the
            // caller — critical path and total work coincide.
            drift_caller_ns += seg.elapsed_nanos();
            self.refresh_accuracy_values(apps);
        }
        self.drift_wall_ns += drift_caller_ns - drift_blocked_ns + drift_built_ns;
        self.drift_period_ns
            .push((drift_caller_ns - drift_blocked_ns + drift_built_ns) as u64);
        self.drift_blocked_ns += drift_caller_ns;
        self.select_period_structures();
        // Time plans are valid only for this period's DAGs and accuracy
        // snapshots — drop the stale ones.
        self.cache.start_period();
        // Register this period's retraining nodes with the progress
        // tracker.
        let registrations: Vec<((usize, usize), u32)> = self
            .states
            .iter()
            .enumerate()
            .flat_map(|(a, s)| {
                s.ridag
                    .entries
                    .iter()
                    .map(move |e| ((a, e.node), 0u32))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut regs = registrations;
        for ((a, node), pool) in regs.iter_mut() {
            *pool = apps[*a].pools[*node].total() as u32;
        }
        self.progress.start_period(regs);

        PeriodPlan {
            apps: self
                .states
                .iter()
                .map(|s| AppPeriodPlan {
                    ri_entries: s.ridag.entries.clone(),
                })
                .collect(),
            bulk: Vec::new(),
            overhead: SimDuration::from_millis_f64(wall.elapsed_ms()),
            edge_cloud_bytes: 0,
        }
    }

    fn on_session(&mut self, ctx: &SessionCtx<'_>) -> Vec<JobPlan> {
        let wall = WallTimer::start();
        let demands: Vec<JobDemand> = ctx
            .predicted
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(app, &n)| JobDemand {
                app,
                requests: n,
                cost: self.specs[app].full_structure_cost(),
                slo: self.specs[app].slo,
            })
            .collect();
        if demands.is_empty() {
            return Vec::new();
        }

        // §6 extension: serve low-rate applications on the host CPU when
        // that still meets their SLO, freeing GPU space.
        let cpu_jobs: Vec<usize> = if self.config.cpu_offload_threshold > 0 {
            demands
                .iter()
                .filter(|j| {
                    j.requests <= self.config.cpu_offload_threshold
                        && self.profiler.latency.cpu_inference(&j.cost, j.requests) <= j.slo
                })
                .map(|j| j.app)
                .collect()
        } else {
            Vec::new()
        };
        let gpu_demands: Vec<JobDemand> = demands
            .iter()
            .filter(|j| !cpu_jobs.contains(&j.app))
            .cloned()
            .collect();

        let mut division = match (self.config.joint_batch_space, self.config.decision_cache) {
            (true, true) => divide_space_joint_cached(
                &gpu_demands,
                ctx.server.total_space(),
                ctx.avg_job_time,
                &self.profiler,
                &mut self.cache,
            ),
            (true, false) => divide_space_joint(
                &gpu_demands,
                ctx.server.total_space(),
                ctx.avg_job_time,
                &self.profiler,
            ),
            (false, true) => divide_space_cached(
                &gpu_demands,
                ctx.server.total_space(),
                ctx.avg_job_time,
                self.config.slo_aware_space,
                &self.profiler,
                &mut self.cache,
            ),
            (false, false) => divide_space(
                &gpu_demands,
                ctx.server.total_space(),
                ctx.avg_job_time,
                self.config.slo_aware_space,
                &self.profiler,
            ),
        };
        // Never over-commit the free capacity: scale down proportionally.
        let wanted: f64 = division.iter().map(|d| d.gpu).sum();
        if wanted > ctx.free_gpus && wanted > 0.0 {
            let k = (ctx.free_gpus / wanted).max(0.0);
            for d in &mut division {
                // Floor onto the centi-GPU allocation grid: the scale
                // factor is a fresh f64 every session (free space moves
                // with in-flight releases), and an unsnapped product
                // would hand the plan cache one novel key per session.
                // Flooring keeps the squeezed sum within the free space.
                d.gpu = ((d.gpu * k * 100.0).floor() / 100.0).max(1e-3);
            }
        }

        let (mode, policy) = strategies(&self.config);
        // Disjoint field borrows: the plan-cache closure reads specs and
        // states while the cache and progress tracker are written.
        let AdaInfScheduler {
            config,
            profiler,
            specs,
            states,
            cache,
            progress,
            ..
        } = self;
        let mut plans: Vec<JobPlan> = division
            .iter()
            .zip(&gpu_demands)
            .map(|(d, job)| {
                let state = &states[job.app];
                let spec = &specs[job.app];
                let (cuts, batch, slices) = if config.decision_cache {
                    // The pool-independent plan is memoised; only the
                    // clamp against the live pools runs per session.
                    let plan = cache.plan(job.app, job.requests, d.gpu, || {
                        plan_time(
                            spec,
                            &state.ridag,
                            state.cuts.clone(),
                            d.gpu,
                            job.requests,
                            config,
                            profiler,
                        )
                    });
                    let slices = clamp_slices(&plan.proto, &ctx.pool_remaining[job.app]);
                    (plan.cuts.clone(), plan.batch, slices)
                } else {
                    let acc_table = &state.acc_table;
                    let acc = |node: usize, cut: usize| -> f64 {
                        acc_table
                            .get(node)
                            .and_then(|entries| {
                                entries.iter().find(|(c, _)| *c == cut).map(|(_, a)| *a)
                            })
                            .unwrap_or(0.0)
                    };
                    let alloc = allocate_time(
                        spec,
                        &state.ridag,
                        &acc,
                        &state.initial_acc,
                        d.gpu,
                        job.requests,
                        &ctx.pool_remaining[job.app],
                        config,
                        profiler,
                    );
                    (alloc.cuts, alloc.batch, alloc.slices)
                };
                for s in &slices {
                    progress.record_slice(
                        job.app,
                        s.node,
                        s.samples,
                        s.time.mul_f64(d.gpu),
                        ctx.now,
                    );
                }
                JobPlan {
                    app: job.app,
                    gpu: d.gpu,
                    batch,
                    cuts,
                    retrain: slices,
                    exec: mode,
                    eviction: policy,
                    serial: false,
                    cpu: false,
                }
            })
            .collect();
        for app in cpu_jobs {
            plans.push(JobPlan {
                app,
                gpu: 0.0,
                batch: 1,
                cuts: self.specs[app].full_cuts(),
                retrain: Vec::new(),
                exec: mode,
                eviction: policy,
                serial: false,
                cpu: true,
            });
        }

        self.sched_wall_ns += wall.elapsed_nanos();
        self.sched_calls += 1;
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_apps::catalog;
    use adainf_driftgen::workload::ArrivalConfig;
    use adainf_gpusim::GpuSpec;

    fn setup(n_apps: usize) -> (AdaInfScheduler, Vec<AppRuntime>, GpuSpec) {
        let root = Prng::new(55);
        let specs = catalog::apps_for_count(n_apps);
        let apps: Vec<AppRuntime> = specs
            .iter()
            .cloned()
            .map(|s| AppRuntime::new(s, ArrivalConfig::default(), 400, &root))
            .collect();
        let sched = AdaInfScheduler::new(AdaInfConfig::default(), Profiler::default(), specs, 7);
        (sched, apps, GpuSpec::with_gpus(4))
    }

    #[test]
    fn period_plan_contains_ri_dags() {
        let (mut sched, mut apps, server) = setup(2);
        for rt in &mut apps {
            for _ in 0..3 {
                rt.advance_period();
            }
        }
        let plan = sched.on_period_start(&mut apps, &server, SimTime::from_secs(150));
        assert_eq!(plan.apps.len(), 2);
        assert!(plan.bulk.is_empty());
        assert_eq!(plan.edge_cloud_bytes, 0);
        // At least one model somewhere should be flagged after 3 drifted
        // periods (app 0 has a severe node).
        let total: usize = plan.apps.iter().map(|a| a.ri_entries.len()).sum();
        assert!(total >= 1, "no drift detected at all");
    }

    #[test]
    fn session_plans_fit_capacity_and_slo() {
        let (mut sched, mut apps, server) = setup(3);
        for rt in &mut apps {
            rt.advance_period();
        }
        sched.on_period_start(&mut apps, &server, SimTime::from_secs(50));
        let predicted = vec![16u32, 32, 8];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let ctx = SessionCtx {
            now: SimTime::from_secs(50),
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(100),
            pool_remaining: &pools,
        };
        let plans = sched.on_session(&ctx);
        assert_eq!(plans.len(), 3);
        let total_gpu: f64 = plans.iter().map(|p| p.gpu).sum();
        assert!(total_gpu <= 4.0 + 1e-9, "over-committed {total_gpu}");
        for p in &plans {
            assert!(p.batch >= 1);
            assert_eq!(p.cuts.len(), apps[p.app].spec.nodes.len());
            // Slice budgets must fit inside the SLO.
            let retrain_ms: f64 = p.retrain.iter().map(|s| s.time.as_millis_f64()).sum();
            assert!(retrain_ms <= apps[p.app].spec.slo.as_millis_f64() + 1e-6);
        }
        assert!(sched.mean_sched_wall().as_micros() < 50_000);
    }

    #[test]
    fn capacity_squeeze_scales_allocations() {
        let (mut sched, mut apps, server) = setup(2);
        sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let predicted = vec![32u32, 32];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let mut ctx = SessionCtx {
            now: SimTime::ZERO,
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(50),
            pool_remaining: &pools,
        };
        let roomy: f64 = sched.on_session(&ctx).iter().map(|p| p.gpu).sum();
        ctx.free_gpus = 0.05;
        let squeezed: f64 = sched.on_session(&ctx).iter().map(|p| p.gpu).sum();
        assert!(squeezed <= 0.05 + 1e-6);
        assert!(squeezed < roomy);
    }

    #[test]
    fn no_requests_no_plans() {
        let (mut sched, mut apps, server) = setup(1);
        sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let predicted = vec![0u32];
        let pools = vec![vec![0usize; 3]];
        let ctx = SessionCtx {
            now: SimTime::ZERO,
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(50),
            pool_remaining: &pools,
        };
        assert!(sched.on_session(&ctx).is_empty());
    }

    #[test]
    fn cpu_offload_serves_small_jobs_on_cpu() {
        let (_, mut apps, server) = setup(2);
        let specs: Vec<AppSpec> = apps.iter().map(|a| a.spec.clone()).collect();
        let config = AdaInfConfig {
            cpu_offload_threshold: 4,
            ..AdaInfConfig::default()
        };
        let mut sched = AdaInfScheduler::new(config, Profiler::default(), specs, 7);
        sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let predicted = vec![2u32, 48];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let ctx = SessionCtx {
            now: SimTime::ZERO,
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(60),
            pool_remaining: &pools,
        };
        let plans = sched.on_session(&ctx);
        assert_eq!(plans.len(), 2);
        let small = plans.iter().find(|p| p.app == 0).unwrap();
        let big = plans.iter().find(|p| p.app == 1).unwrap();
        assert!(small.cpu, "2-request job should go to the CPU");
        assert_eq!(small.gpu, 0.0);
        assert!(small.retrain.is_empty());
        assert!(!big.cpu, "48-request job stays on the GPU");
        assert!(big.gpu > 0.0);
    }

    #[test]
    fn joint_batch_space_produces_valid_plans() {
        let (_, mut apps, server) = setup(2);
        let specs: Vec<AppSpec> = apps.iter().map(|a| a.spec.clone()).collect();
        let config = AdaInfConfig {
            joint_batch_space: true,
            ..AdaInfConfig::default()
        };
        let mut sched = AdaInfScheduler::new(config, Profiler::default(), specs, 7);
        sched.on_period_start(&mut apps, &server, SimTime::ZERO);
        let predicted = vec![32u32, 32];
        let pools: Vec<Vec<usize>> = apps
            .iter()
            .map(|rt| rt.pools.iter().map(|p| p.remaining()).collect())
            .collect();
        let ctx = SessionCtx {
            now: SimTime::ZERO,
            predicted: &predicted,
            server: &server,
            free_gpus: 4.0,
            avg_job_time: SimDuration::from_millis(60),
            pool_remaining: &pools,
        };
        let plans = sched.on_session(&ctx);
        assert_eq!(plans.len(), 2);
        for p in &plans {
            assert!(p.gpu > 0.0 && p.gpu <= 1.0);
            assert!(p.batch >= 1);
        }
    }

    #[test]
    fn variant_u_keeps_first_dag() {
        let (_, mut apps, server) = setup(1);
        let specs = vec![apps[0].spec.clone()];
        let mut sched =
            AdaInfScheduler::new(AdaInfConfig::variant_u(), Profiler::default(), specs, 7);
        for _ in 0..2 {
            apps[0].advance_period();
        }
        let p1 = sched.on_period_start(&mut apps, &server, SimTime::from_secs(100));
        let first: Vec<_> = p1.apps[0].ri_entries.clone();
        for _ in 0..3 {
            apps[0].advance_period();
        }
        let p2 = sched.on_period_start(&mut apps, &server, SimTime::from_secs(250));
        assert_eq!(
            first, p2.apps[0].ri_entries,
            "variant U must not update the DAG"
        );
    }
}
