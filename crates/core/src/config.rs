//! AdaInf tunables and ablation switches.

/// Configuration of the AdaInf scheduler. Defaults are the paper's (§4):
/// `α = 0.4`, `A_m` within `[80 %, 95 %]`, `S` starting at 3 % with 3 %
/// increments, stability after 4 unchanged rounds.
#[derive(Clone, Debug)]
pub struct AdaInfConfig {
    /// Weight of the SLO term in the eviction score `S_c` (§3.4.2).
    pub alpha: f64,
    /// Accuracy threshold `A_m` for early-exit structure selection
    /// (§3.3.2), as a fraction of the model's *initial* accuracy rather
    /// than an absolute value, so it adapts across tasks of different
    /// difficulty. 0.9 ⇒ an exit must retain ≥ 90 % of `I_m`.
    pub a_m: f64,
    /// Initial fraction `S` of new samples inspected by the drift
    /// detector (§3.2).
    pub s_init: f64,
    /// Increment of `S` per detection round.
    pub s_step: f64,
    /// Rounds without change after which detection stops (`n` in §3.2).
    pub stable_rounds: usize,
    /// PCA components used before cosine distances (§3.2).
    pub pca_components: usize,
    /// Detection margin: a model is impacted when `I_m − I'_m` exceeds
    /// this (guards against finite-sample noise on small `S`).
    pub detect_margin: f64,
    /// Retraining batch size used by incremental slices.
    pub retrain_batch: u32,
    /// Epochs per retraining slice.
    pub retrain_epochs: u32,
    /// §6 extension: sessions predicting at most this many requests are
    /// served on the host CPU, freeing GPU space (0 disables).
    pub cpu_offload_threshold: u32,
    /// §6 extension: decide request batch size and GPU fraction jointly
    /// in one shot instead of choosing the batch at full GPU and
    /// re-adjusting after allocation ("Design Challenge").
    pub joint_batch_space: bool,
    /// Memoise the per-session scheduling searches (§3.3) keyed on the
    /// exact bit patterns of their inputs. Purely a performance switch:
    /// cache hits replay decisions bit-identically, so results never
    /// depend on this flag (enforced by the golden determinism tests,
    /// which run with it off).
    pub decision_cache: bool,
    /// Share drift-detection artifacts (feature matrices, PCA fits,
    /// deviation rankings, correctness prefix-sums) across consumers
    /// within a period instead of rebuilding per lookup. PCA randomness
    /// is keyed by `(period, node)` child streams, so cached and rebuilt
    /// artifacts are bit-identical — purely a performance switch.
    pub drift_artifact_cache: bool,
    /// Admit against *learned* latency forecasts instead of the analytic
    /// inputs: an online per-app ridge regressor (see [`crate::predict`])
    /// streams an observation from every completed job, and once warm its
    /// predicted `fixed`/`per_batch` replace the analytic values inside
    /// the SLO-aware admission decision. Default **off**: the pristine
    /// goldens pin the analytic path, and calibration metrics
    /// (`predicted_latency_mae_us`, `headroom_violation_rate`) are only
    /// collected when this is on. Turning it on does not perturb
    /// fault-free behaviour — admission still only runs inside fault
    /// windows — so pristine runs stay bit-identical either way.
    pub predicted_latency: bool,
    /// Observations each app's latency model needs before its forecasts
    /// are used; below this the admission path falls back to the
    /// analytic inputs bit-exactly.
    pub predictor_warmup: u32,
    /// Build the period's drift artifacts concurrently (one scoped-thread
    /// fan-out over all stale `(app, node)` entries) before the detection
    /// sweep reads them. Each build is an independent pure function of
    /// its key, warm-start input and root stream, so the results are
    /// bit-identical to sequential builds — purely a performance switch.
    /// Only effective together with [`Self::drift_artifact_cache`].
    pub drift_parallel_build: bool,
    /// Overlap the period boundary's drift work with the boundary's own
    /// drift-independent bookkeeping: stale artifact inputs are
    /// snapshotted at their `(pool generation, model version)` keys and
    /// built on a detached background stage while the accuracy tables
    /// refresh, then joined per application as the detection sweep
    /// reaches them. Results are index-addressed pure functions of the
    /// snapshots, so the joined state is bit-identical to the inline
    /// build at any worker count — purely a performance switch (pinned
    /// by the overlap ≡ inline property tests). Only effective together
    /// with [`Self::drift_artifact_cache`] and
    /// [`Self::drift_parallel_build`].
    pub drift_overlap: bool,
    /// Worker threads for the background drift stage (0 = the host's
    /// available parallelism). Exposed so the determinism tests can pin
    /// exact worker counts; results never depend on it.
    pub drift_workers: usize,

    // ---- Ablation switches (§5.2) ----
    /// `false` = AdaInf/I: spare time divided evenly instead of by impact.
    pub use_impact_degrees: bool,
    /// `false` = AdaInf/U: the RI-DAG is built once and never updated.
    pub update_dag_each_period: bool,
    /// `false` = AdaInf/S: GPU space divided evenly among the session's
    /// jobs instead of by SLO-derived demand.
    pub slo_aware_space: bool,
    /// `false` = AdaInf/E: always use the full structure.
    pub use_early_exit: bool,
    /// `false` = AdaInf/M1: per-request execution, no eager intermediate
    /// eviction.
    pub maximize_memory_usage: bool,
    /// `false` = AdaInf/M2: LRU eviction instead of priority + PIN.
    pub priority_eviction: bool,
    /// `false` disables retraining entirely (the "Early-w/o" reference
    /// of Fig 7).
    pub retraining_enabled: bool,
}

impl Default for AdaInfConfig {
    fn default() -> Self {
        AdaInfConfig {
            alpha: 0.4,
            a_m: 0.9,
            s_init: 0.03,
            s_step: 0.03,
            stable_rounds: 4,
            pca_components: 8,
            detect_margin: 0.05,
            retrain_batch: 32,
            retrain_epochs: 1,
            cpu_offload_threshold: 0,
            joint_batch_space: false,
            decision_cache: true,
            drift_artifact_cache: true,
            predicted_latency: false,
            predictor_warmup: 64,
            drift_parallel_build: true,
            drift_overlap: true,
            drift_workers: 0,
            use_impact_degrees: true,
            update_dag_each_period: true,
            slo_aware_space: true,
            use_early_exit: true,
            maximize_memory_usage: true,
            priority_eviction: true,
            retraining_enabled: true,
        }
    }
}

impl AdaInfConfig {
    /// AdaInf/I — even spare-time division.
    pub fn variant_i() -> Self {
        AdaInfConfig {
            use_impact_degrees: false,
            ..AdaInfConfig::default()
        }
    }

    /// AdaInf/U — RI-DAG built once, impact degrees never updated.
    pub fn variant_u() -> Self {
        AdaInfConfig {
            update_dag_each_period: false,
            ..AdaInfConfig::default()
        }
    }

    /// AdaInf/S — even GPU space division.
    pub fn variant_s() -> Self {
        AdaInfConfig {
            slo_aware_space: false,
            ..AdaInfConfig::default()
        }
    }

    /// AdaInf/E — full structures only.
    pub fn variant_e() -> Self {
        AdaInfConfig {
            use_early_exit: false,
            ..AdaInfConfig::default()
        }
    }

    /// AdaInf/M1 — no layer-grouped execution / eager eviction.
    pub fn variant_m1() -> Self {
        AdaInfConfig {
            maximize_memory_usage: false,
            ..AdaInfConfig::default()
        }
    }

    /// AdaInf/M2 — LRU eviction.
    pub fn variant_m2() -> Self {
        AdaInfConfig {
            priority_eviction: false,
            ..AdaInfConfig::default()
        }
    }

    /// Early-exit structure without any retraining ("Early-w/o", Fig 7).
    pub fn early_without_retraining() -> Self {
        AdaInfConfig {
            retraining_enabled: false,
            ..AdaInfConfig::default()
        }
    }

    /// Full structure, no retraining — the "without retraining"
    /// reference of Fig 4a.
    pub fn no_retraining() -> Self {
        AdaInfConfig {
            retraining_enabled: false,
            use_early_exit: false,
            ..AdaInfConfig::default()
        }
    }

    /// The variant's display name.
    pub fn variant_name(&self) -> &'static str {
        if !self.retraining_enabled {
            if self.use_early_exit {
                "Early-w/o"
            } else {
                "No-retrain"
            }
        } else if !self.use_impact_degrees {
            "AdaInf/I"
        } else if !self.update_dag_each_period {
            "AdaInf/U"
        } else if !self.slo_aware_space {
            "AdaInf/S"
        } else if !self.use_early_exit {
            "AdaInf/E"
        } else if !self.maximize_memory_usage {
            "AdaInf/M1"
        } else if !self.priority_eviction {
            "AdaInf/M2"
        } else {
            "AdaInf"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AdaInfConfig::default();
        assert_eq!(c.alpha, 0.4);
        assert_eq!(c.s_init, 0.03);
        assert_eq!(c.s_step, 0.03);
        assert_eq!(c.stable_rounds, 4);
        assert_eq!(c.variant_name(), "AdaInf");
    }

    #[test]
    fn variant_names() {
        assert_eq!(AdaInfConfig::variant_i().variant_name(), "AdaInf/I");
        assert_eq!(AdaInfConfig::variant_u().variant_name(), "AdaInf/U");
        assert_eq!(AdaInfConfig::variant_s().variant_name(), "AdaInf/S");
        assert_eq!(AdaInfConfig::variant_e().variant_name(), "AdaInf/E");
        assert_eq!(AdaInfConfig::variant_m1().variant_name(), "AdaInf/M1");
        assert_eq!(AdaInfConfig::variant_m2().variant_name(), "AdaInf/M2");
        assert_eq!(
            AdaInfConfig::early_without_retraining().variant_name(),
            "Early-w/o"
        );
    }
}
