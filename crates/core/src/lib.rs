//! # adainf-core
//!
//! The AdaInf scheduler (§3): data-drift-aware joint scheduling of
//! retraining and inference for multi-model applications on an edge
//! server's GPUs.
//!
//! Components, one module per mechanism in the paper:
//!
//! * [`plan`] — the scheduler interface shared with the baselines: a
//!   period-level hook (drift detection, retraining-inference DAG
//!   generation, bulk/cloud retraining plans) and a session-level hook
//!   (per-job GPU fraction, batch size, structure choice, retraining
//!   slices).
//! * [`drift_detect`] — §3.2: PCA + cosine-distance selection of the most
//!   deviating `S` samples, iterative growth of `S` until the detected
//!   set stabilises, and per-model impact degrees.
//! * [`drift_cache`] — the per-period drift artifact cache: features,
//!   PCA fits, deviation rankings and correctness prefix-sums computed
//!   once per `(app, node, period, model version)` and shared between
//!   detection and retraining-order selection, with PCA randomness on
//!   keyed child streams so caching is bit-transparent.
//! * [`ridag`] — §3.2: the retraining-inference DAG of one application.
//! * [`profiler`] — the stand-in for AdaInf's offline profiling: batch ×
//!   structure latency tables at full GPU and communication-inflation
//!   factors per memory strategy.
//! * [`regression`] — the non-linear (power-law) regression of \[3\] used
//!   to scale latencies between GPU fractions and to invert for the
//!   required fraction.
//! * [`space`] — §3.3.1: GPU space division among the jobs of a session,
//!   proportional to their SLO-derived demand.
//! * [`timealloc`] — §3.3.2: splitting a job's SLO time between inference
//!   and retraining, early-exit structure selection under the accuracy
//!   threshold `A_m`, impact-proportional retraining-time division and
//!   retraining-setting selection.
//! * [`degrade`] — graceful-degradation decisions for overloaded
//!   sessions: SLO-aware admission control, inference-only fallback and
//!   bounded reload retry, driven by the harness's fault injection.
//! * [`predict`] — online per-application latency prediction (streaming
//!   ridge regression) and the SLO-headroom scorer that feeds learned
//!   `fixed`/`per_batch` forecasts into [`degrade`]'s admission when
//!   [`AdaInfConfig::predicted_latency`] is on.
//! * [`config`] — all tunables (α, `A_m`, `S`…) and the ablation switches
//!   (/I, /U, /S, /E, /M1, /M2 of §5.2).
//! * [`cache`] — exact memoisation of the per-session scheduling
//!   searches, invalidated at period boundaries.
//! * [`scheduler`] — [`scheduler::AdaInfScheduler`], tying it together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod degrade;
pub mod drift_cache;
pub mod drift_detect;
pub mod incremental;
pub mod plan;
pub mod predict;
pub mod profiler;
pub mod regression;
pub mod ridag;
pub mod scheduler;
pub mod space;
pub mod timealloc;

pub use config::AdaInfConfig;
pub use degrade::DegradePolicy;
pub use plan::{JobPlan, PeriodPlan, RetrainSlice, Scheduler, SessionCtx};
pub use predict::{LatencyFeatures, LatencyPredictor, PredictedLatency};
pub use scheduler::AdaInfScheduler;
