//! Incremental-retraining progress bookkeeping.
//!
//! The RI-DAG tells the scheduler *what* to retrain; this module tracks
//! *how far* each model's incremental retraining has progressed within
//! the current period — slices issued, samples consumed versus the pool,
//! and the point at which the pool is exhausted. The tracker backs the
//! Fig 7b series (per-period retraining time and sample consumption) and
//! gives operators a live view of where each model stands.

use adainf_simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Progress of one model's retraining within the current period.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeProgress {
    /// Retraining slices applied this period.
    pub slices: u32,
    /// Samples consumed this period.
    pub samples: u32,
    /// Pool size at the period start (0 if the node is not retraining).
    pub pool_total: u32,
    /// GPU time spent retraining this period.
    pub gpu_time: SimDuration,
    /// When the pool was exhausted, if it was.
    pub completed_at: Option<SimTime>,
}

impl NodeProgress {
    /// Completed fraction of the pool (1.0 when the pool was empty).
    pub fn fraction(&self) -> f64 {
        if self.pool_total == 0 {
            1.0
        } else {
            (self.samples as f64 / self.pool_total as f64).min(1.0)
        }
    }

    /// Whether the pool has been fully consumed.
    pub fn complete(&self) -> bool {
        self.samples >= self.pool_total
    }
}

/// Per-(app, node) progress tracking across periods.
#[derive(Clone, Debug, Default)]
pub struct RetrainProgress {
    current: BTreeMap<(usize, usize), NodeProgress>,
    /// Completed periods' summaries, in order.
    history: Vec<Vec<((usize, usize), NodeProgress)>>,
}

impl RetrainProgress {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        RetrainProgress::default()
    }

    /// Starts a new period: the current state is archived and the node
    /// set re-registered with its pool sizes.
    pub fn start_period(&mut self, pools: impl IntoIterator<Item = ((usize, usize), u32)>) {
        if !self.current.is_empty() {
            // BTreeMap iterates in key order, so the snapshot is sorted.
            let snapshot: Vec<_> = std::mem::take(&mut self.current).into_iter().collect();
            self.history.push(snapshot);
        }
        for (key, pool_total) in pools {
            self.current.insert(
                key,
                NodeProgress {
                    pool_total,
                    ..NodeProgress::default()
                },
            );
        }
    }

    /// Records one applied slice.
    pub fn record_slice(
        &mut self,
        app: usize,
        node: usize,
        samples: u32,
        gpu_time: SimDuration,
        now: SimTime,
    ) {
        let p = self.current.entry((app, node)).or_default();
        p.slices += 1;
        p.samples += samples;
        p.gpu_time += gpu_time;
        if p.completed_at.is_none() && p.pool_total > 0 && p.samples >= p.pool_total {
            p.completed_at = Some(now);
        }
    }

    /// Progress of `(app, node)` this period.
    pub fn node(&self, app: usize, node: usize) -> NodeProgress {
        self.current.get(&(app, node)).copied().unwrap_or_default()
    }

    /// Mean completed fraction across the registered nodes this period.
    pub fn mean_fraction(&self) -> f64 {
        if self.current.is_empty() {
            return 1.0;
        }
        self.current.values().map(NodeProgress::fraction).sum::<f64>()
            / self.current.len() as f64
    }

    /// Total GPU time spent retraining this period.
    pub fn gpu_time(&self) -> SimDuration {
        self.current
            .values()
            .fold(SimDuration::ZERO, |acc, p| acc + p.gpu_time)
    }

    /// Archived per-period snapshots.
    pub fn history(&self) -> &[Vec<((usize, usize), NodeProgress)>] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_slices_to_completion() {
        let mut p = RetrainProgress::new();
        p.start_period(vec![((0, 1), 100), ((0, 2), 50)]);
        p.record_slice(0, 1, 40, SimDuration::from_millis(10), SimTime::from_secs(1));
        p.record_slice(0, 1, 60, SimDuration::from_millis(15), SimTime::from_secs(2));
        let n = p.node(0, 1);
        assert_eq!(n.slices, 2);
        assert_eq!(n.samples, 100);
        assert!(n.complete());
        assert_eq!(n.completed_at, Some(SimTime::from_secs(2)));
        assert_eq!(n.gpu_time, SimDuration::from_millis(25));
        // Node 2 untouched: fraction 0.
        assert_eq!(p.node(0, 2).fraction(), 0.0);
        assert!((p.mean_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn period_rollover_archives() {
        let mut p = RetrainProgress::new();
        p.start_period(vec![((0, 1), 10)]);
        p.record_slice(0, 1, 10, SimDuration::from_millis(1), SimTime::from_secs(1));
        p.start_period(vec![((0, 1), 20)]);
        assert_eq!(p.history().len(), 1);
        assert_eq!(p.history()[0][0].1.samples, 10);
        assert_eq!(p.node(0, 1).samples, 0);
        assert_eq!(p.node(0, 1).pool_total, 20);
    }

    #[test]
    fn empty_pool_counts_as_complete() {
        let mut p = RetrainProgress::new();
        p.start_period(vec![((1, 0), 0)]);
        assert_eq!(p.node(1, 0).fraction(), 1.0);
        assert_eq!(p.mean_fraction(), 1.0);
    }

    #[test]
    fn unknown_node_is_default() {
        let p = RetrainProgress::new();
        let n = p.node(9, 9);
        assert_eq!(n.slices, 0);
        assert_eq!(n.fraction(), 1.0);
    }
}
