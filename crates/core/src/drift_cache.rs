//! Per-period drift artifact cache.
//!
//! The §3.2 detection loop and the §3.3.2 retraining-order selection
//! consume the same expensive artifacts — feature matrices, a PCA fit of
//! the old training data, projections, per-class means and deviation
//! rankings — and historically recomputed them per consumer: twice inside
//! `detect_drift` (pool + reference rankings each refit the PCA) and a
//! third time in `retrain_order` for every impacted node. This module
//! computes each node's artifacts **exactly once per period** and shares
//! them.
//!
//! Determinism: PCA-fit randomness is routed through a child [`Prng`]
//! stream derived from the scheduler's root stream via [`Prng::split`],
//! keyed by `(period, node)`. A cached fit is therefore draw-identical to
//! a refit — the artifacts are a pure function of `(pool generation,
//! model version, root stream)`, which is exactly the cache key.
//!
//! Invalidation: entries are keyed by `(app, node)` and tagged with
//! `(pool generation, model version)`. The pool generation is the
//! runtime's period counter — `advance_period` wholesale-replaces pools
//! and reference sets, so any period bump invalidates. The model version
//! bumps on every retraining slice and parameter load, so a retrained
//! model never serves stale rankings.

use adainf_apps::AppRuntime;
use adainf_driftgen::LabeledSamples;
use adainf_modelzoo::TrainableModel;
use adainf_nn::metrics::cosine_distance;
use adainf_nn::pca::{Pca, PcaScratch};
use adainf_nn::{InferScratch, Matrix};
use adainf_simcore::parallel::fan_out_indexed_owned;
use adainf_simcore::Prng;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Stream label base for the per-`(period, node)` PCA child streams.
/// Mixed (not added) so labels cannot collide with other subsystem
/// streams split from the same root.
const PCA_STREAM: u64 = 0xD21F_7000;

/// Everything the drift pipeline needs about one `(app, node)` in one
/// period, computed in a single pass over the data. `PartialEq`
/// compares the rankings exactly and the matrices element-wise — the
/// parallel ≡ sequential property tests additionally assert `to_bits`
/// equality on the float payloads to rule out signed-zero drift.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DriftArtifacts {
    /// Pool-sample indices by descending deviation from the old training
    /// data (§3.2) — a permutation of `0..pool.len()`.
    pub deviation: Vec<usize>,
    /// The §3.3.2 retraining consumption order: the deviation ranking's
    /// most-deviating half interleaved 1:1 with the remainder.
    pub retrain: Vec<usize>,
    /// Held-out reference samples ranked by the same deviation metric.
    pub ref_order: Vec<usize>,
    /// `pool_prefix[i]` = correct predictions (at the full cut) among the
    /// first `i` samples of `deviation`, with `pool_prefix[0] == 0`.
    /// Prefix accuracy is `prefix[take] / take`, bit-equal to
    /// `accuracy_on` over the same prefix subset. Extended **lazily** via
    /// [`Self::pool_prefix_at`] to the deepest `take` any consumer has
    /// asked for — the `S`-growth loop usually stops well short of the
    /// full pool, so samples past its deepest cut are never predicted.
    pub pool_prefix: Vec<u32>,
    /// Same lazily-extended prefix-sum over `ref_order` for the held-out
    /// reference set (see [`Self::ref_prefix_at`]).
    pub ref_prefix: Vec<u32>,
    /// The fitted PCA basis (one unit row per component), kept as the
    /// warm-start seed for the next period's fit of the same
    /// `(app, node)`. Empty when the node had no old data to fit.
    pub basis: Matrix,
    /// The pool's feature matrix at this entry's model version, kept as
    /// the next period's old-feature matrix: `advance_period` moves the
    /// pool verbatim into `old_samples`, and features are a pure
    /// function of (model weights, samples) — so at an unchanged model
    /// version the carried matrix is bit-identical to recomputing
    /// `features(old)`. Empty when the node had no old data (the build
    /// early-returns before any feature pass).
    pub pool_features: Matrix,
}

/// Extends a correctness prefix-sum to cover `take` samples of `order`,
/// predicting only the not-yet-covered chunk. The head forward pass is
/// row-independent, so predicting `order[done..take]` as its own batch
/// yields the same per-sample predictions as any other batching — the
/// running count is bit-equal to a full-set pass however it is grown.
/// The chunk rows are gathered into `scratch` and predicted through the
/// scratch-based forward pass: no subset clone, no per-layer
/// allocations, bit-identical predictions.
///
/// When the caller holds the samples' first-layer feature matrix (the
/// artifact build already computed it for the ranking), `features`
/// short-circuits the forward pass: the chunk gathers feature rows
/// instead of input rows and the prediction resumes above the first
/// trunk layer — bit-identical by the feature-carry identity, one dense
/// layer cheaper per predicted sample.
#[allow(clippy::too_many_arguments)]
fn extend_prefix(
    prefix: &mut Vec<u32>,
    rt: &AppRuntime,
    node: usize,
    samples: &LabeledSamples,
    features: Option<&Matrix>,
    order: &[usize],
    take: usize,
    scratch: &mut DetectScratch,
) {
    if prefix.len() > take || samples.is_empty() {
        return;
    }
    let model = &rt.models[node];
    let done = prefix.len() - 1;
    let cut = model.profile.full_cut();
    let preds = match features.filter(|f| f.rows() == samples.len()) {
        Some(f) => {
            scratch.chunk.gather_rows_from(f, &order[done..take]);
            model.predict_from_features_with_scratch(&scratch.chunk, cut, &mut scratch.infer)
        }
        None => {
            scratch
                .chunk
                .gather_rows_from(&samples.inputs, &order[done..take]);
            model.predict_with_scratch(&scratch.chunk, cut, &mut scratch.infer)
        }
    };
    let mut acc = prefix[done];
    for (p, &i) in preds.iter().zip(&order[done..take]) {
        acc += u32::from(*p == samples.labels[i]);
        prefix.push(acc);
    }
}

impl DriftArtifacts {
    /// Correct-count over the first `take` samples of the deviation
    /// ranking, extending the lazy prefix-sum as far as needed.
    pub fn pool_prefix_at(
        &mut self,
        rt: &AppRuntime,
        node: usize,
        take: usize,
        scratch: &mut DetectScratch,
    ) -> u32 {
        let samples = rt.pools[node].samples();
        extend_prefix(
            &mut self.pool_prefix,
            rt,
            node,
            samples,
            Some(&self.pool_features),
            &self.deviation,
            take,
            scratch,
        );
        self.pool_prefix[take]
    }

    /// Correct-count over the first `take` samples of the reference
    /// ranking, extending the lazy prefix-sum as far as needed.
    pub fn ref_prefix_at(
        &mut self,
        rt: &AppRuntime,
        node: usize,
        take: usize,
        scratch: &mut DetectScratch,
    ) -> u32 {
        let samples = rt.ref_samples(node);
        extend_prefix(
            &mut self.ref_prefix,
            rt,
            node,
            samples,
            None,
            &self.ref_order,
            take,
            scratch,
        );
        self.ref_prefix[take]
    }

    /// `strict-invariants` structural checks: the orders are permutations
    /// of their sample ranges and the prefix-sums are monotone running
    /// counts no longer than their sample range — the properties the
    /// S-growth loop and the pool consumer rely on without re-validating
    /// per lookup.
    fn check_invariants(&self, pool_len: usize, ref_len: usize) {
        let is_permutation = |order: &[usize], n: usize| {
            let mut seen = vec![false; n];
            order.len() == n
                && order
                    .iter()
                    .all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
        };
        assert!(
            is_permutation(&self.deviation, pool_len),
            "strict-invariants: deviation order is not a permutation of the pool"
        );
        assert!(
            is_permutation(&self.retrain, pool_len),
            "strict-invariants: retrain order is not a permutation of the pool"
        );
        assert!(
            is_permutation(&self.ref_order, ref_len),
            "strict-invariants: reference order is not a permutation of the held-out set"
        );
        let is_prefix_count = |prefix: &[u32], n: usize| {
            !prefix.is_empty()
                && prefix.len() <= n + 1
                && prefix[0] == 0
                && prefix.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] + 1)
        };
        assert!(
            is_prefix_count(&self.pool_prefix, pool_len),
            "strict-invariants: pool prefix-sum is not a running correctness count"
        );
        assert!(
            is_prefix_count(&self.ref_prefix, ref_len),
            "strict-invariants: reference prefix-sum is not a running correctness count"
        );
    }
}

/// Reusable buffers for [`build_artifacts`]: PCA scratch, feature and
/// projection matrices, the scored index list and the inference
/// ping-pong buffers of the lazy prefix extension. One instance serves
/// every node of every app — artifacts are built one at a time.
#[derive(Clone, Debug, Default)]
pub struct DetectScratch {
    pca: PcaScratch,
    /// Reference-set feature matrix.
    ref_feats: Matrix,
    projected: Matrix,
    scored: Vec<(usize, f64)>,
    /// Gathered ranked-subset rows for the prefix extension.
    chunk: Matrix,
    /// Forward-pass ping-pong buffers for the prefix extension.
    infer: InferScratch,
}

/// The exact inputs one node's artifact build reads, factored out of
/// [`AppRuntime`] so the same build code runs against two sources:
/// live runtime borrows (the inline path) and owned boundary snapshots
/// (the background path, [`DriftSnapshot`]). A build is a pure function
/// of these five values plus the warm/carry state and the root stream —
/// the equality that makes the overlapped pipeline bit-identical to
/// the inline one.
pub struct DriftInputs<'a> {
    /// Previous period's training pool — the distribution deviated from.
    pub old: &'a LabeledSamples,
    /// Current pool, ranked by deviation.
    pub pool: &'a LabeledSamples,
    /// Held-out reference set, ranked by the same metric.
    pub held_out: &'a LabeledSamples,
    /// The node's model at the build's version tag.
    pub model: &'a TrainableModel,
    /// Pool generation, keying the PCA child stream.
    pub period: u64,
}

impl<'a> DriftInputs<'a> {
    /// The live-borrow view of `(rt, node)` — what the inline build
    /// reads directly out of the runtime.
    pub fn from_runtime(rt: &'a AppRuntime, node: usize) -> Self {
        DriftInputs {
            old: rt.old_samples(node),
            pool: rt.pools[node].samples(),
            held_out: rt.ref_samples(node),
            model: &rt.models[node],
            period: rt.period(),
        }
    }
}

/// Mean projected old-feature vector per class, accumulated in one
/// ascending pass over the labels. Classes unseen in the old data fall
/// back to the global mean. Bit-identical to a per-class rescan: each
/// class's sum still adds rows in ascending row order.
pub fn class_means(projected: &Matrix, labels: &[usize], classes: usize) -> Vec<Vec<f32>> {
    let k = projected.cols();
    let global_mean = projected.col_means();
    let mut sums = vec![0.0f32; classes * k];
    let mut counts = vec![0usize; classes];
    for (i, &label) in labels.iter().enumerate() {
        counts[label] += 1;
        for (m, v) in sums[label * k..(label + 1) * k]
            .iter_mut()
            .zip(projected.row(i))
        {
            *m += v;
        }
    }
    (0..classes)
        .map(|c| {
            if counts[c] == 0 {
                global_mean.clone()
            } else {
                sums[c * k..(c + 1) * k]
                    .iter()
                    .map(|&s| s / counts[c] as f32)
                    .collect()
            }
        })
        .collect()
}

/// Ranks `new` samples by descending cosine deviation of their projected
/// (pre-computed) feature vectors from the per-class means of the old
/// data.
fn rank_features(
    new: &LabeledSamples,
    features: &Matrix,
    pca: &Pca,
    means: &[Vec<f32>],
    pca_scratch: &mut PcaScratch,
    projected: &mut Matrix,
    scored: &mut Vec<(usize, f64)>,
) -> Vec<usize> {
    if new.is_empty() {
        return Vec::new();
    }
    pca.transform_into(features, pca_scratch, projected);
    scored.clear();
    scored.extend((0..new.len()).map(|i| {
        let mean = &means[new.labels[i]];
        (i, cosine_distance(projected.row(i), mean))
    }));
    // total_cmp would reorder signed zeros and perturb the golden metrics.
    // The unstable sort with the ascending-index tiebreak reproduces the
    // stable descending sort exactly: `scored` is built in ascending `i`,
    // so stable order within an equal-distance group IS ascending `i` —
    // the tiebreak — while skipping the stable sort's merge buffer.
    scored.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            // simlint: allow(no-unwrap-in-lib) — cosine distances of unit-normalised rows are finite by construction
            .expect("finite distances")
            .then(a.0.cmp(&b.0))
    });
    scored.iter().map(|&(i, _)| i).collect()
}

/// Interleaves the deviation ranking into the §3.3.2 retraining order:
/// most-deviating half 1:1 with the remainder, odd tail appended.
fn interleave(ranked: &[usize]) -> Vec<usize> {
    let n = ranked.len();
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..half {
        out.push(ranked[i]);
        if half + i < n {
            out.push(ranked[half + i]);
        }
    }
    if n % 2 == 1 {
        out.push(ranked[n - 1]);
    }
    out
}

/// The deviation rankings of the pool and (optionally) the held-out
/// reference set, from one feature pass over the old data and **one**
/// shared PCA fit, plus the fitted basis for warm-starting the next
/// period and the pool's feature matrix for carrying into the next
/// period's old-feature slot. The pool ranking never depends on whether
/// the reference ranking is computed — the keyed PCA stream is consumed
/// identically either way.
///
/// `carry` is an owned buffer with two roles. When its row count matches
/// the old set, it is the previous period's pool-feature matrix at an
/// unchanged model version: `advance_period` moves the pool verbatim
/// into the old set and features are a pure function of (model weights,
/// samples), so reading it instead of recomputing `features(old)` is
/// bit-identical. Otherwise only its allocation is reused (callers clear
/// invalid carries to zero rows). Either way the same buffer is then
/// overwritten with the pool's features — the old features are dead once
/// the projections are done — and returned as the artifact's
/// next-period carry, so the steady state recycles one feature
/// allocation per `(app, node)` instead of faulting in a fresh matrix
/// every period.
#[allow(clippy::too_many_arguments)]
fn rankings(
    inputs: &DriftInputs<'_>,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
    with_ref: bool,
    warm: Option<&Matrix>,
    carry: Matrix,
) -> (Vec<usize>, Vec<usize>, Matrix, Matrix) {
    let &DriftInputs {
        old,
        pool,
        held_out,
        model,
        period,
    } = inputs;
    if old.is_empty() {
        // No old data to deviate from: identity orders, nothing fitted.
        return (
            (0..pool.len()).collect(),
            (0..held_out.len()).collect(),
            Matrix::default(),
            Matrix::default(),
        );
    }
    let DetectScratch {
        pca: pca_scratch,
        ref_feats,
        projected,
        scored,
        ..
    } = scratch;
    let mut feats = carry;
    if feats.rows() != old.len() {
        model.features_into(old, &mut feats);
    }
    let mut rng = root.split(PCA_STREAM ^ (period << 16) ^ node as u64);
    let pca = Pca::fit_warm_with_scratch(&feats, pca_components, &mut rng, pca_scratch, warm);
    pca.transform_into(&feats, pca_scratch, projected);
    let means = class_means(projected, &old.labels, model.classes());
    // The old features are dead from here on: overwrite the buffer with
    // the pool's features and hand it back as the next-period carry.
    model.features_into(pool, &mut feats);
    let deviation = rank_features(pool, &feats, &pca, &means, pca_scratch, projected, scored);
    let ref_order = if with_ref {
        model.features_into(held_out, ref_feats);
        rank_features(held_out, ref_feats, &pca, &means, pca_scratch, projected, scored)
    } else {
        Vec::new()
    };
    (deviation, ref_order, pca.into_components(), feats)
}

/// The pool deviation ranking alone — the cheap subset of
/// [`build_artifacts`] for consumers that never read the prefix-sums or
/// the reference order (standalone order queries outside the scheduler's
/// cached detection path). Bit-equal to `build_artifacts(..).deviation`,
/// at none of the cost of the two full-set correctness passes.
pub fn build_deviation_ranking(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
) -> Vec<usize> {
    let inputs = DriftInputs::from_runtime(rt, node);
    rankings(
        &inputs,
        node,
        pca_components,
        root,
        scratch,
        false,
        None,
        Matrix::default(),
    )
    .0
}

/// The §3.3.2 retraining order alone — [`build_deviation_ranking`]'s
/// interleave, bit-equal to `build_artifacts(..).retrain`.
pub fn build_retrain_order(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
) -> Vec<usize> {
    interleave(&build_deviation_ranking(
        rt,
        node,
        pca_components,
        root,
        scratch,
    ))
}

/// Builds one node's ranked artifact set — both deviation rankings and
/// the retraining interleave — with the correctness prefix-sums left at
/// their seed (`[0]`), to be extended lazily by
/// [`DriftArtifacts::pool_prefix_at`] / [`DriftArtifacts::ref_prefix_at`]
/// as deep as the detection loop actually reads.
///
/// PCA randomness comes from `root.split(...)` keyed by the runtime's
/// period and the node, never from an advancing caller stream — so the
/// result is reproducible from the key and the warm-start basis alone:
/// replaying a build with the same `warm` input is bit-identical.
fn build_ranked(
    inputs: &DriftInputs<'_>,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
    warm: Option<&Matrix>,
    carry: Matrix,
) -> DriftArtifacts {
    let (deviation, ref_order, basis, pool_features) =
        rankings(inputs, node, pca_components, root, scratch, true, warm, carry);
    let retrain = interleave(&deviation);
    let artifacts = DriftArtifacts {
        deviation,
        retrain,
        ref_order,
        pool_prefix: vec![0],
        ref_prefix: vec![0],
        basis,
        pool_features,
    };
    if cfg!(feature = "strict-invariants") {
        artifacts.check_invariants(inputs.pool.len(), inputs.held_out.len());
    }
    artifacts
}

/// Builds one node's complete artifact set: one feature pass over the old
/// data, **one** shared PCA fit, one projection per sample set, one
/// deviation ranking each for the pool and the held-out reference, the
/// retraining interleave and both correctness prefix-sums extended to
/// their full sample sets.
pub fn build_artifacts(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
) -> DriftArtifacts {
    let inputs = DriftInputs::from_runtime(rt, node);
    let mut artifacts = build_ranked(&inputs, node, pca_components, root, scratch, None, Matrix::default());
    let pool_len = artifacts.deviation.len();
    let ref_len = artifacts.ref_order.len();
    if pool_len > 0 {
        artifacts.pool_prefix_at(rt, node, pool_len, scratch);
    }
    if ref_len > 0 {
        artifacts.ref_prefix_at(rt, node, ref_len, scratch);
    }
    artifacts
}

/// One stale prebuild job: its `(app, node)` slot, the key to build at,
/// the warm-start input resolved for it and the old-feature carry taken
/// from the evicted entry. The job **owns** both matrices, so the
/// fan-out can move each job wholesale to exactly one worker — no
/// shared slot, no lock.
type PrebuildJob = ((usize, usize), (u64, u64), Option<Matrix>, Matrix);

/// An owned boundary snapshot of everything one stale `(app, node)`
/// artifact build reads — the unit of work handed to the background
/// stage by [`DriftCache::snapshot_stale`]. Owning clones (rather than
/// borrowing the runtime like [`DriftCache::prebuild`]'s scoped
/// fan-out) is what lets the build run on a detached thread that
/// outlives the spawning statement: the serving loop may go on mutating
/// pools and models, the snapshot's inputs are frozen at the boundary
/// key. The clone cost is a few feature-matrix-sized `memcpy`s — ~2 %
/// of the build it moves off the critical path.
#[derive(Clone)]
pub struct DriftSnapshot {
    /// The `(app, node)` cache slot this build refreshes.
    pub slot: (usize, usize),
    /// The `(pool generation, model version)` tag pinned at snapshot
    /// time.
    pub key: (u64, u64),
    period: u64,
    old: LabeledSamples,
    pool: LabeledSamples,
    held_out: LabeledSamples,
    model: TrainableModel,
    warm: Option<Matrix>,
    carry: Matrix,
    root: Prng,
}

/// A completed background build, ready for
/// [`DriftCache::insert_built`].
pub struct BuiltArtifacts {
    /// The `(app, node)` cache slot to install into.
    pub slot: (usize, usize),
    key: (u64, u64),
    warm: Option<Matrix>,
    /// The built artifact set.
    pub artifacts: DriftArtifacts,
}

impl DriftSnapshot {
    /// Runs the artifact build against the snapshotted inputs —
    /// bit-identical to [`DriftCache::prebuild`] building the same key
    /// inline, because [`rankings`] reads exactly the [`DriftInputs`]
    /// values and both paths feed it the same ones.
    pub fn build(self, pca_components: usize, scratch: &mut DetectScratch) -> BuiltArtifacts {
        let inputs = DriftInputs {
            old: &self.old,
            pool: &self.pool,
            held_out: &self.held_out,
            model: &self.model,
            period: self.period,
        };
        let artifacts = build_ranked(
            &inputs,
            self.slot.1,
            pca_components,
            &self.root,
            scratch,
            self.warm.as_ref(),
            self.carry,
        );
        BuiltArtifacts {
            slot: self.slot,
            key: self.key,
            warm: self.warm,
            artifacts,
        }
    }
}

/// One cache slot: the tag it was built for, the warm-start input that
/// build consumed, and the artifacts themselves.
#[derive(Clone, Debug)]
struct CacheEntry {
    /// `(pool generation, model version)` the artifacts were built at.
    key: (u64, u64),
    /// The warm-start basis this entry's build consumed (`None` = cold
    /// keyed-random start). Kept so a same-key rebuild (disabled cache)
    /// replays the original build bit for bit.
    warm_input: Option<Matrix>,
    artifacts: DriftArtifacts,
}

impl CacheEntry {
    /// The warm-start input a build at `key` should consume given this
    /// prior entry.
    ///
    /// * Same key — a replay (only the disabled cache rebuilds in place):
    ///   reuse the exact input of the original build, so the rebuild is
    ///   bit-identical.
    /// * Next pool generation at an unchanged model version — the
    ///   previous period's basis is a valid warm start: the old-sample
    ///   distribution moves gradually, so the dominant subspace barely
    ///   rotates.
    /// * Anything else — a model-version bump (retraining rotated the
    ///   feature space) or a generation jump — invalidates the warm
    ///   state; the build falls back to the keyed random start.
    fn warm_for(&self, key: (u64, u64)) -> Option<Matrix> {
        if self.key == key {
            return self.warm_input.clone();
        }
        let usable = self.key.1 == key.1
            && self.key.0 + 1 == key.0
            && self.artifacts.basis.rows() > 0;
        usable.then(|| self.artifacts.basis.clone())
    }

    /// Whether this entry's pool-feature matrix is a bit-valid
    /// old-feature carry for a build at `key`: adjacent pool generation
    /// at an unchanged model version — the exact condition under which
    /// `advance_period`'s pool→old move makes the carried matrix
    /// bit-identical to recomputing `features(old)`. Unlike
    /// [`Self::warm_for`], an invalid carry never changes results (the
    /// build recomputes the identical matrix), so same-key replays do
    /// not need to preserve it — the evicted matrix's *allocation* is
    /// recycled as the build's feature buffer either way.
    fn carry_valid(&self, key: (u64, u64)) -> bool {
        self.key.1 == key.1
            && self.key.0 + 1 == key.0
            && self.artifacts.pool_features.rows() > 0
    }

    /// Takes the evicted pool-feature matrix out of this entry for reuse
    /// by the replacing build: bit-valid carry contents when
    /// [`Self::carry_valid`] holds, otherwise a cleared buffer whose
    /// warmed-up allocation the build overwrites — either way the
    /// replacing build faults in no fresh feature pages.
    fn take_carry(&mut self, key: (u64, u64)) -> Matrix {
        let valid = self.carry_valid(key);
        let mut carry = std::mem::take(&mut self.artifacts.pool_features);
        if !valid {
            carry.reset_zeroed(0, 0);
        }
        carry
    }
}

/// The per-period artifact cache. Entries are keyed by `(app, node)` and
/// tagged with `(pool generation, model version)`; a tag mismatch
/// rebuilds in place, so the map never outgrows `apps × nodes` entries.
/// Rebuilds warm-start their PCA fit from the previous period's basis
/// when the model version is unchanged (see `CacheEntry::warm_for`).
#[derive(Clone, Debug)]
pub struct DriftCache {
    entries: BTreeMap<(usize, usize), CacheEntry>,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that rebuilt the artifacts.
    pub misses: u64,
    /// Rebuilds that warm-started their PCA fit from a previous basis.
    pub warm_starts: u64,
    enabled: bool,
    scratch: DetectScratch,
}

impl DriftCache {
    /// Creates the cache. With `enabled == false` every lookup rebuilds —
    /// bit-identical results either way (each rebuild replays the exact
    /// warm input of its first build, so the build stays a pure function
    /// of the key, warm state and root stream) — the flag is purely a
    /// perf switch.
    pub fn new(enabled: bool) -> Self {
        DriftCache {
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            warm_starts: 0,
            enabled,
            scratch: DetectScratch::default(),
        }
    }

    /// The artifacts of `(app, node)` for the runtime's current period
    /// and model version, building them on first use.
    pub fn artifacts(
        &mut self,
        app: usize,
        rt: &AppRuntime,
        node: usize,
        pca_components: usize,
        root: &Prng,
    ) -> &DriftArtifacts {
        let key = (rt.period(), rt.models[node].version());
        let inputs = DriftInputs::from_runtime(rt, node);
        let scratch = &mut self.scratch;
        match self.entries.entry((app, node)) {
            Entry::Occupied(mut e) => {
                if self.enabled && e.get().key == key {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                    let warm = e.get().warm_for(key);
                    self.warm_starts += u64::from(warm.is_some());
                    let carry = e.get_mut().take_carry(key);
                    let artifacts = build_ranked(
                        &inputs,
                        node,
                        pca_components,
                        root,
                        scratch,
                        warm.as_ref(),
                        carry,
                    );
                    *e.get_mut() = CacheEntry {
                        key,
                        warm_input: warm,
                        artifacts,
                    };
                }
                &e.into_mut().artifacts
            }
            Entry::Vacant(v) => {
                self.misses += 1;
                let artifacts = build_ranked(
                    &inputs,
                    node,
                    pca_components,
                    root,
                    scratch,
                    None,
                    Matrix::default(),
                );
                &v.insert(CacheEntry {
                    key,
                    warm_input: None,
                    artifacts,
                })
                .artifacts
            }
        }
    }

    /// Builds every stale `(app, node)` entry in `jobs` concurrently
    /// through the [`adainf_simcore::parallel`] owned fan-out, so a
    /// period boundary pays max-over-nodes build latency instead of the
    /// sum. Entries that are already current are skipped (they will hit
    /// on the next [`Self::artifacts`] lookup).
    ///
    /// Bit-equality with the sequential path: each build is an
    /// independent pure function of `(runtime, node, warm input, root)`
    /// — warm inputs are resolved up front on the caller's thread from
    /// the *previous* period's entries (builds of the same period never
    /// feed each other's warm state), each job writes its own slot, and
    /// insertion happens in job order on the caller's thread. A no-op
    /// when the cache is disabled, which keeps the disabled path's
    /// rebuild-per-lookup semantics intact.
    pub fn prebuild(
        &mut self,
        jobs: &[(usize, usize)],
        apps: &[AppRuntime],
        pca_components: usize,
        root: &Prng,
        threads: usize,
    ) {
        if !self.enabled {
            return;
        }
        // Resolve the stale subset, each build's warm input and its
        // old-feature carry first; the fan-out then only runs pure
        // builds. The carries are *taken out of* the previous period's
        // entries on the caller's thread and moved **into their jobs**,
        // so same-period builds never feed each other and each worker
        // receives exclusive ownership of its carries through the
        // owned fan-out's per-slot deal — index-addressed handoff, no
        // per-build lock traffic.
        let mut stale: Vec<PrebuildJob> = Vec::new();
        for &(app, node) in jobs {
            let rt = &apps[app];
            let key = (rt.period(), rt.models[node].version());
            match self.entries.get_mut(&(app, node)) {
                Some(e) if e.key == key => {}
                prior => {
                    let (warm, carry) = match prior {
                        Some(e) => (e.warm_for(key), e.take_carry(key)),
                        None => (None, Matrix::default()),
                    };
                    stale.push(((app, node), key, warm, carry));
                }
            }
        }
        let built = fan_out_indexed_owned(
            stale,
            threads,
            DetectScratch::default,
            |_, ((app, node), key, warm, carry): PrebuildJob, scratch: &mut DetectScratch| {
                let inputs = DriftInputs::from_runtime(&apps[app], node);
                let artifacts = build_ranked(
                    &inputs,
                    node,
                    pca_components,
                    root,
                    scratch,
                    warm.as_ref(),
                    carry,
                );
                ((app, node), key, warm, artifacts)
            },
        );
        for (slot, key, warm, artifacts) in built {
            self.misses += 1;
            self.warm_starts += u64::from(warm.is_some());
            self.entries.insert(
                slot,
                CacheEntry {
                    key,
                    warm_input: warm,
                    artifacts,
                },
            );
        }
    }

    /// Resolves the stale subset of `jobs` into **owned**
    /// [`DriftSnapshot`]s, in job order — the handoff step of the
    /// overlapped period pipeline. Each snapshot clones exactly the
    /// inputs its build reads (old/pool/reference sample sets, the
    /// model at its version tag) plus the warm/carry state taken from
    /// the evicted entry, so the build can run on a detached background
    /// worker while the serving loop keeps mutating the live runtime:
    /// the snapshot pins the `(pool generation, model version)` key the
    /// artifacts are defined over, which is why the background result
    /// is bit-identical to an inline build at the same key. Entries
    /// that are already current are skipped, exactly like
    /// [`Self::prebuild`]; returns nothing when the cache is disabled
    /// (the disabled path keeps its rebuild-per-lookup semantics).
    ///
    /// Every returned snapshot must come back through
    /// [`Self::insert_built`] before the next lookup of its slot —
    /// the background stage's ledger enforces the join, and the carry
    /// matrices taken here would otherwise be lost.
    pub fn snapshot_stale(
        &mut self,
        jobs: &[(usize, usize)],
        apps: &[AppRuntime],
        root: &Prng,
    ) -> Vec<DriftSnapshot> {
        if !self.enabled {
            return Vec::new();
        }
        let mut stale = Vec::new();
        for &(app, node) in jobs {
            let rt = &apps[app];
            let key = (rt.period(), rt.models[node].version());
            match self.entries.get_mut(&(app, node)) {
                Some(e) if e.key == key => {}
                prior => {
                    let (warm, carry) = match prior {
                        Some(e) => (e.warm_for(key), e.take_carry(key)),
                        None => (None, Matrix::default()),
                    };
                    stale.push(DriftSnapshot {
                        slot: (app, node),
                        key,
                        period: rt.period(),
                        old: rt.old_samples(node).clone(),
                        pool: rt.pools[node].samples().clone(),
                        held_out: rt.ref_samples(node).clone(),
                        model: rt.models[node].clone(),
                        warm,
                        carry,
                        root: root.clone(),
                    });
                }
            }
        }
        stale
    }

    /// Installs one background-built result, bumping the same counters
    /// an inline [`Self::prebuild`] insert would. Callers insert in job
    /// order, so the cache state (entries, counters, warm chains) ends
    /// bit-identical to the inline path's.
    pub fn insert_built(&mut self, built: BuiltArtifacts) {
        self.misses += 1;
        self.warm_starts += u64::from(built.warm.is_some());
        self.entries.insert(
            built.slot,
            CacheEntry {
                key: built.key,
                warm_input: built.warm,
                artifacts: built.artifacts,
            },
        );
    }

    /// Shared view of an already-built entry; `None` when
    /// [`Self::artifacts`] has not run for `(app, node)` yet.
    pub fn get(&self, app: usize, node: usize) -> Option<&DriftArtifacts> {
        self.entries.get(&(app, node)).map(|e| &e.artifacts)
    }

    /// Mutable view of an already-built entry, for lazily extending its
    /// prefix-sums in place (the extension is value-preserving, so a
    /// later hit replays exactly what a fresh build would produce).
    pub fn get_mut(&mut self, app: usize, node: usize) -> Option<&mut DriftArtifacts> {
        self.entries.get_mut(&(app, node)).map(|e| &mut e.artifacts)
    }
}

impl Default for DriftCache {
    fn default() -> Self {
        DriftCache::new(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_apps::catalog;
    use adainf_driftgen::workload::ArrivalConfig;

    fn drifted_runtime(periods: usize) -> AppRuntime {
        let root = Prng::new(314);
        let mut rt = AppRuntime::new(
            catalog::video_surveillance(0),
            ArrivalConfig::default(),
            400,
            &root,
        );
        for _ in 0..periods {
            rt.advance_period();
        }
        rt
    }

    /// The old `rank_against` computed class means with one full rescan
    /// of the labels per class; the single-pass accumulator must produce
    /// bit-identical means.
    #[test]
    fn single_pass_class_means_match_per_class_rescan() {
        let mut rng = Prng::new(21);
        let n = 200;
        let k = 6;
        let classes = 5;
        let data: Vec<f32> = (0..n * k).map(|_| rng.gauss() as f32).collect();
        let projected = Matrix::from_slice(n, k, &data);
        // Class 4 deliberately unseen: must fall back to the global mean.
        let labels: Vec<usize> = (0..n).map(|i| i % (classes - 1)).collect();

        // Reference: the old per-class rescan, verbatim.
        let global_mean = projected.col_means();
        let mut expect = vec![global_mean.clone(); classes];
        let mut counts = vec![0usize; classes];
        for &label in &labels {
            counts[label] += 1;
        }
        for (c, out) in expect.iter_mut().enumerate() {
            if counts[c] == 0 {
                continue;
            }
            let mut mean = vec![0.0f32; k];
            for (i, &label) in labels.iter().enumerate() {
                if label == c {
                    for (m, v) in mean.iter_mut().zip(projected.row(i)) {
                        *m += v;
                    }
                }
            }
            for m in &mut mean {
                *m /= counts[c] as f32;
            }
            *out = mean;
        }

        let got = class_means(&projected, &labels, classes);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            let gb: Vec<u32> = g.iter().map(|x| x.to_bits()).collect();
            let eb: Vec<u32> = e.iter().map(|x| x.to_bits()).collect();
            assert_eq!(gb, eb, "class means diverge");
        }
    }

    #[test]
    fn prefix_sums_match_accuracy_on_prefix_subsets() {
        let rt = drifted_runtime(2);
        let root = Prng::new(99);
        let mut scratch = DetectScratch::default();
        for node in 0..rt.spec.nodes.len() {
            let art = build_artifacts(&rt, node, 8, &root, &mut scratch);
            let pool = rt.pools[node].samples();
            let model = &rt.models[node];
            assert_eq!(art.pool_prefix.len(), pool.len() + 1);
            for take in [1, pool.len() / 3, pool.len()] {
                if take == 0 {
                    continue;
                }
                let subset = pool.select(&art.deviation[..take]);
                let direct = model.accuracy_on(&subset, model.profile.full_cut());
                let via_prefix = art.pool_prefix[take] as f64 / take as f64;
                assert_eq!(
                    direct.to_bits(),
                    via_prefix.to_bits(),
                    "node {node} take {take}"
                );
            }
        }
    }

    #[test]
    fn cached_artifacts_bit_equal_fresh_build() {
        let rt = drifted_runtime(2);
        let root = Prng::new(7);
        let mut cache = DriftCache::new(true);
        let first = cache.artifacts(0, &rt, 1, 8, &root).clone();
        assert_eq!(cache.misses, 1);
        let hit = cache.artifacts(0, &rt, 1, 8, &root).clone();
        assert_eq!(cache.hits, 1);
        // A hit must replay the build exactly, and an independent fresh
        // build from the same root stream must agree bit-for-bit.
        let fresh = build_artifacts(&rt, 1, 8, &root, &mut DetectScratch::default());
        assert_eq!(first.deviation, fresh.deviation);
        assert_eq!(first.retrain, fresh.retrain);
        assert_eq!(first.ref_order, fresh.ref_order);
        assert_eq!(hit.deviation, fresh.deviation);
        // Lazily extending the cached entry — in two steps, through a
        // hit — must land on the same prefix-sums as the eager build.
        let art = cache.get_mut(0, 1).expect("entry present");
        let mut scratch = DetectScratch::default();
        let half = fresh.deviation.len() / 2;
        art.pool_prefix_at(&rt, 1, half, &mut scratch);
        art.pool_prefix_at(&rt, 1, fresh.deviation.len(), &mut scratch);
        art.ref_prefix_at(&rt, 1, fresh.ref_order.len(), &mut scratch);
        assert_eq!(art.pool_prefix, fresh.pool_prefix);
        assert_eq!(art.ref_prefix, fresh.ref_prefix);
    }

    #[test]
    fn cache_invalidates_on_period_and_version_bumps() {
        let mut rt = drifted_runtime(1);
        let root = Prng::new(7);
        let mut cache = DriftCache::new(true);
        cache.artifacts(0, &rt, 1, 8, &root);
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // Pool-generation bump: new period → rebuild.
        rt.advance_period();
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!((cache.hits, cache.misses), (1, 2));
        // Model-version bump: retraining → rebuild.
        let slice = rt.pools[1].samples().clone();
        rt.models[1].train_slice(&slice, 1);
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!((cache.hits, cache.misses), (1, 3));
        // Stable key afterwards: hit again.
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!((cache.hits, cache.misses), (2, 3));
    }

    /// The lean standalone builders must reproduce the full build's
    /// orders bit-for-bit — skipping the reference ranking and the two
    /// correctness passes must not perturb the keyed PCA stream.
    #[test]
    fn lean_builders_match_full_artifacts() {
        let rt = drifted_runtime(2);
        let root = Prng::new(7);
        let mut scratch = DetectScratch::default();
        for node in 0..rt.spec.nodes.len() {
            let full = build_artifacts(&rt, node, 8, &root, &mut scratch);
            let deviation = build_deviation_ranking(&rt, node, 8, &root, &mut scratch);
            let retrain = build_retrain_order(&rt, node, 8, &root, &mut scratch);
            assert_eq!(deviation, full.deviation, "node {node}");
            assert_eq!(retrain, full.retrain, "node {node}");
        }
    }

    /// Prebuilding a period's artifacts through the scoped-thread fan-out
    /// must leave the cache in exactly the state sequential lookups would
    /// have produced — entries, counters and warm chains included — at
    /// every thread count.
    #[test]
    fn parallel_prebuild_bit_equal_sequential_lookups() {
        let root = Prng::new(7);
        for threads in [1, 2, 7] {
            let mut rt = drifted_runtime(1);
            let mut seq = DriftCache::new(true);
            let mut par = DriftCache::new(true);
            // Two generations so the second prebuild exercises warm starts.
            for _ in 0..2 {
                let nodes = rt.spec.nodes.len();
                let jobs: Vec<(usize, usize)> = (0..nodes).map(|n| (0, n)).collect();
                let apps = std::slice::from_ref(&rt);
                par.prebuild(&jobs, apps, 8, &root, threads);
                for node in 0..nodes {
                    let s = seq.artifacts(0, &rt, node, 8, &root).clone();
                    let p = par.artifacts(0, &rt, node, 8, &root);
                    assert_eq!(s.deviation, p.deviation, "threads {threads} node {node}");
                    assert_eq!(s.retrain, p.retrain, "threads {threads} node {node}");
                    assert_eq!(s.ref_order, p.ref_order, "threads {threads} node {node}");
                    let sb: Vec<u32> = s.basis.data().iter().map(|x| x.to_bits()).collect();
                    let pb: Vec<u32> = p.basis.data().iter().map(|x| x.to_bits()).collect();
                    assert_eq!(sb, pb, "threads {threads} node {node} basis");
                }
                rt.advance_period();
            }
            assert_eq!(seq.misses, par.misses, "threads {threads}");
            assert_eq!(seq.warm_starts, par.warm_starts, "threads {threads}");
            assert!(par.warm_starts > 0, "second generation must warm-start");
            // Prebuilt entries are current: the lookups above all hit.
            assert_eq!(par.hits as usize, 2 * rt.spec.nodes.len(), "threads {threads}");
        }
    }

    /// The overlapped pipeline's handoff: boundary snapshots built on a
    /// detached background stage, joined in an adversarial (reverse)
    /// order and installed in job order, must leave the cache — entries,
    /// counters and warm chains — bit-identical to sequential inline
    /// lookups, at every thread count.
    #[test]
    fn background_snapshot_stage_bit_equal_sequential_lookups() {
        use adainf_simcore::parallel::spawn_background;
        let root = Prng::new(7);
        for threads in [1, 2, 4, 8] {
            let mut rt = drifted_runtime(1);
            let mut seq = DriftCache::new(true);
            let mut bg = DriftCache::new(true);
            // Two generations so the second stage exercises warm starts
            // and feature carries through the snapshot path.
            for _ in 0..2 {
                let nodes = rt.spec.nodes.len();
                let jobs: Vec<(usize, usize)> = (0..nodes).map(|n| (0, n)).collect();
                let snaps = bg.snapshot_stale(&jobs, std::slice::from_ref(&rt), &root);
                let n = snaps.len();
                assert_eq!(n, nodes, "all slots stale at a fresh generation");
                let mut stage = spawn_background(
                    snaps,
                    threads,
                    DetectScratch::default,
                    |_, snap: DriftSnapshot, scratch: &mut DetectScratch| snap.build(8, scratch),
                );
                let mut built: Vec<Option<BuiltArtifacts>> = (0..n).map(|_| None).collect();
                for idx in (0..n).rev() {
                    built[idx] = Some(stage.take(idx));
                }
                stage.finish();
                for b in built.into_iter().flatten() {
                    bg.insert_built(b);
                }
                for node in 0..nodes {
                    let s = seq.artifacts(0, &rt, node, 8, &root).clone();
                    let p = bg.artifacts(0, &rt, node, 8, &root);
                    assert_eq!(&s, p, "threads {threads} node {node}");
                }
                rt.advance_period();
            }
            assert_eq!(seq.misses, bg.misses, "threads {threads}");
            assert_eq!(seq.warm_starts, bg.warm_starts, "threads {threads}");
            assert!(bg.warm_starts > 0, "second generation must warm-start");
        }
    }

    /// Adversarial schedule replay over the snapshot handoff: forced
    /// claim-order permutations and worker assignments (fan_out_check)
    /// over the snapshot builds must reproduce the inline builds
    /// bit-for-bit — a build secretly depending on execution order or
    /// worker identity fails loudly here.
    #[test]
    fn snapshot_handoff_survives_adversarial_schedules() {
        use adainf_simcore::parallel::fan_out_check;
        let rt = drifted_runtime(2);
        let root = Prng::new(7);
        let mut cache = DriftCache::new(true);
        let nodes = rt.spec.nodes.len();
        let jobs: Vec<(usize, usize)> = (0..nodes).map(|n| (0, n)).collect();
        let snaps = cache.snapshot_stale(&jobs, std::slice::from_ref(&rt), &root);
        assert_eq!(snaps.len(), nodes);
        let built = fan_out_check(11, 3, &[1, 2, 4], snaps.len(), DetectScratch::default, |i, scratch| {
            snaps[i].clone().build(8, scratch).artifacts
        });
        let mut inline = DriftCache::new(true);
        for (node, art) in built.iter().enumerate() {
            let reference = inline.artifacts(0, &rt, node, 8, &root);
            assert_eq!(art, reference, "node {node}");
        }
    }

    /// Warm state survives exactly one period step at a fixed model
    /// version, and dies on a model-version bump or a generation jump.
    #[test]
    fn warm_start_invalidates_on_version_and_generation_bumps() {
        let root = Prng::new(7);

        // Adjacent periods, same model version: warm start.
        let mut rt = drifted_runtime(1);
        let mut cache = DriftCache::new(true);
        cache.artifacts(0, &rt, 1, 8, &root);
        rt.advance_period();
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!(cache.warm_starts, 1, "adjacent period must warm-start");

        // Model-version bump alongside the period step: cold restart.
        let mut rt = drifted_runtime(1);
        let mut cache = DriftCache::new(true);
        cache.artifacts(0, &rt, 1, 8, &root);
        rt.advance_period();
        let slice = rt.pools[1].samples().clone();
        rt.models[1].train_slice(&slice, 1);
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!(cache.warm_starts, 0, "version bump must invalidate");

        // Generation jump (two periods between builds): cold restart.
        let mut rt = drifted_runtime(1);
        let mut cache = DriftCache::new(true);
        cache.artifacts(0, &rt, 1, 8, &root);
        rt.advance_period();
        rt.advance_period();
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!(cache.warm_starts, 0, "generation jump must invalidate");
    }

    /// A disabled cache rebuilds per lookup; after a period step its
    /// rebuilds replay the enabled cache's warm chain, so the two stay
    /// bit-identical even once warm starts enter the picture.
    #[test]
    fn disabled_cache_matches_across_warm_started_periods() {
        let root = Prng::new(7);
        let mut rt = drifted_runtime(1);
        let mut on = DriftCache::new(true);
        let mut off = DriftCache::new(false);
        for _ in 0..2 {
            let a = on.artifacts(0, &rt, 1, 8, &root).clone();
            let b = off.artifacts(0, &rt, 1, 8, &root).clone();
            // Repeat lookup on the disabled cache: replays the warm input.
            let c = off.artifacts(0, &rt, 1, 8, &root).clone();
            assert_eq!(a.deviation, b.deviation);
            assert_eq!(b.deviation, c.deviation);
            let ab: Vec<u32> = a.basis.data().iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u32> = b.basis.data().iter().map(|x| x.to_bits()).collect();
            let cb: Vec<u32> = c.basis.data().iter().map(|x| x.to_bits()).collect();
            assert_eq!(ab, bb);
            assert_eq!(bb, cb);
            rt.advance_period();
        }
        assert_eq!(on.warm_starts, off.warm_starts / 2);
        assert!(on.warm_starts > 0);
    }

    #[test]
    fn disabled_cache_rebuilds_but_matches() {
        let rt = drifted_runtime(1);
        let root = Prng::new(7);
        let mut on = DriftCache::new(true);
        let mut off = DriftCache::new(false);
        let a = on.artifacts(0, &rt, 1, 8, &root).clone();
        let b = off.artifacts(0, &rt, 1, 8, &root).clone();
        off.artifacts(0, &rt, 1, 8, &root);
        assert_eq!(off.hits, 0, "disabled cache must never hit");
        assert_eq!(off.misses, 2);
        assert_eq!(a.deviation, b.deviation);
        assert_eq!(a.retrain, b.retrain);
    }
}
