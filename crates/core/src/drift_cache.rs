//! Per-period drift artifact cache.
//!
//! The §3.2 detection loop and the §3.3.2 retraining-order selection
//! consume the same expensive artifacts — feature matrices, a PCA fit of
//! the old training data, projections, per-class means and deviation
//! rankings — and historically recomputed them per consumer: twice inside
//! `detect_drift` (pool + reference rankings each refit the PCA) and a
//! third time in `retrain_order` for every impacted node. This module
//! computes each node's artifacts **exactly once per period** and shares
//! them.
//!
//! Determinism: PCA-fit randomness is routed through a child [`Prng`]
//! stream derived from the scheduler's root stream via [`Prng::split`],
//! keyed by `(period, node)`. A cached fit is therefore draw-identical to
//! a refit — the artifacts are a pure function of `(pool generation,
//! model version, root stream)`, which is exactly the cache key.
//!
//! Invalidation: entries are keyed by `(app, node)` and tagged with
//! `(pool generation, model version)`. The pool generation is the
//! runtime's period counter — `advance_period` wholesale-replaces pools
//! and reference sets, so any period bump invalidates. The model version
//! bumps on every retraining slice and parameter load, so a retrained
//! model never serves stale rankings.

use adainf_apps::AppRuntime;
use adainf_driftgen::LabeledSamples;
use adainf_nn::metrics::cosine_distance;
use adainf_nn::pca::{Pca, PcaScratch};
use adainf_nn::Matrix;
use adainf_simcore::Prng;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Stream label base for the per-`(period, node)` PCA child streams.
/// Mixed (not added) so labels cannot collide with other subsystem
/// streams split from the same root.
const PCA_STREAM: u64 = 0xD21F_7000;

/// Everything the drift pipeline needs about one `(app, node)` in one
/// period, computed in a single pass over the data.
#[derive(Clone, Debug, Default)]
pub struct DriftArtifacts {
    /// Pool-sample indices by descending deviation from the old training
    /// data (§3.2) — a permutation of `0..pool.len()`.
    pub deviation: Vec<usize>,
    /// The §3.3.2 retraining consumption order: the deviation ranking's
    /// most-deviating half interleaved 1:1 with the remainder.
    pub retrain: Vec<usize>,
    /// Held-out reference samples ranked by the same deviation metric.
    pub ref_order: Vec<usize>,
    /// `pool_prefix[i]` = correct predictions (at the full cut) among the
    /// first `i` samples of `deviation`, with `pool_prefix[0] == 0`.
    /// Prefix accuracy is `prefix[take] / take`, bit-equal to
    /// `accuracy_on` over the same prefix subset. Extended **lazily** via
    /// [`Self::pool_prefix_at`] to the deepest `take` any consumer has
    /// asked for — the `S`-growth loop usually stops well short of the
    /// full pool, so samples past its deepest cut are never predicted.
    pub pool_prefix: Vec<u32>,
    /// Same lazily-extended prefix-sum over `ref_order` for the held-out
    /// reference set (see [`Self::ref_prefix_at`]).
    pub ref_prefix: Vec<u32>,
}

/// Extends a correctness prefix-sum to cover `take` samples of `order`,
/// predicting only the not-yet-covered chunk. The head forward pass is
/// row-independent, so predicting `order[done..take]` as its own batch
/// yields the same per-sample predictions as any other batching — the
/// running count is bit-equal to a full-set pass however it is grown.
fn extend_prefix(
    prefix: &mut Vec<u32>,
    rt: &AppRuntime,
    node: usize,
    samples: &LabeledSamples,
    order: &[usize],
    take: usize,
) {
    if prefix.len() > take || samples.is_empty() {
        return;
    }
    let model = &rt.models[node];
    let done = prefix.len() - 1;
    let chunk = samples.select(&order[done..take]);
    let preds = model.predict(&chunk.inputs, model.profile.full_cut());
    let mut acc = prefix[done];
    for (p, label) in preds.iter().zip(&chunk.labels) {
        acc += u32::from(p == label);
        prefix.push(acc);
    }
}

impl DriftArtifacts {
    /// Correct-count over the first `take` samples of the deviation
    /// ranking, extending the lazy prefix-sum as far as needed.
    pub fn pool_prefix_at(&mut self, rt: &AppRuntime, node: usize, take: usize) -> u32 {
        let samples = rt.pools[node].samples();
        extend_prefix(
            &mut self.pool_prefix,
            rt,
            node,
            samples,
            &self.deviation,
            take,
        );
        self.pool_prefix[take]
    }

    /// Correct-count over the first `take` samples of the reference
    /// ranking, extending the lazy prefix-sum as far as needed.
    pub fn ref_prefix_at(&mut self, rt: &AppRuntime, node: usize, take: usize) -> u32 {
        let samples = rt.ref_samples(node);
        extend_prefix(
            &mut self.ref_prefix,
            rt,
            node,
            samples,
            &self.ref_order,
            take,
        );
        self.ref_prefix[take]
    }

    /// `strict-invariants` structural checks: the orders are permutations
    /// of their sample ranges and the prefix-sums are monotone running
    /// counts no longer than their sample range — the properties the
    /// S-growth loop and the pool consumer rely on without re-validating
    /// per lookup.
    fn check_invariants(&self, pool_len: usize, ref_len: usize) {
        let is_permutation = |order: &[usize], n: usize| {
            let mut seen = vec![false; n];
            order.len() == n
                && order
                    .iter()
                    .all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
        };
        assert!(
            is_permutation(&self.deviation, pool_len),
            "strict-invariants: deviation order is not a permutation of the pool"
        );
        assert!(
            is_permutation(&self.retrain, pool_len),
            "strict-invariants: retrain order is not a permutation of the pool"
        );
        assert!(
            is_permutation(&self.ref_order, ref_len),
            "strict-invariants: reference order is not a permutation of the held-out set"
        );
        let is_prefix_count = |prefix: &[u32], n: usize| {
            !prefix.is_empty()
                && prefix.len() <= n + 1
                && prefix[0] == 0
                && prefix.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] + 1)
        };
        assert!(
            is_prefix_count(&self.pool_prefix, pool_len),
            "strict-invariants: pool prefix-sum is not a running correctness count"
        );
        assert!(
            is_prefix_count(&self.ref_prefix, ref_len),
            "strict-invariants: reference prefix-sum is not a running correctness count"
        );
    }
}

/// Reusable buffers for [`build_artifacts`]: PCA scratch, projection
/// outputs and the scored index list. One instance serves every node of
/// every app — artifacts are built one at a time.
#[derive(Clone, Debug, Default)]
pub struct DetectScratch {
    pca: PcaScratch,
    projected: Matrix,
    scored: Vec<(usize, f64)>,
}

/// Mean projected old-feature vector per class, accumulated in one
/// ascending pass over the labels. Classes unseen in the old data fall
/// back to the global mean. Bit-identical to a per-class rescan: each
/// class's sum still adds rows in ascending row order.
pub fn class_means(projected: &Matrix, labels: &[usize], classes: usize) -> Vec<Vec<f32>> {
    let k = projected.cols();
    let global_mean = projected.col_means();
    let mut sums = vec![0.0f32; classes * k];
    let mut counts = vec![0usize; classes];
    for (i, &label) in labels.iter().enumerate() {
        counts[label] += 1;
        for (m, v) in sums[label * k..(label + 1) * k]
            .iter_mut()
            .zip(projected.row(i))
        {
            *m += v;
        }
    }
    (0..classes)
        .map(|c| {
            if counts[c] == 0 {
                global_mean.clone()
            } else {
                sums[c * k..(c + 1) * k]
                    .iter()
                    .map(|&s| s / counts[c] as f32)
                    .collect()
            }
        })
        .collect()
}

/// Ranks `new` samples by descending cosine deviation of their projected
/// feature vectors from the per-class means of the old data.
fn rank(
    rt: &AppRuntime,
    node: usize,
    new: &LabeledSamples,
    pca: &Pca,
    means: &[Vec<f32>],
    scratch: &mut DetectScratch,
) -> Vec<usize> {
    if new.is_empty() {
        return Vec::new();
    }
    let features = rt.models[node].features(new);
    pca.transform_into(&features, &mut scratch.pca, &mut scratch.projected);
    let DetectScratch {
        projected, scored, ..
    } = scratch;
    scored.clear();
    scored.extend((0..new.len()).map(|i| {
        let mean = &means[new.labels[i]];
        (i, cosine_distance(projected.row(i), mean))
    }));
    // total_cmp would reorder signed zeros and perturb the golden metrics, so:
    // simlint: allow(no-unwrap-in-lib) — cosine distances of unit-normalised rows are finite by construction
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite distances"));
    scored.iter().map(|&(i, _)| i).collect()
}

/// Interleaves the deviation ranking into the §3.3.2 retraining order:
/// most-deviating half 1:1 with the remainder, odd tail appended.
fn interleave(ranked: &[usize]) -> Vec<usize> {
    let n = ranked.len();
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..half {
        out.push(ranked[i]);
        if half + i < n {
            out.push(ranked[half + i]);
        }
    }
    if n % 2 == 1 {
        out.push(ranked[n - 1]);
    }
    out
}

/// The deviation rankings of the pool and (optionally) the held-out
/// reference set, from one feature pass over the old data and **one**
/// shared PCA fit. The pool ranking never depends on whether the
/// reference ranking is computed — the keyed PCA stream is consumed
/// identically either way.
fn rankings(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
    with_ref: bool,
) -> (Vec<usize>, Vec<usize>) {
    let old = rt.old_samples(node);
    let pool = rt.pools[node].samples();
    let held_out = rt.ref_samples(node);
    if old.is_empty() {
        // No old data to deviate from: identity orders.
        return ((0..pool.len()).collect(), (0..held_out.len()).collect());
    }
    let model = &rt.models[node];
    let old_features = model.features(old);
    let mut rng = root.split(PCA_STREAM ^ (rt.period() << 16) ^ node as u64);
    let pca = Pca::fit_with_scratch(&old_features, pca_components, &mut rng, &mut scratch.pca);
    pca.transform_into(&old_features, &mut scratch.pca, &mut scratch.projected);
    let means = class_means(&scratch.projected, &old.labels, model.classes());
    let deviation = rank(rt, node, pool, &pca, &means, scratch);
    let ref_order = if with_ref {
        rank(rt, node, held_out, &pca, &means, scratch)
    } else {
        Vec::new()
    };
    (deviation, ref_order)
}

/// The pool deviation ranking alone — the cheap subset of
/// [`build_artifacts`] for consumers that never read the prefix-sums or
/// the reference order (standalone order queries outside the scheduler's
/// cached detection path). Bit-equal to `build_artifacts(..).deviation`,
/// at none of the cost of the two full-set correctness passes.
pub fn build_deviation_ranking(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
) -> Vec<usize> {
    rankings(rt, node, pca_components, root, scratch, false).0
}

/// The §3.3.2 retraining order alone — [`build_deviation_ranking`]'s
/// interleave, bit-equal to `build_artifacts(..).retrain`.
pub fn build_retrain_order(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
) -> Vec<usize> {
    interleave(&build_deviation_ranking(
        rt,
        node,
        pca_components,
        root,
        scratch,
    ))
}

/// Builds one node's ranked artifact set — both deviation rankings and
/// the retraining interleave — with the correctness prefix-sums left at
/// their seed (`[0]`), to be extended lazily by
/// [`DriftArtifacts::pool_prefix_at`] / [`DriftArtifacts::ref_prefix_at`]
/// as deep as the detection loop actually reads.
///
/// PCA randomness comes from `root.split(...)` keyed by the runtime's
/// period and the node, never from an advancing caller stream — so the
/// result is reproducible from the key alone.
fn build_ranked(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
) -> DriftArtifacts {
    let (deviation, ref_order) = rankings(rt, node, pca_components, root, scratch, true);
    let retrain = interleave(&deviation);
    let artifacts = DriftArtifacts {
        deviation,
        retrain,
        ref_order,
        pool_prefix: vec![0],
        ref_prefix: vec![0],
    };
    if cfg!(feature = "strict-invariants") {
        artifacts.check_invariants(rt.pools[node].samples().len(), rt.ref_samples(node).len());
    }
    artifacts
}

/// Builds one node's complete artifact set: one feature pass over the old
/// data, **one** shared PCA fit, one projection per sample set, one
/// deviation ranking each for the pool and the held-out reference, the
/// retraining interleave and both correctness prefix-sums extended to
/// their full sample sets.
pub fn build_artifacts(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
) -> DriftArtifacts {
    let mut artifacts = build_ranked(rt, node, pca_components, root, scratch);
    let pool_len = artifacts.deviation.len();
    let ref_len = artifacts.ref_order.len();
    if pool_len > 0 {
        artifacts.pool_prefix_at(rt, node, pool_len);
    }
    if ref_len > 0 {
        artifacts.ref_prefix_at(rt, node, ref_len);
    }
    artifacts
}

/// The per-period artifact cache. Entries are keyed by `(app, node)` and
/// tagged with `(pool generation, model version)`; a tag mismatch
/// rebuilds in place, so the map never outgrows `apps × nodes` entries.
#[derive(Clone, Debug)]
pub struct DriftCache {
    entries: BTreeMap<(usize, usize), ((u64, u64), DriftArtifacts)>,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that rebuilt the artifacts.
    pub misses: u64,
    enabled: bool,
    scratch: DetectScratch,
}

impl DriftCache {
    /// Creates the cache. With `enabled == false` every lookup rebuilds —
    /// bit-identical results either way (the build is a pure function of
    /// the key and root stream), so the flag is purely a perf switch.
    pub fn new(enabled: bool) -> Self {
        DriftCache {
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            enabled,
            scratch: DetectScratch::default(),
        }
    }

    /// The artifacts of `(app, node)` for the runtime's current period
    /// and model version, building them on first use.
    pub fn artifacts(
        &mut self,
        app: usize,
        rt: &AppRuntime,
        node: usize,
        pca_components: usize,
        root: &Prng,
    ) -> &DriftArtifacts {
        let key = (rt.period(), rt.models[node].version());
        let scratch = &mut self.scratch;
        match self.entries.entry((app, node)) {
            Entry::Occupied(mut e) => {
                if self.enabled && e.get().0 == key {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                    let art = build_ranked(rt, node, pca_components, root, scratch);
                    *e.get_mut() = (key, art);
                }
                &e.into_mut().1
            }
            Entry::Vacant(v) => {
                self.misses += 1;
                let art = build_ranked(rt, node, pca_components, root, scratch);
                &v.insert((key, art)).1
            }
        }
    }

    /// Shared view of an already-built entry; `None` when
    /// [`Self::artifacts`] has not run for `(app, node)` yet.
    pub fn get(&self, app: usize, node: usize) -> Option<&DriftArtifacts> {
        self.entries.get(&(app, node)).map(|(_, art)| art)
    }

    /// Mutable view of an already-built entry, for lazily extending its
    /// prefix-sums in place (the extension is value-preserving, so a
    /// later hit replays exactly what a fresh build would produce).
    pub fn get_mut(&mut self, app: usize, node: usize) -> Option<&mut DriftArtifacts> {
        self.entries.get_mut(&(app, node)).map(|(_, art)| art)
    }
}

impl Default for DriftCache {
    fn default() -> Self {
        DriftCache::new(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_apps::catalog;
    use adainf_driftgen::workload::ArrivalConfig;

    fn drifted_runtime(periods: usize) -> AppRuntime {
        let root = Prng::new(314);
        let mut rt = AppRuntime::new(
            catalog::video_surveillance(0),
            ArrivalConfig::default(),
            400,
            &root,
        );
        for _ in 0..periods {
            rt.advance_period();
        }
        rt
    }

    /// The old `rank_against` computed class means with one full rescan
    /// of the labels per class; the single-pass accumulator must produce
    /// bit-identical means.
    #[test]
    fn single_pass_class_means_match_per_class_rescan() {
        let mut rng = Prng::new(21);
        let n = 200;
        let k = 6;
        let classes = 5;
        let data: Vec<f32> = (0..n * k).map(|_| rng.gauss() as f32).collect();
        let projected = Matrix::from_slice(n, k, &data);
        // Class 4 deliberately unseen: must fall back to the global mean.
        let labels: Vec<usize> = (0..n).map(|i| i % (classes - 1)).collect();

        // Reference: the old per-class rescan, verbatim.
        let global_mean = projected.col_means();
        let mut expect = vec![global_mean.clone(); classes];
        let mut counts = vec![0usize; classes];
        for &label in &labels {
            counts[label] += 1;
        }
        for (c, out) in expect.iter_mut().enumerate() {
            if counts[c] == 0 {
                continue;
            }
            let mut mean = vec![0.0f32; k];
            for (i, &label) in labels.iter().enumerate() {
                if label == c {
                    for (m, v) in mean.iter_mut().zip(projected.row(i)) {
                        *m += v;
                    }
                }
            }
            for m in &mut mean {
                *m /= counts[c] as f32;
            }
            *out = mean;
        }

        let got = class_means(&projected, &labels, classes);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            let gb: Vec<u32> = g.iter().map(|x| x.to_bits()).collect();
            let eb: Vec<u32> = e.iter().map(|x| x.to_bits()).collect();
            assert_eq!(gb, eb, "class means diverge");
        }
    }

    #[test]
    fn prefix_sums_match_accuracy_on_prefix_subsets() {
        let rt = drifted_runtime(2);
        let root = Prng::new(99);
        let mut scratch = DetectScratch::default();
        for node in 0..rt.spec.nodes.len() {
            let art = build_artifacts(&rt, node, 8, &root, &mut scratch);
            let pool = rt.pools[node].samples();
            let model = &rt.models[node];
            assert_eq!(art.pool_prefix.len(), pool.len() + 1);
            for take in [1, pool.len() / 3, pool.len()] {
                if take == 0 {
                    continue;
                }
                let subset = pool.select(&art.deviation[..take]);
                let direct = model.accuracy_on(&subset, model.profile.full_cut());
                let via_prefix = art.pool_prefix[take] as f64 / take as f64;
                assert_eq!(
                    direct.to_bits(),
                    via_prefix.to_bits(),
                    "node {node} take {take}"
                );
            }
        }
    }

    #[test]
    fn cached_artifacts_bit_equal_fresh_build() {
        let rt = drifted_runtime(2);
        let root = Prng::new(7);
        let mut cache = DriftCache::new(true);
        let first = cache.artifacts(0, &rt, 1, 8, &root).clone();
        assert_eq!(cache.misses, 1);
        let hit = cache.artifacts(0, &rt, 1, 8, &root).clone();
        assert_eq!(cache.hits, 1);
        // A hit must replay the build exactly, and an independent fresh
        // build from the same root stream must agree bit-for-bit.
        let fresh = build_artifacts(&rt, 1, 8, &root, &mut DetectScratch::default());
        assert_eq!(first.deviation, fresh.deviation);
        assert_eq!(first.retrain, fresh.retrain);
        assert_eq!(first.ref_order, fresh.ref_order);
        assert_eq!(hit.deviation, fresh.deviation);
        // Lazily extending the cached entry — in two steps, through a
        // hit — must land on the same prefix-sums as the eager build.
        let art = cache.get_mut(0, 1).expect("entry present");
        let half = fresh.deviation.len() / 2;
        art.pool_prefix_at(&rt, 1, half);
        art.pool_prefix_at(&rt, 1, fresh.deviation.len());
        art.ref_prefix_at(&rt, 1, fresh.ref_order.len());
        assert_eq!(art.pool_prefix, fresh.pool_prefix);
        assert_eq!(art.ref_prefix, fresh.ref_prefix);
    }

    #[test]
    fn cache_invalidates_on_period_and_version_bumps() {
        let mut rt = drifted_runtime(1);
        let root = Prng::new(7);
        let mut cache = DriftCache::new(true);
        cache.artifacts(0, &rt, 1, 8, &root);
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // Pool-generation bump: new period → rebuild.
        rt.advance_period();
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!((cache.hits, cache.misses), (1, 2));
        // Model-version bump: retraining → rebuild.
        let slice = rt.pools[1].samples().clone();
        rt.models[1].train_slice(&slice, 1);
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!((cache.hits, cache.misses), (1, 3));
        // Stable key afterwards: hit again.
        cache.artifacts(0, &rt, 1, 8, &root);
        assert_eq!((cache.hits, cache.misses), (2, 3));
    }

    /// The lean standalone builders must reproduce the full build's
    /// orders bit-for-bit — skipping the reference ranking and the two
    /// correctness passes must not perturb the keyed PCA stream.
    #[test]
    fn lean_builders_match_full_artifacts() {
        let rt = drifted_runtime(2);
        let root = Prng::new(7);
        let mut scratch = DetectScratch::default();
        for node in 0..rt.spec.nodes.len() {
            let full = build_artifacts(&rt, node, 8, &root, &mut scratch);
            let deviation = build_deviation_ranking(&rt, node, 8, &root, &mut scratch);
            let retrain = build_retrain_order(&rt, node, 8, &root, &mut scratch);
            assert_eq!(deviation, full.deviation, "node {node}");
            assert_eq!(retrain, full.retrain, "node {node}");
        }
    }

    #[test]
    fn disabled_cache_rebuilds_but_matches() {
        let rt = drifted_runtime(1);
        let root = Prng::new(7);
        let mut on = DriftCache::new(true);
        let mut off = DriftCache::new(false);
        let a = on.artifacts(0, &rt, 1, 8, &root).clone();
        let b = off.artifacts(0, &rt, 1, 8, &root).clone();
        off.artifacts(0, &rt, 1, 8, &root);
        assert_eq!(off.hits, 0, "disabled cache must never hit");
        assert_eq!(off.misses, 2);
        assert_eq!(a.deviation, b.deviation);
        assert_eq!(a.retrain, b.retrain);
    }
}
