//! Data-drift impact detection (§3.2).
//!
//! For each model of an application, at each period boundary:
//!
//! 1. Take the `S`-fraction of new training samples that deviate the most
//!    from the old training data: feature vectors (the model's first-layer
//!    representation) are PCA-reduced, and each new sample's cosine
//!    distance to the mean old feature vector ranks its deviation.
//! 2. Run the current model on those samples; if its accuracy `I'_m` has
//!    dropped below the reference accuracy `I_m` (beyond a small
//!    finite-sample margin), the model is impacted, with impact degree
//!    `I_m − I'_m`. As the most-deviating samples of *any* distribution
//!    are its intrinsically hard tail, the reference is measured on the
//!    equally-deviant tail of the **old** training data — the drift-free
//!    counterfactual — rather than on the full initial test set.
//! 3. Grow `S` and repeat until the set of impacted models is unchanged
//!    for `n` consecutive rounds.
//!
//! The same deviation ranking orders the retraining pool: AdaInf "selects
//! the samples that deviate the most from the old training samples"
//! (§3.3.2).
//!
//! All expensive artifacts (features, the PCA fit, projections, rankings
//! and the per-sample correctness prefix-sums the `S`-growth loop reads)
//! come from [`crate::drift_cache`], which computes them once per
//! `(app, node, period, model version)` and shares them with the
//! scheduler's retraining-order consumer. The `S`-loop itself is an exact
//! rewrite of the old per-round `accuracy_on` calls: the accuracy of a
//! deviation-ranked prefix is a running correct-count divided by the
//! prefix length, so `prefix[take] / take` is bit-equal to re-running the
//! model on the cloned prefix subset. The prefix-sums extend lazily, so
//! each ranked sample is predicted at most once — and only if the loop's
//! growing `S` actually reaches it before stabilising.

use crate::config::AdaInfConfig;
use crate::drift_cache::{build_deviation_ranking, build_retrain_order, DetectScratch, DriftCache};
use adainf_apps::AppRuntime;
use adainf_simcore::Prng;

/// Detection outcome for one application.
#[derive(Clone, Debug, Default)]
pub struct DriftReport {
    /// Impacted nodes with impact degrees `I_m − I'_m`, ascending node.
    pub impacted: Vec<(usize, f64)>,
    /// The `S` value at which detection stopped (fraction of samples).
    pub final_s: f64,
    /// Detection trace: `(S, impacted node set)` per round (Table 2).
    pub trace: Vec<(f64, Vec<usize>)>,
}

/// Ranks the new-pool samples of `node` by descending deviation from the
/// old training data; returns sample indices, most deviating first.
///
/// `root` is only used as a split root for the keyed per-`(period, node)`
/// PCA stream — it is never advanced, so repeated calls are reproducible.
/// `scratch` holds the PCA/projection buffers; callers loop over nodes,
/// so taking it from the caller reuses one allocation set across the
/// whole sweep instead of reallocating per call.
pub fn deviation_order(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
) -> Vec<usize> {
    build_deviation_ranking(rt, node, pca_components, root, scratch)
}

/// The retraining consumption order (§3.3.2): deviation-prioritised but
/// stratified — the ranking is split into a most-deviating half and a
/// remainder, interleaved 1:1. Early slices are thus dominated by the
/// drifted samples (the paper's "samples that deviate the most"), while
/// every SGD stage still sees a distribution mix, which keeps sequential
/// slice training from regressing onto the stale-looking tail at the end
/// of the pool.
pub fn retrain_order(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    root: &Prng,
    scratch: &mut DetectScratch,
) -> Vec<usize> {
    build_retrain_order(rt, node, pca_components, root, scratch)
}

/// Runs the §3.2 detection loop over all nodes of one application.
pub fn detect_drift(rt: &AppRuntime, config: &AdaInfConfig, root: &Prng) -> DriftReport {
    let mut cache = DriftCache::new(true);
    detect_drift_cached(rt, 0, config, &mut cache, root)
}

/// [`detect_drift`] reading node artifacts through a shared
/// [`DriftCache`], so a scheduler that also consumes retraining orders
/// pays for each node's feature/PCA/ranking work once per period.
pub fn detect_drift_cached(
    rt: &AppRuntime,
    app: usize,
    config: &AdaInfConfig,
    cache: &mut DriftCache,
    root: &Prng,
) -> DriftReport {
    let n_nodes = rt.spec.nodes.len();
    // Materialise every node's rankings up front (they do not depend on
    // S; S only selects a ranked prefix). The correctness prefix-sums
    // extend lazily below, only as deep as the loop's largest `take` —
    // detection usually stabilises long before S reaches 100 %, so most
    // pool samples are never predicted at all.
    for node in 0..n_nodes {
        cache.artifacts(app, rt, node, config.pca_components, root);
    }

    let mut report = DriftReport::default();
    let mut s = config.s_init;
    let mut stable = 0usize;
    let mut last_set: Option<Vec<usize>> = None;
    let mut impacts = vec![0.0f64; n_nodes];
    // One buffer set for every lazy prefix extension of this detection
    // run: the gather/forward scratch warms up on the first chunk and is
    // reused across nodes and S rounds.
    let mut scratch = DetectScratch::default();

    while stable < config.stable_rounds && s <= 1.0 {
        let mut set = Vec::new();
        for (node, impact) in impacts.iter_mut().enumerate() {
            let art = cache
                .get_mut(app, node)
                // simlint: allow(no-unwrap-in-lib) — every (app, node) entry was populated by the loop above
                .expect("artifact populated above");
            let pool_len = art.deviation.len();
            let ref_len = art.ref_order.len();
            if pool_len == 0 || ref_len == 0 {
                continue;
            }
            let take = ((s * pool_len as f64).ceil() as usize).clamp(1, pool_len);
            let ref_take = ((s * ref_len as f64).ceil() as usize).clamp(1, ref_len);
            // Prefix accuracy: correct count over the deviation-ranked
            // prefix divided by its length — bit-equal to `accuracy_on`
            // over the same cloned subset (the head forward pass is
            // row-independent).
            let i_prime = art.pool_prefix_at(rt, node, take, &mut scratch) as f64 / take as f64;
            let i_m = art.ref_prefix_at(rt, node, ref_take, &mut scratch) as f64 / ref_take as f64;
            if i_m - i_prime > config.detect_margin {
                set.push(node);
                *impact = i_m - i_prime;
            }
        }
        report.trace.push((s, set.clone()));
        if last_set.as_deref() == Some(&set) {
            stable += 1;
        } else {
            stable = 1;
            last_set = Some(set);
        }
        report.final_s = s;
        s += config.s_step;
    }

    if let Some(set) = last_set {
        report.impacted = set.into_iter().map(|n| (n, impacts[n])).collect();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_apps::catalog;
    use adainf_driftgen::workload::ArrivalConfig;

    fn drifted_runtime(periods: usize) -> AppRuntime {
        let root = Prng::new(314);
        let mut rt = AppRuntime::new(
            catalog::video_surveillance(0),
            ArrivalConfig::default(),
            800,
            &root,
        );
        for _ in 0..periods {
            rt.advance_period();
        }
        rt
    }

    #[test]
    fn detects_drifted_models_not_stable_ones() {
        let rt = drifted_runtime(3);
        let rng = Prng::new(1);
        let report = detect_drift(&rt, &AdaInfConfig::default(), &rng);
        let nodes: Vec<usize> = report.impacted.iter().map(|(n, _)| *n).collect();
        // Node 0 (object detection) is stable and must not be flagged;
        // node 1 (vehicle, severe drift) must be.
        assert!(!nodes.contains(&0), "stable node flagged: {nodes:?}");
        assert!(nodes.contains(&1), "severe-drift node missed: {nodes:?}");
        for (_, impact) in &report.impacted {
            assert!(*impact > 0.0 && *impact <= 1.0);
        }
    }

    #[test]
    fn severe_detected_at_least_as_often_as_moderate() {
        // Obs. 3: among impacted models, the severe-drift vehicle node
        // is hit harder than the moderate-drift person node. With
        // per-class random angular velocities the *degree* after several
        // periods is noisy (both saturate), so we assert the stable
        // statistic: across realisations, early-period detection fires
        // for the severe node at least as often as for the moderate one,
        // and the stable node is never flagged.
        let mut severe_hits = 0;
        let mut moderate_hits = 0;
        let mut stable_hits = 0;
        for seed in 0..6u64 {
            let root = Prng::new(1000 + seed);
            let mut rt = AppRuntime::new(
                catalog::video_surveillance(0),
                ArrivalConfig::default(),
                800,
                &root,
            );
            for _ in 0..2 {
                rt.advance_period();
            }
            let rng = Prng::new(seed);
            let report = detect_drift(&rt, &AdaInfConfig::default(), &rng);
            for (node, _) in &report.impacted {
                match node {
                    0 => stable_hits += 1,
                    1 => severe_hits += 1,
                    2 => moderate_hits += 1,
                    _ => {}
                }
            }
        }
        // Finite-sample tails allow occasional false positives on the
        // stable node, but they must stay rare.
        assert!(stable_hits <= 2, "stable node flagged {stable_hits}/6");
        assert!(
            severe_hits >= moderate_hits,
            "severe {severe_hits} vs moderate {moderate_hits}"
        );
        assert!(
            severe_hits >= 3,
            "severe detections too rare: {severe_hits}"
        );
    }

    #[test]
    fn detection_stops_after_stable_rounds() {
        let rt = drifted_runtime(2);
        let rng = Prng::new(2);
        let config = AdaInfConfig::default();
        let report = detect_drift(&rt, &config, &rng);
        // The trace's last `stable_rounds` entries carry the same set.
        let k = config.stable_rounds;
        assert!(report.trace.len() >= k);
        let tail = &report.trace[report.trace.len() - k..];
        assert!(tail.windows(2).all(|w| w[0].1 == w[1].1));
        // S never exceeds 100 %.
        assert!(report.final_s <= 1.0 + 1e-9);
    }

    #[test]
    fn matches_full_sample_ground_truth() {
        // Table 2: the iterative process must agree with S = 100 %.
        let rt = drifted_runtime(3);
        let rng = Prng::new(3);
        let config = AdaInfConfig::default();
        let report = detect_drift(&rt, &config, &rng);
        let full_cfg = AdaInfConfig {
            s_init: 1.0,
            ..config
        };
        let rng2 = Prng::new(3);
        let full = detect_drift(&rt, &full_cfg, &rng2);
        let a: Vec<usize> = report.impacted.iter().map(|(n, _)| *n).collect();
        let b: Vec<usize> = full.impacted.iter().map(|(n, _)| *n).collect();
        assert_eq!(a, b, "iterative {a:?} vs full-sample {b:?}");
    }

    #[test]
    fn deviation_order_is_permutation() {
        let rt = drifted_runtime(1);
        let rng = Prng::new(4);
        let order = deviation_order(&rt, 1, 8, &rng, &mut DetectScratch::default());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..order.len()).collect::<Vec<_>>());
    }

    #[test]
    fn cached_and_uncached_detection_agree() {
        let rt = drifted_runtime(3);
        let root = Prng::new(5);
        let config = AdaInfConfig::default();
        let plain = detect_drift(&rt, &config, &root);
        let mut cache = DriftCache::new(true);
        let first = detect_drift_cached(&rt, 0, &config, &mut cache, &root);
        let again = detect_drift_cached(&rt, 0, &config, &mut cache, &root);
        assert!(cache.hits > 0, "second detection must hit the cache");
        for (a, b) in [(&plain, &first), (&first, &again)] {
            assert_eq!(a.impacted, b.impacted);
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.final_s.to_bits(), b.final_s.to_bits());
        }
    }
}
