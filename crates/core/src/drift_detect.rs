//! Data-drift impact detection (§3.2).
//!
//! For each model of an application, at each period boundary:
//!
//! 1. Take the `S`-fraction of new training samples that deviate the most
//!    from the old training data: feature vectors (the model's first-layer
//!    representation) are PCA-reduced, and each new sample's cosine
//!    distance to the mean old feature vector ranks its deviation.
//! 2. Run the current model on those samples; if its accuracy `I'_m` has
//!    dropped below the reference accuracy `I_m` (beyond a small
//!    finite-sample margin), the model is impacted, with impact degree
//!    `I_m − I'_m`. As the most-deviating samples of *any* distribution
//!    are its intrinsically hard tail, the reference is measured on the
//!    equally-deviant tail of the **old** training data — the drift-free
//!    counterfactual — rather than on the full initial test set.
//! 3. Grow `S` and repeat until the set of impacted models is unchanged
//!    for `n` consecutive rounds.
//!
//! The same deviation ranking orders the retraining pool: AdaInf "selects
//! the samples that deviate the most from the old training samples"
//! (§3.3.2).

use crate::config::AdaInfConfig;
use adainf_apps::AppRuntime;
use adainf_nn::metrics::cosine_distance;
use adainf_nn::pca::Pca;
use adainf_simcore::Prng;

/// Detection outcome for one application.
#[derive(Clone, Debug, Default)]
pub struct DriftReport {
    /// Impacted nodes with impact degrees `I_m − I'_m`, ascending node.
    pub impacted: Vec<(usize, f64)>,
    /// The `S` value at which detection stopped (fraction of samples).
    pub final_s: f64,
    /// Detection trace: `(S, impacted node set)` per round (Table 2).
    pub trace: Vec<(f64, Vec<usize>)>,
}

/// Ranks the new-pool samples of `node` by descending deviation from the
/// old training data; returns sample indices, most deviating first.
pub fn deviation_order(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    rng: &mut Prng,
) -> Vec<usize> {
    let old = rt.old_samples(node);
    let new = rt.pools[node].samples();
    rank_against(rt, node, old, new, pca_components, rng)
}

/// The retraining consumption order (§3.3.2): deviation-prioritised but
/// stratified — the ranking is split into a most-deviating half and a
/// remainder, interleaved 1:1. Early slices are thus dominated by the
/// drifted samples (the paper's "samples that deviate the most"), while
/// every SGD stage still sees a distribution mix, which keeps sequential
/// slice training from regressing onto the stale-looking tail at the end
/// of the pool.
pub fn retrain_order(
    rt: &AppRuntime,
    node: usize,
    pca_components: usize,
    rng: &mut Prng,
) -> Vec<usize> {
    let ranked = deviation_order(rt, node, pca_components, rng);
    let n = ranked.len();
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..half {
        out.push(ranked[i]);
        if half + i < n {
            out.push(ranked[half + i]);
        }
    }
    if n % 2 == 1 {
        out.push(ranked[n - 1]);
    }
    out
}

/// Ranks `new` samples by descending cosine deviation of their (PCA'd)
/// feature vectors from the per-class mean feature vectors of `old`.
fn rank_against(
    rt: &AppRuntime,
    node: usize,
    old: &adainf_driftgen::LabeledSamples,
    new: &adainf_driftgen::LabeledSamples,
    pca_components: usize,
    rng: &mut Prng,
) -> Vec<usize> {
    if new.is_empty() || old.is_empty() {
        return (0..new.len()).collect();
    }
    let model = &rt.models[node];
    let old_features = model.features(old);
    let pca = Pca::fit(&old_features, pca_components, rng);
    let old_projected = pca.transform(&old_features);
    // Mean old feature vector per class (golden labels are known for the
    // old training data), falling back to the global mean for classes
    // unseen in the old data. Comparing a new sample against the old
    // mean of *its own class* makes the deviation ranking sensitive to
    // per-class appearance drift.
    let k = pca.k();
    let classes = rt.models[node].classes();
    let global_mean = old_projected.col_means();
    let mut class_means = vec![global_mean.clone(); classes];
    let mut counts = vec![0usize; classes];
    for &label in &old.labels {
        counts[label] += 1;
    }
    for c in 0..classes {
        if counts[c] == 0 {
            continue;
        }
        let mut mean = vec![0.0f32; k];
        for (i, &label) in old.labels.iter().enumerate() {
            if label == c {
                for (m, v) in mean.iter_mut().zip(old_projected.row(i)) {
                    *m += v;
                }
            }
        }
        for m in &mut mean {
            *m /= counts[c] as f32;
        }
        class_means[c] = mean;
    }
    let new_projected = pca.transform(&model.features(new));
    let mut scored: Vec<(usize, f64)> = (0..new.len())
        .map(|i| {
            let mean = &class_means[new.labels[i]];
            (i, cosine_distance(new_projected.row(i), mean))
        })
        .collect();
    // total_cmp would reorder signed zeros and perturb the golden metrics, so:
    // simlint: allow(no-unwrap-in-lib) — cosine distances of unit-normalised rows are finite by construction
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite distances"));
    scored.into_iter().map(|(i, _)| i).collect()
}

/// Runs the §3.2 detection loop over all nodes of one application.
pub fn detect_drift(rt: &mut AppRuntime, config: &AdaInfConfig, rng: &mut Prng) -> DriftReport {
    let n_nodes = rt.spec.nodes.len();
    // Deviation ranking per node, computed once (the ranking does not
    // depend on S; S only selects the prefix).
    let orders: Vec<Vec<usize>> = (0..n_nodes)
        .map(|node| deviation_order(rt, node, config.pca_components, rng))
        .collect();

    // Reference ranking: the held-out old-distribution samples' deviant
    // tail. Their accuracy under the current model is the drift-free
    // counterfactual `I_m` (held-out, so free of memorisation bias).
    let ref_orders: Vec<Vec<usize>> = (0..n_nodes)
        .map(|node| {
            let old = rt.old_samples(node).clone();
            let held_out = rt.ref_samples(node).clone();
            rank_against(rt, node, &old, &held_out, config.pca_components, rng)
        })
        .collect();

    let mut report = DriftReport::default();
    let mut s = config.s_init;
    let mut stable = 0usize;
    let mut last_set: Option<Vec<usize>> = None;
    let mut impacts = vec![0.0f64; n_nodes];

    while stable < config.stable_rounds && s <= 1.0 {
        let mut set = Vec::new();
        for node in 0..n_nodes {
            let pool = rt.pools[node].samples();
            let held_out = rt.ref_samples(node);
            if pool.is_empty() || held_out.is_empty() {
                continue;
            }
            let take = ((s * pool.len() as f64).ceil() as usize).clamp(1, pool.len());
            let subset = pool.select(&orders[node][..take]);
            let ref_take = ((s * held_out.len() as f64).ceil() as usize)
                .clamp(1, held_out.len());
            let reference = held_out.select(&ref_orders[node][..ref_take]);
            let model = &rt.models[node];
            let i_prime = model.accuracy_on(&subset, model.profile.full_cut());
            let i_m = model.accuracy_on(&reference, model.profile.full_cut());
            if i_m - i_prime > config.detect_margin {
                set.push(node);
                impacts[node] = i_m - i_prime;
            }
        }
        report.trace.push((s, set.clone()));
        if last_set.as_deref() == Some(&set) {
            stable += 1;
        } else {
            stable = 1;
            last_set = Some(set);
        }
        report.final_s = s;
        s += config.s_step;
    }

    if let Some(set) = last_set {
        report.impacted = set.into_iter().map(|n| (n, impacts[n])).collect();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_apps::catalog;
    use adainf_driftgen::workload::ArrivalConfig;

    fn drifted_runtime(periods: usize) -> AppRuntime {
        let root = Prng::new(314);
        let mut rt = AppRuntime::new(
            catalog::video_surveillance(0),
            ArrivalConfig::default(),
            800,
            &root,
        );
        for _ in 0..periods {
            rt.advance_period();
        }
        rt
    }

    #[test]
    fn detects_drifted_models_not_stable_ones() {
        let mut rt = drifted_runtime(3);
        let mut rng = Prng::new(1);
        let report = detect_drift(&mut rt, &AdaInfConfig::default(), &mut rng);
        let nodes: Vec<usize> = report.impacted.iter().map(|(n, _)| *n).collect();
        // Node 0 (object detection) is stable and must not be flagged;
        // node 1 (vehicle, severe drift) must be.
        assert!(!nodes.contains(&0), "stable node flagged: {nodes:?}");
        assert!(nodes.contains(&1), "severe-drift node missed: {nodes:?}");
        for (_, impact) in &report.impacted {
            assert!(*impact > 0.0 && *impact <= 1.0);
        }
    }

    #[test]
    fn severe_detected_at_least_as_often_as_moderate() {
        // Obs. 3: among impacted models, the severe-drift vehicle node
        // is hit harder than the moderate-drift person node. With
        // per-class random angular velocities the *degree* after several
        // periods is noisy (both saturate), so we assert the stable
        // statistic: across realisations, early-period detection fires
        // for the severe node at least as often as for the moderate one,
        // and the stable node is never flagged.
        let mut severe_hits = 0;
        let mut moderate_hits = 0;
        let mut stable_hits = 0;
        for seed in 0..6u64 {
            let root = Prng::new(1000 + seed);
            let mut rt = AppRuntime::new(
                catalog::video_surveillance(0),
                ArrivalConfig::default(),
                800,
                &root,
            );
            for _ in 0..2 {
                rt.advance_period();
            }
            let mut rng = Prng::new(seed);
            let report = detect_drift(&mut rt, &AdaInfConfig::default(), &mut rng);
            for (node, _) in &report.impacted {
                match node {
                    0 => stable_hits += 1,
                    1 => severe_hits += 1,
                    2 => moderate_hits += 1,
                    _ => {}
                }
            }
        }
        // Finite-sample tails allow occasional false positives on the
        // stable node, but they must stay rare.
        assert!(stable_hits <= 2, "stable node flagged {stable_hits}/6");
        assert!(
            severe_hits >= moderate_hits,
            "severe {severe_hits} vs moderate {moderate_hits}"
        );
        assert!(severe_hits >= 3, "severe detections too rare: {severe_hits}");
    }

    #[test]
    fn detection_stops_after_stable_rounds() {
        let mut rt = drifted_runtime(2);
        let mut rng = Prng::new(2);
        let config = AdaInfConfig::default();
        let report = detect_drift(&mut rt, &config, &mut rng);
        // The trace's last `stable_rounds` entries carry the same set.
        let k = config.stable_rounds;
        assert!(report.trace.len() >= k);
        let tail = &report.trace[report.trace.len() - k..];
        assert!(tail.windows(2).all(|w| w[0].1 == w[1].1));
        // S never exceeds 100 %.
        assert!(report.final_s <= 1.0 + 1e-9);
    }

    #[test]
    fn matches_full_sample_ground_truth() {
        // Table 2: the iterative process must agree with S = 100 %.
        let mut rt = drifted_runtime(3);
        let mut rng = Prng::new(3);
        let config = AdaInfConfig::default();
        let report = detect_drift(&mut rt, &config, &mut rng);
        let full_cfg = AdaInfConfig {
            s_init: 1.0,
            ..config
        };
        let mut rng2 = Prng::new(3);
        let full = detect_drift(&mut rt, &full_cfg, &mut rng2);
        let a: Vec<usize> = report.impacted.iter().map(|(n, _)| *n).collect();
        let b: Vec<usize> = full.impacted.iter().map(|(n, _)| *n).collect();
        assert_eq!(a, b, "iterative {a:?} vs full-sample {b:?}");
    }

    #[test]
    fn deviation_order_is_permutation() {
        let rt = drifted_runtime(1);
        let mut rng = Prng::new(4);
        let order = deviation_order(&rt, 1, 8, &mut rng);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..order.len()).collect::<Vec<_>>());
    }
}
