//! Online per-application latency prediction for SLO-headroom admission.
//!
//! AdaInf's admission control (see [`crate::degrade`]) decides from the
//! analytic [`LatencyModel`]-derived batch times the harness hands it.
//! Production routers admit on *learned* latency forecasts instead — the
//! llm-d "predicted-latency based load balancing" design: per-target
//! latency predictors trained online from streaming observations, plus a
//! positive-headroom scorer that routes only where the forecast fits the
//! request's SLO. This module is that design recast as pure
//! deterministic Rust:
//!
//! * [`RlsModel`] — an incremental ridge regressor (recursive least
//!   squares with a forgetting factor, Sherman–Morrison form) over a
//!   fixed feature vector: request count, batch size, GPU space
//!   fraction (plus its power-law inverse, the same non-linear scaling
//!   shape [`crate::regression`] fits), the cut structure's compute
//!   cost, retraining load and queueing wait, with
//!   `batch · flops / gpu`-style interaction terms and the *profiled*
//!   per-batch estimate as a calibration-regression baseline (see
//!   [`LatencyFeatures::new`]). Two targets share one gain computation:
//!   the per-batch service time and the fixed pre-batch overhead.
//! * [`LatencyPredictor`] — one [`RlsModel`] per application plus a
//!   warm-up gate: before `warmup` observations have streamed in, it
//!   predicts nothing and callers fall back to the analytic inputs
//!   bit-exactly (enforced by the golden suite).
//! * [`PredictedLatency::headroom_us`] — the SLO-headroom score
//!   `slo − predicted_latency`: positive headroom admits, and the
//!   harness compares forecast against outcome per job
//!   (`predicted_latency_mae_us`, `headroom_violation_rate`).
//!
//! # Determinism
//!
//! The predictor is a pure fold over the observation stream: weights
//! and covariance are `f64` state updated in arrival order with a fixed
//! operation order, no ambient randomness, no wall clock, no
//! collections with nondeterministic iteration. Two runs that feed the
//! same observations in the same order hold bit-identical state — so a
//! fixed-seed simulation stays bit-deterministic with the predictor on.
//! (Unlike the PCA path there is no randomized initialisation to key
//! off `Prng::split` child streams; determinism here needs no RNG at
//! all.)
//!
//! `rls_predict` and `rls_update` are on the per-session hot path and
//! registered in simlint's `[hot]` zero-alloc registry: they operate on
//! fixed-size arrays only.
//!
//! [`LatencyModel`]: ../../adainf_gpusim/struct.LatencyModel.html

/// Dimension of the feature vector (bias included).
pub const FEATURES: usize = 9;

/// Features of one job, identical at predict and observe time.
///
/// All components are scaled to O(1) magnitudes so the regularised
/// covariance stays well-conditioned; the scaling constants are fixed,
/// documented parts of the model (changing them is a re-baseline).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyFeatures {
    /// The scaled feature vector, bias first.
    pub x: [f64; FEATURES],
}

impl LatencyFeatures {
    /// Builds the feature vector of one job.
    ///
    /// * `requests` — request count of the job (queue depth of the
    ///   session's arrivals).
    /// * `batch` — request batch size the plan chose.
    /// * `gpu` — allocated GPU space fraction (in GPU units).
    /// * `structure_flops` — per-sample FLOPs of the job's cut
    ///   structure (the structure-cut signal, in compute terms).
    /// * `retrain_samples` — retraining samples the job carries.
    /// * `wait_us` — serial queueing wait already accrued, µs.
    /// * `analytic_per_batch_us` — the *profiled* per-batch estimate
    ///   for this shape (the offline latency law × the plan's
    ///   communication inflation), µs. This is the calibration-
    ///   regression baseline: the profile already carries the batching
    ///   knee and spill non-linearities a linear model can't learn, so
    ///   RLS only has to fit the online correction on top of it. The
    ///   estimate must be the *fault-free* law — transient device
    ///   stalls are exactly the unobservable regime change the
    ///   forgetting factor exists to track.
    ///
    /// Besides the raw terms, two physically-motivated interactions
    /// carry most of the signal: batch service time scales as
    /// `batch · flops / gpu` and retraining time as
    /// `samples · flops / gpu` — a linear model over the raw terms
    /// alone cannot separate jobs that differ in several of them at
    /// once, which is exactly what drift-diversified workloads do.
    pub fn new(
        requests: u32,
        batch: u32,
        gpu: f64,
        structure_flops: f64,
        retrain_samples: f64,
        wait_us: f64,
        analytic_per_batch_us: f64,
    ) -> Self {
        let g = gpu.max(1.0 / 64.0);
        LatencyFeatures {
            x: [
                1.0,
                requests as f64 / 64.0,
                batch as f64 / 64.0,
                g,
                // Power-law inverse-space term: the same non-linear
                // latency-vs-fraction shape `regression::PowerLawScaler`
                // fits offline, at a fixed reference exponent.
                1.0 / g,
                // Per-batch compute: batch · flops / gpu.
                batch as f64 * structure_flops / (g * 1e9),
                // Retraining compute: samples · flops / gpu.
                retrain_samples * structure_flops / (g * 1e12),
                wait_us / 1e5,
                // Profiled per-batch baseline (calibration regression).
                analytic_per_batch_us / 1e3,
            ],
        }
    }
}

/// A latency forecast for one job shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictedLatency {
    /// Predicted service time of one request batch, µs.
    pub per_batch_us: f64,
    /// Predicted fixed pre-batch overhead (queueing wait + retraining
    /// + reload communication), µs.
    pub fixed_us: f64,
}

impl PredictedLatency {
    /// Predicted completion time of the job's last batch, µs.
    pub fn total_us(&self, n_batches: u32) -> f64 {
        self.fixed_us + self.per_batch_us * n_batches as f64
    }

    /// SLO-headroom score `slo − predicted_latency`, µs. Positive
    /// headroom means the forecast says every batch finishes inside the
    /// SLO; the admission path treats non-negative headroom as "admit".
    pub fn headroom_us(&self, slo_us: f64, n_batches: u32) -> f64 {
        slo_us - self.total_us(n_batches)
    }
}

/// Initial covariance scale: `P₀ = (1/λ)·I` with ridge weight
/// `λ = 1e-2`, i.e. a weakly-informative prior centred on zero weights.
const P0: f64 = 100.0;

/// RLS forgetting factor: past observations decay with this rate, so
/// the model tracks regime changes (a device-stall window inflating
/// service times) instead of freezing on the long-run average.
const FORGET: f64 = 0.995;

/// Covariance leak toward the prior `P₀·I` per update. Plain RLS with
/// forgetting inflates `P` by `1/λf` every step along feature
/// directions the data never excites (a constant cut, the wait term of
/// never-serial jobs) — exponential blow-up that eventually turns a
/// tiny feature wiggle into an unbounded weight swing. Bleeding every
/// entry toward the prior bounds the unexcited eigenvalues at
/// `≈ ε·P₀ / (ε − (1/λf − 1))` (≈ 2·P₀ at these constants) while the
/// filter stays permanently adaptive.
const LEAK: f64 = 0.01;

/// Incremental two-target ridge regressor (RLS, Sherman–Morrison).
#[derive(Clone, Debug)]
pub struct RlsModel {
    /// Inverse regularised covariance `P = (Xᵀ·Λ·X + λI)⁻¹`.
    p: [[f64; FEATURES]; FEATURES],
    /// Weights of the per-batch-latency target.
    w_per_batch: [f64; FEATURES],
    /// Weights of the fixed-overhead target.
    w_fixed: [f64; FEATURES],
    /// Observations folded in so far.
    samples: u64,
}

impl Default for RlsModel {
    fn default() -> Self {
        let mut p = [[0.0; FEATURES]; FEATURES];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = P0;
        }
        RlsModel {
            p,
            w_per_batch: [0.0; FEATURES],
            w_fixed: [0.0; FEATURES],
            samples: 0,
        }
    }
}

/// Forecasts both targets for `feats` from the current weights.
/// Predictions are clamped to be non-negative (a latency forecast below
/// zero is always model error). Allocation-free (simlint `[hot]`).
pub fn rls_predict(model: &RlsModel, feats: &LatencyFeatures) -> PredictedLatency {
    let mut per_batch = 0.0;
    let mut fixed = 0.0;
    for i in 0..FEATURES {
        per_batch += model.w_per_batch[i] * feats.x[i];
        fixed += model.w_fixed[i] * feats.x[i];
    }
    PredictedLatency {
        per_batch_us: per_batch.max(0.0),
        fixed_us: fixed.max(0.0),
    }
}

/// Folds one observation into the model: the standard RLS update with
/// forgetting,
/// `k = P·x / (λf + xᵀ·P·x)`, `w += k·(y − wᵀ·x)`,
/// `P = (P − k·(xᵀ·P)) / λf`,
/// with both targets sharing the gain `k`. Fixed operation order over
/// fixed-size arrays: deterministic and allocation-free (simlint
/// `[hot]`).
pub fn rls_update(
    model: &mut RlsModel,
    feats: &LatencyFeatures,
    per_batch_us: f64,
    fixed_us: f64,
) {
    let x = &feats.x;
    // px = P·x (P is symmetric, so this is also xᵀ·P).
    let mut px = [0.0; FEATURES];
    for (pxi, row) in px.iter_mut().zip(model.p.iter()) {
        let mut acc = 0.0;
        for (pij, xj) in row.iter().zip(x.iter()) {
            acc += pij * xj;
        }
        *pxi = acc;
    }
    let mut xpx = 0.0;
    for (xi, pxi) in x.iter().zip(px.iter()) {
        xpx += xi * pxi;
    }
    let denom = FORGET + xpx;
    // Gain k = px / denom.
    let mut err_pb = per_batch_us;
    let mut err_fx = fixed_us;
    for ((wpb, wfx), xi) in model
        .w_per_batch
        .iter()
        .zip(model.w_fixed.iter())
        .zip(x.iter())
    {
        err_pb -= wpb * xi;
        err_fx -= wfx * xi;
    }
    for ((wpb, wfx), pxi) in model
        .w_per_batch
        .iter_mut()
        .zip(model.w_fixed.iter_mut())
        .zip(px.iter())
    {
        let k = pxi / denom;
        *wpb += k * err_pb;
        *wfx += k * err_fx;
    }
    // P = (P − k·pxᵀ) / λf, preserving symmetry by construction, then
    // the stabilising leak toward P₀·I (see [`LEAK`]).
    for (i, (row, pxi)) in model.p.iter_mut().zip(px.iter()).enumerate() {
        let k = pxi / denom;
        for (j, (pij, pxj)) in row.iter_mut().zip(px.iter()).enumerate() {
            let updated = (*pij - k * pxj) / FORGET;
            let prior = if i == j { P0 } else { 0.0 };
            *pij = updated + LEAK * (prior - updated);
        }
    }
    model.samples += 1;
}

/// One online latency predictor per application, with a warm-up gate.
#[derive(Clone, Debug)]
pub struct LatencyPredictor {
    apps: Vec<RlsModel>,
    /// Observations an app's model needs before it predicts anything.
    warmup: u64,
}

impl LatencyPredictor {
    /// Creates predictors for `num_apps` applications. Until `warmup`
    /// observations have streamed in for an app, [`Self::predict`]
    /// returns `None` and callers fall back to their analytic inputs.
    pub fn new(num_apps: usize, warmup: u64) -> Self {
        LatencyPredictor {
            apps: vec![RlsModel::default(); num_apps],
            warmup,
        }
    }

    /// Observations folded in so far for `app` (0 for unknown apps).
    pub fn samples(&self, app: usize) -> u64 {
        self.apps.get(app).map_or(0, |m| m.samples)
    }

    /// Streams one completed job's observation into `app`'s model.
    pub fn observe(
        &mut self,
        app: usize,
        feats: &LatencyFeatures,
        per_batch_us: f64,
        fixed_us: f64,
    ) {
        if let Some(model) = self.apps.get_mut(app) {
            rls_update(model, feats, per_batch_us, fixed_us);
        }
    }

    /// Forecasts the latency of a job shape, or `None` while `app`'s
    /// model is still warming up (or `app` is unknown).
    pub fn predict(&self, app: usize, feats: &LatencyFeatures) -> Option<PredictedLatency> {
        let model = self.apps.get(app)?;
        if model.samples < self.warmup {
            return None;
        }
        Some(rls_predict(model, feats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(n: u32, batch: u32, gpu: f64) -> LatencyFeatures {
        LatencyFeatures::new(n, batch, gpu, 5e7, 64.0, 0.0, 0.0)
    }

    /// With the profiled estimate as a feature, learning a constant
    /// multiplicative miscalibration takes only a handful of samples,
    /// and the fit generalises across shapes the raw terms alone can't
    /// separate.
    #[test]
    fn analytic_baseline_feature_calibrates_fast() {
        let mut p = LatencyPredictor::new(1, 8);
        let shapes: Vec<f64> = (1..=24).map(|i| 150.0 * i as f64).collect();
        for (i, &a) in shapes.iter().enumerate().cycle().take(96) {
            let f = LatencyFeatures::new(
                16,
                8,
                0.5,
                5e7 * (1 + i % 4) as f64,
                0.0,
                0.0,
                a,
            );
            p.observe(0, &f, 1.07 * a, 25.0);
        }
        for &a in &shapes {
            let f = LatencyFeatures::new(16, 8, 0.5, 5e7, 0.0, 0.0, a);
            let pred = p.predict(0, &f).expect("warm");
            let truth = 1.07 * a;
            assert!(
                (pred.per_batch_us - truth).abs() < 0.03 * truth,
                "analytic {a}: {} vs {truth}",
                pred.per_batch_us
            );
        }
    }

    #[test]
    fn zero_observations_predict_nothing() {
        let p = LatencyPredictor::new(2, 1);
        assert_eq!(p.predict(0, &feats(8, 4, 0.5)), None);
        assert_eq!(p.samples(0), 0);
        // Unknown app: no prediction, no panic.
        assert_eq!(p.predict(9, &feats(8, 4, 0.5)), None);
    }

    #[test]
    fn warmup_gates_predictions() {
        let mut p = LatencyPredictor::new(1, 3);
        let f = feats(8, 4, 0.5);
        p.observe(0, &f, 100.0, 10.0);
        p.observe(0, &f, 100.0, 10.0);
        assert_eq!(p.predict(0, &f), None, "below warmup");
        p.observe(0, &f, 100.0, 10.0);
        assert!(p.predict(0, &f).is_some(), "warmup reached");
    }

    #[test]
    fn converges_on_a_linear_target() {
        // Ground truth: per_batch = 40·(n/64) + 120·(1/g), fixed = 500.
        let mut p = LatencyPredictor::new(1, 8);
        let mut shapes = Vec::new();
        for n in [2u32, 8, 16, 32, 64, 128] {
            for g in [0.125, 0.25, 0.5, 1.0] {
                shapes.push((n, g));
            }
        }
        for pass in 0..40 {
            let (n, g) = shapes[pass % shapes.len()];
            let f = feats(n, 8, g);
            let y = 40.0 * (n as f64 / 64.0) + 120.0 / g.max(1.0 / 64.0);
            p.observe(0, &f, y, 500.0);
        }
        for &(n, g) in &shapes {
            let f = feats(n, 8, g);
            let pred = p.predict(0, &f).expect("warm");
            let truth = 40.0 * (n as f64 / 64.0) + 120.0 / g.max(1.0 / 64.0);
            assert!(
                (pred.per_batch_us - truth).abs() < 0.05 * truth.max(50.0),
                "n={n} g={g}: {} vs {truth}",
                pred.per_batch_us
            );
            assert!((pred.fixed_us - 500.0).abs() < 25.0, "{}", pred.fixed_us);
        }
    }

    #[test]
    fn identical_streams_hold_bit_identical_state() {
        let mut a = LatencyPredictor::new(1, 1);
        let mut b = LatencyPredictor::new(1, 1);
        for i in 0..200u32 {
            let f = feats(1 + i % 50, 4 + i % 8, 0.1 + 0.01 * (i % 9) as f64);
            let y = 31.0 + (i % 13) as f64 * 7.5;
            a.observe(0, &f, y, y * 0.25);
            b.observe(0, &f, y, y * 0.25);
        }
        let f = feats(20, 6, 0.3);
        let (pa, pb) = (a.predict(0, &f).unwrap(), b.predict(0, &f).unwrap());
        assert_eq!(pa.per_batch_us.to_bits(), pb.per_batch_us.to_bits());
        assert_eq!(pa.fixed_us.to_bits(), pb.fixed_us.to_bits());
    }

    #[test]
    fn reconverges_after_a_regime_change() {
        // A device-stall-like shift: the same shapes, service time
        // suddenly 3×. With forgetting, the model tracks the new regime.
        let mut p = LatencyPredictor::new(1, 8);
        let f = feats(16, 8, 0.5);
        for _ in 0..300 {
            p.observe(0, &f, 200.0, 50.0);
        }
        let before = p.predict(0, &f).unwrap();
        assert!((before.per_batch_us - 200.0).abs() < 5.0);
        // Error against a constant shape decays by ≈ the forgetting
        // factor per observation: 600 steps shrink the 400 µs jump to
        // ~20 µs (0.995⁶⁰⁰ ≈ 0.05).
        for _ in 0..600 {
            p.observe(0, &f, 600.0, 50.0);
        }
        let after = p.predict(0, &f).unwrap();
        assert!(
            (after.per_batch_us - 600.0).abs() < 30.0,
            "did not re-converge: {}",
            after.per_batch_us
        );
    }

    #[test]
    fn headroom_scores_the_slo_gap() {
        let pred = PredictedLatency {
            per_batch_us: 1000.0,
            fixed_us: 2000.0,
        };
        assert_eq!(pred.total_us(3), 5000.0);
        assert_eq!(pred.headroom_us(8000.0, 3), 3000.0);
        assert!(pred.headroom_us(4000.0, 3) < 0.0);
    }

    #[test]
    fn predictions_clamp_to_non_negative() {
        let mut m = RlsModel::default();
        // Train on a negative target: raw forecasts would go negative.
        let f = feats(8, 4, 0.5);
        for _ in 0..50 {
            rls_update(&mut m, &f, -100.0, -10.0);
        }
        let pred = rls_predict(&m, &f);
        assert_eq!(pred.per_batch_us, 0.0);
        assert_eq!(pred.fixed_us, 0.0);
    }
}
