//! GPU time division among the DAG vertices of an application (§3.3.2).
//!
//! Given a job's allocated space, AdaInf:
//!
//! 1. chooses an early-exit structure per inference task — the full
//!    structure for models not being retrained; otherwise the cheapest
//!    structure whose (period-refreshed) accuracy clears the threshold
//!    `A_m` — leaving more SLO time for retraining (Obs. 4);
//! 2. re-adjusts the request batch size for the chosen structure (Obs. 6);
//! 3. computes the total inference time `Σ l_k` and the spare time
//!    `T_r = L_s − Σ l_k`;
//! 4. splits `T_r` among the retraining tasks in proportion to their
//!    impact degrees and converts each share into a retraining setting
//!    (samples, batch, epochs) via the offline profiles.

use crate::config::AdaInfConfig;
use crate::plan::RetrainSlice;
use crate::profiler::Profiler;
use crate::ridag::RiDag;
use adainf_apps::AppSpec;
use adainf_gpusim::{EvictionPolicyKind, ExecMode};
use adainf_simcore::SimDuration;

/// The outcome of time division for one job.
#[derive(Clone, Debug)]
pub struct TimeAllocation {
    /// Structure cut per DAG node.
    pub cuts: Vec<usize>,
    /// Re-adjusted request batch size.
    pub batch: u32,
    /// Estimated total inference time of the job.
    pub inference_time: SimDuration,
    /// Retraining slices, one per impacted model with budget > 0.
    pub slices: Vec<RetrainSlice>,
}

/// A retraining slice before the pool bound is applied: `fit` samples
/// fit in the budget; the live pool state caps it at plan time.
#[derive(Clone, Copy, Debug)]
pub struct ProtoSlice {
    /// DAG node (model) index.
    pub node: usize,
    /// Time budget of the slice.
    pub time: SimDuration,
    /// Samples that fit in the budget (uncapped).
    pub fit: u32,
    /// Retraining batch size.
    pub batch: u32,
    /// Epochs per slice.
    pub epochs: u32,
}

/// The pool-independent part of a time division: everything except the
/// clamp of slice samples against the remaining retraining pools. This
/// is what the scheduler's decision cache stores — pools drain between
/// sessions, so the clamp must be re-applied at every lookup.
#[derive(Clone, Debug)]
pub struct TimePlan {
    /// Structure cut per DAG node.
    pub cuts: Vec<usize>,
    /// Re-adjusted request batch size.
    pub batch: u32,
    /// Estimated total inference time of the job.
    pub inference_time: SimDuration,
    /// Retraining slices before pool clamping.
    pub proto: Vec<ProtoSlice>,
}

/// The memory-strategy pair implied by an AdaInf configuration.
pub fn strategies(config: &AdaInfConfig) -> (ExecMode, EvictionPolicyKind) {
    let mode = if config.maximize_memory_usage {
        ExecMode::LayerGrouped
    } else {
        ExecMode::PerRequest
    };
    let policy = if config.priority_eviction {
        EvictionPolicyKind::Priority
    } else {
        EvictionPolicyKind::Lru
    };
    (mode, policy)
}

/// Step 1 — early-exit structure selection per node. Depends only on
/// the period's RI-DAG and refreshed accuracy snapshot, never on the
/// session's GPU fraction or request count, so the scheduler computes
/// it once per period.
pub fn select_structures(
    app: &AppSpec,
    ridag: &RiDag,
    accuracy: &dyn Fn(usize, usize) -> f64,
    initial_acc: &[f64],
    config: &AdaInfConfig,
) -> Vec<usize> {
    app.nodes
        .iter()
        .enumerate()
        .map(|(node, nspec)| {
            let full = nspec.profile.full_cut();
            if !config.use_early_exit || !ridag.retrains(node) {
                // "If there is no retraining task vertex … AdaInf uses the
                // full structure since it does not need to save time."
                return full;
            }
            let threshold = config.a_m * initial_acc[node];
            // Exit points are depth-ordered, so the first passing cut is
            // the cheapest (lowest per-batch latency).
            nspec
                .profile
                .exit_points()
                .into_iter()
                .find(|&cut| accuracy(node, cut) >= threshold)
                .unwrap_or(full)
        })
        .collect()
}

/// Steps 2–4 for pre-selected structures, stopping short of the pool
/// clamp: batch re-adjustment, inference/spare time and the
/// impact-proportional split into (budget, fit, batch) settings.
pub fn plan_time(
    app: &AppSpec,
    ridag: &RiDag,
    cuts: Vec<usize>,
    gpu: f64,
    requests: u32,
    config: &AdaInfConfig,
    profiler: &Profiler,
) -> TimePlan {
    let (mode, policy) = strategies(config);

    // 2. Batch re-adjustment for the chosen structure.
    let dag_cost = app.structure_cost(&cuts);
    let (batch, _) = profiler.optimal_batch_at(&dag_cost, requests.max(1), gpu);

    // 3. Inference time and spare time.
    let inference_time =
        profiler.inference_latency(&dag_cost, requests, batch, gpu, mode, policy);
    let spare = if config.retraining_enabled {
        app.slo.saturating_sub(inference_time)
    } else {
        SimDuration::ZERO
    };

    // 4. Impact-proportional split into retraining settings.
    let mut proto = Vec::new();
    if spare > SimDuration::ZERO && !ridag.entries.is_empty() {
        let total_impact = ridag.total_impact();
        let k = ridag.entries.len() as f64;
        for entry in &ridag.entries {
            let share = if config.use_impact_degrees && total_impact > 0.0 {
                entry.impact / total_impact
            } else {
                1.0 / k
            };
            let budget = spare.mul_f64(share);
            // Retraining always trains the full model; the setting's
            // batch size is chosen for the allocated fraction (a batch
            // past the space's saturation knee would waste the budget).
            let cost = app.nodes[entry.node].profile.full_cost();
            let batch = profiler.best_train_batch(&cost, gpu);
            let fit = profiler.samples_within(&cost, batch, gpu, budget);
            proto.push(ProtoSlice {
                node: entry.node,
                time: budget,
                fit,
                batch,
                epochs: config.retrain_epochs,
            });
        }
    }

    TimePlan {
        cuts,
        batch,
        inference_time,
        proto,
    }
}

/// Applies the live pool state to a plan's proto slices: each slice's
/// samples are capped at the node's remaining pool, and empty slices
/// are dropped. A slice whose node has no pool entry at all (pool state
/// shorter than the DAG — the state pool-exhaustion faults produce) is
/// dropped rather than indexed out of bounds.
pub fn clamp_slices(proto: &[ProtoSlice], pool_remaining: &[usize]) -> Vec<RetrainSlice> {
    proto
        .iter()
        .filter_map(|p| {
            let remaining = *pool_remaining.get(p.node)?;
            let samples = p.fit.min(remaining as u32);
            if samples == 0 {
                return None;
            }
            Some(RetrainSlice {
                node: p.node,
                time: p.time,
                samples,
                batch: p.batch,
                epochs: p.epochs,
            })
        })
        .collect()
}

/// Divides the job's SLO time. `accuracy(node, cut)` is the scheduler's
/// period-refreshed structure-accuracy snapshot; `initial_acc[node]` is
/// `I_m`; `pool_remaining[node]` bounds the retraining samples available.
#[allow(clippy::too_many_arguments)]
pub fn allocate_time(
    app: &AppSpec,
    ridag: &RiDag,
    accuracy: &dyn Fn(usize, usize) -> f64,
    initial_acc: &[f64],
    gpu: f64,
    requests: u32,
    pool_remaining: &[usize],
    config: &AdaInfConfig,
    profiler: &Profiler,
) -> TimeAllocation {
    let cuts = select_structures(app, ridag, accuracy, initial_acc, config);
    let plan = plan_time(app, ridag, cuts, gpu, requests, config, profiler);
    let slices = clamp_slices(&plan.proto, pool_remaining);
    TimeAllocation {
        cuts: plan.cuts,
        batch: plan.batch,
        inference_time: plan.inference_time,
        slices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift_detect::DriftReport;
    use adainf_apps::catalog;

    fn surveillance_setup() -> (AppSpec, RiDag) {
        let app = catalog::video_surveillance(0);
        let report = DriftReport {
            impacted: vec![(1, 0.12), (2, 0.04)],
            final_s: 0.18,
            trace: Vec::new(),
        };
        let dag = RiDag::build(&app, &report);
        (app, dag)
    }

    /// An accuracy oracle where every cut retains 95 % of initial
    /// accuracy except the shallowest, which drops to 70 %.
    fn acc_fn(app: &AppSpec) -> impl Fn(usize, usize) -> f64 + '_ {
        move |node, cut| {
            let first = app.nodes[node].profile.exit_points()[0];
            if cut == first {
                0.70
            } else {
                0.95
            }
        }
    }

    #[test]
    fn unimpacted_models_use_full_structure() {
        let (app, dag) = surveillance_setup();
        let p = Profiler::default();
        let alloc = allocate_time(
            &app,
            &dag,
            &acc_fn(&app),
            &[0.95, 0.95, 0.95],
            0.3,
            32,
            &[1000, 1000, 1000],
            &AdaInfConfig::default(),
            &p,
        );
        // Node 0 (not retrained) must use its full structure; impacted
        // nodes must pick an early exit clearing A_m (skipping the 70 %
        // shallowest exit).
        assert_eq!(alloc.cuts[0], app.nodes[0].profile.full_cut());
        let exits1 = app.nodes[1].profile.exit_points();
        assert_eq!(alloc.cuts[1], exits1[1], "should skip the failing exit");
        assert!(alloc.cuts[1] < app.nodes[1].profile.full_cut());
    }

    #[test]
    fn spare_time_split_follows_impact() {
        let (app, dag) = surveillance_setup();
        let p = Profiler::default();
        let alloc = allocate_time(
            &app,
            &dag,
            &acc_fn(&app),
            &[0.95, 0.95, 0.95],
            0.3,
            16,
            &[100_000, 100_000, 100_000],
            &AdaInfConfig::default(),
            &p,
        );
        assert_eq!(alloc.slices.len(), 2);
        let s1 = alloc.slices.iter().find(|s| s.node == 1).unwrap();
        let s2 = alloc.slices.iter().find(|s| s.node == 2).unwrap();
        // Impact 0.12 vs 0.04 → 3:1 time split.
        let ratio = s1.time.as_millis_f64() / s2.time.as_millis_f64();
        assert!((ratio - 3.0).abs() < 0.05, "ratio {ratio}");
        // The budgets must fit inside the SLO spare time.
        let total: f64 = alloc.slices.iter().map(|s| s.time.as_millis_f64()).sum();
        assert!(
            total <= app.slo.as_millis_f64() - alloc.inference_time.as_millis_f64() + 0.01
        );
    }

    #[test]
    fn variant_i_splits_evenly() {
        let (app, dag) = surveillance_setup();
        let p = Profiler::default();
        let alloc = allocate_time(
            &app,
            &dag,
            &acc_fn(&app),
            &[0.95, 0.95, 0.95],
            0.3,
            16,
            &[100_000, 100_000, 100_000],
            &AdaInfConfig::variant_i(),
            &p,
        );
        let times: Vec<f64> = alloc.slices.iter().map(|s| s.time.as_millis_f64()).collect();
        assert!((times[0] - times[1]).abs() < 0.01, "{times:?}");
    }

    #[test]
    fn variant_e_uses_full_structures() {
        let (app, dag) = surveillance_setup();
        let p = Profiler::default();
        let alloc = allocate_time(
            &app,
            &dag,
            &acc_fn(&app),
            &[0.95, 0.95, 0.95],
            0.3,
            16,
            &[1000, 1000, 1000],
            &AdaInfConfig::variant_e(),
            &p,
        );
        assert_eq!(alloc.cuts, app.full_cuts());
    }

    #[test]
    fn pool_exhaustion_limits_samples() {
        let (app, dag) = surveillance_setup();
        let p = Profiler::default();
        let alloc = allocate_time(
            &app,
            &dag,
            &acc_fn(&app),
            &[0.95, 0.95, 0.95],
            0.3,
            16,
            &[5, 0, 0],
            &AdaInfConfig::default(),
            &p,
        );
        // Pools for nodes 1 and 2 are empty → no slices at all.
        assert!(alloc.slices.is_empty(), "{:?}", alloc.slices);
    }

    #[test]
    fn clamp_drops_slices_past_the_pool_vector() {
        // A proto slice whose node id exceeds the pool state (the shape
        // pool-exhaustion faults produce) is dropped, not a panic.
        let proto = vec![
            ProtoSlice {
                node: 0,
                time: SimDuration::from_millis(10),
                fit: 32,
                batch: 16,
                epochs: 1,
            },
            ProtoSlice {
                node: 5,
                time: SimDuration::from_millis(10),
                fit: 32,
                batch: 16,
                epochs: 1,
            },
        ];
        let slices = clamp_slices(&proto, &[20]);
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].node, 0);
        assert_eq!(slices[0].samples, 20, "capped at the remaining pool");
    }

    #[test]
    fn no_retraining_when_disabled() {
        let (app, dag) = surveillance_setup();
        let p = Profiler::default();
        let alloc = allocate_time(
            &app,
            &dag,
            &acc_fn(&app),
            &[0.95, 0.95, 0.95],
            0.3,
            16,
            &[1000, 1000, 1000],
            &AdaInfConfig::early_without_retraining(),
            &p,
        );
        assert!(alloc.slices.is_empty());
        // Early exits still used (it is "Early"-w/o).
        assert!(alloc.cuts[1] < app.nodes[1].profile.full_cut());
    }

    #[test]
    fn overloaded_job_gets_no_spare_time() {
        let (app, dag) = surveillance_setup();
        let p = Profiler::default();
        // A tiny fraction with a large job: inference exceeds the SLO.
        let alloc = allocate_time(
            &app,
            &dag,
            &acc_fn(&app),
            &[0.95, 0.95, 0.95],
            0.005,
            256,
            &[1000, 1000, 1000],
            &AdaInfConfig::default(),
            &p,
        );
        assert!(alloc.inference_time > app.slo);
        assert!(alloc.slices.is_empty());
    }
}
