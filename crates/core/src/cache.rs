//! Scheduler decision caching.
//!
//! The §3.3 searches (SLO-demand inversion, batch re-adjustment and the
//! §3.3.2 time split) are pure functions of the session inputs and the
//! period's drift state, and the simulator's session states recur: the
//! request predictor is integer-quantised, space division rounds the
//! concurrent-session count `s` up to an integer and every allocation is
//! snapped onto the centi-GPU grid ([`crate::space`]), so gpu fractions
//! are drawn from a small recurrent set and after a short transient the
//! same `(gpu fraction, predicted requests)` pairs are presented over
//! and over. The cache memoises the search results keyed
//! on the **exact bit pattern** of the inputs — a hit replays the
//! identical decision, so cached and uncached runs are bit-for-bit
//! indistinguishable (enforced by the golden determinism tests).
//!
//! Invalidation: per-app demand curves and joint batch/space choices
//! depend only on the immutable [`AppSpec`](adainf_apps::AppSpec)s, so
//! they live for the scheduler's lifetime. Time plans depend on the
//! period's RI-DAG and refreshed accuracy tables, so
//! [`DecisionCache::start_period`] drops them at every period boundary
//! (and thus on every drift-impact change).

use crate::timealloc::TimePlan;
use std::collections::BTreeMap;

/// Key for the gpu-fraction-dependent caches: `(app, requests,
/// gpu.to_bits())`. Keying on the exact bits (not a quantisation) is what
/// keeps cache hits decision-identical.
type FracKey = (usize, u32, u64);

/// Per-table entry bound. The tables memoise pure functions, so evicting
/// never changes a decision — only costs a recompute — and the bound
/// keeps a pathological key stream (e.g. non-recurrent float fractions)
/// from growing memory without limit. Eviction pops the smallest key,
/// which is deterministic for a deterministic key stream. The cap sits
/// well above the working set a quantised key stream produces (a few
/// thousand `(app, requests, fraction)` combinations): a cap *below* the
/// working set does not merely degrade — `pop_first` keeps deleting the
/// lowest-sorted live keys, so those keys miss on every lookup forever.
const TABLE_CAP: usize = 65_536;

/// Memoisation tables for the per-session scheduling searches.
#[derive(Clone, Debug, Default)]
pub struct DecisionCache {
    /// `(app, requests)` → SLO-demand fraction (§3.3.1 inversion).
    /// Valid for the scheduler's lifetime.
    demand: BTreeMap<(usize, u32), f64>,
    /// `(app, requests)` → joint `(fraction, batch)` choice (§6).
    /// Valid for the scheduler's lifetime.
    joint: BTreeMap<(usize, u32), (f64, u32)>,
    /// `(app, requests, gpu)` → re-adjusted request batch (§3.3.1 step 2).
    /// Valid for the scheduler's lifetime (costs are spec-fixed).
    batch_at: BTreeMap<FracKey, u32>,
    /// `(app, requests, gpu)` → pool-independent §3.3.2 time plan.
    /// Cleared every period.
    plan: BTreeMap<FracKey, TimePlan>,
    /// Lookups answered from a table.
    pub hits: u64,
    /// Lookups that ran the underlying search.
    pub misses: u64,
    /// Entries dropped to keep a table within the capacity bound
    /// (`TABLE_CAP`).
    pub evictions: u64,
}

impl DecisionCache {
    /// Drops every table whose inputs change at a period boundary.
    pub fn start_period(&mut self) {
        self.plan.clear();
    }

    /// Fraction of lookups answered from a table.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Memoised SLO-demand fraction for `(app, requests)`.
    pub fn demand(&mut self, app: usize, requests: u32, compute: impl FnOnce() -> f64) -> f64 {
        if self.demand.len() >= TABLE_CAP
            && !self.demand.contains_key(&(app, requests))
            && self.demand.pop_first().is_some()
        {
            self.evictions += 1;
        }
        match self.demand.entry((app, requests)) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.hits += 1;
                *e.get()
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.misses += 1;
                *e.insert(compute())
            }
        }
    }

    /// Memoised joint `(fraction, batch)` choice for `(app, requests)`.
    pub fn joint(
        &mut self,
        app: usize,
        requests: u32,
        compute: impl FnOnce() -> (f64, u32),
    ) -> (f64, u32) {
        if self.joint.len() >= TABLE_CAP
            && !self.joint.contains_key(&(app, requests))
            && self.joint.pop_first().is_some()
        {
            self.evictions += 1;
        }
        match self.joint.entry((app, requests)) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.hits += 1;
                *e.get()
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.misses += 1;
                *e.insert(compute())
            }
        }
    }

    /// `strict-invariants` check on a float cache key: the key must be a
    /// finite fraction whose bit pattern round-trips, or "same key" and
    /// "same decision inputs" stop being the same thing.
    fn check_key(gpu: f64) {
        if cfg!(feature = "strict-invariants") {
            assert!(
                gpu.is_finite(),
                "strict-invariants: non-finite gpu fraction {gpu} used as a cache key"
            );
            assert_eq!(
                f64::from_bits(gpu.to_bits()).to_bits(),
                gpu.to_bits(),
                "strict-invariants: cache key does not round-trip through to_bits"
            );
        }
    }

    /// Memoised batch re-adjustment for `(app, requests, gpu)`.
    pub fn batch_at(
        &mut self,
        app: usize,
        requests: u32,
        gpu: f64,
        compute: impl FnOnce() -> u32,
    ) -> u32 {
        Self::check_key(gpu);
        let key = (app, requests, gpu.to_bits());
        if self.batch_at.len() >= TABLE_CAP
            && !self.batch_at.contains_key(&key)
            && self.batch_at.pop_first().is_some()
        {
            self.evictions += 1;
        }
        match self.batch_at.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.hits += 1;
                *e.get()
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.misses += 1;
                *e.insert(compute())
            }
        }
    }

    /// Memoised §3.3.2 time plan for `(app, requests, gpu)`. Returns a
    /// shared reference into the table; the caller clamps the proto
    /// slices against the live pool state.
    pub fn plan(
        &mut self,
        app: usize,
        requests: u32,
        gpu: f64,
        compute: impl FnOnce() -> TimePlan,
    ) -> &TimePlan {
        Self::check_key(gpu);
        let key = (app, requests, gpu.to_bits());
        // Evict *before* taking the entry: the returned reference must
        // point at the entry just looked up, never at one being dropped.
        if self.plan.len() >= TABLE_CAP
            && !self.plan.contains_key(&key)
            && self.plan.pop_first().is_some()
        {
            self.evictions += 1;
        }
        match self.plan.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(compute())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_simcore::SimDuration;

    #[test]
    fn demand_computes_once_per_key() {
        let mut cache = DecisionCache::default();
        let mut calls = 0;
        for _ in 0..3 {
            let d = cache.demand(0, 16, || {
                calls += 1;
                0.25
            });
            assert_eq!(d, 0.25);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.hits, 2);
        assert_eq!(cache.misses, 1);
        // A different key computes again.
        cache.demand(0, 17, || {
            calls += 1;
            0.5
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn plan_cleared_at_period_boundary_others_survive() {
        let mut cache = DecisionCache::default();
        let mk = || TimePlan {
            cuts: vec![2],
            batch: 8,
            inference_time: SimDuration::from_millis(10),
            proto: Vec::new(),
        };
        cache.plan(0, 16, 0.25, mk);
        cache.demand(0, 16, || 0.3);
        cache.start_period();
        let mut recomputed = false;
        cache.plan(0, 16, 0.25, || {
            recomputed = true;
            mk()
        });
        assert!(recomputed, "plans must not survive the period boundary");
        let mut demand_recomputed = false;
        cache.demand(0, 16, || {
            demand_recomputed = true;
            0.3
        });
        assert!(!demand_recomputed, "demand tables are spec-lifetime");
    }

    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "non-finite gpu fraction")]
    fn strict_rejects_nan_keys() {
        let mut cache = DecisionCache::default();
        cache.batch_at(0, 16, f64::NAN, || 8);
    }

    #[test]
    fn tables_bounded_by_cap() {
        let mut cache = DecisionCache::default();
        let n = TABLE_CAP as u32 + 10;
        for r in 0..n {
            cache.demand(0, r, || f64::from(r));
        }
        assert_eq!(cache.evictions, 10);
        // The latest entry survives and replays its cached value.
        assert_eq!(cache.demand(0, n - 1, || unreachable!()), f64::from(n - 1));
        // Re-presenting an existing key at cap must not evict anything.
        let before = cache.evictions;
        cache.demand(0, n - 1, || unreachable!());
        assert_eq!(cache.evictions, before);
    }

    #[test]
    fn distinct_gpu_bits_are_distinct_keys() {
        let mut cache = DecisionCache::default();
        cache.batch_at(0, 16, 0.25, || 8);
        let b = cache.batch_at(0, 16, 0.250000001, || 4);
        assert_eq!(b, 4, "nearby fractions must not alias");
        assert_eq!(cache.batch_at(0, 16, 0.25, || unreachable!()), 8);
    }
}
