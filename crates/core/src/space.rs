//! GPU space division among applications (§3.3.1).
//!
//! With `T_a` the average time to complete a job, `s = ⌈T_a / 5 ms⌉`
//! sessions run concurrently (partial sessions cannot overlap), so each
//! session receives `G / s` of the edge server's `G` GPUs. Within a
//! session, each job gets space
//! proportional to its demand: the fraction `G^i` that the fitted
//! regression says is needed to pull the job's best full-GPU worst-case
//! latency `L^i_w` down to its SLO `L^i_s`. The batch size is then
//! re-adjusted for the actually allocated space (Obs. 6).

use crate::cache::DecisionCache;
use crate::profiler::Profiler;
use adainf_gpusim::StructureCost;
use adainf_simcore::time::SESSION;
use adainf_simcore::SimDuration;

/// One job's demand description for space division.
#[derive(Clone, Copy, Debug)]
pub struct JobDemand {
    /// Application index.
    pub app: usize,
    /// Predicted requests this session.
    pub requests: u32,
    /// Full-structure cost of the application's initial DAG (profiling
    /// uses the DAG without retraining tasks, §3.3.1).
    pub cost: StructureCost,
    /// The application's latency SLO.
    pub slo: SimDuration,
}

/// The space division outcome for one job.
#[derive(Clone, Copy, Debug)]
pub struct JobSpace {
    /// Application index.
    pub app: usize,
    /// Allocated GPU amount (GPU units, ≤ 1 per job).
    pub gpu: f64,
    /// Batch size re-adjusted for the allocated space.
    pub batch: u32,
}

/// Snaps a GPU fraction onto the scheduler's allocation grid: whole
/// centi-GPUs (integer percent, the granularity real MPS-style sharing
/// exposes via active-thread percentages), with a one-milli-GPU floor so
/// a starved job keeps the minimal allocation the server ledger can
/// represent. Finer precision in the scheduler's promise is unobservable
/// downstream — the edge server accounts in-flight space in integer
/// milli-GPUs — and snapping keeps the derived fractions on a small
/// recurrent set of bit patterns, which the decision cache's exact-key
/// tables rely on to ever see a repeat.
pub fn quantize_space(gpu: f64) -> f64 {
    ((gpu * 100.0).round() / 100.0).max(1e-3)
}

/// The SLO-derived demand fraction of one job (§3.3.1): the fraction the
/// fitted regression says pulls the job's best full-GPU worst case down
/// to its SLO. Depends only on the job's (spec-fixed) cost, SLO and
/// request count — the memoisation axis of the decision cache.
pub fn slo_demand(job: &JobDemand, profiler: &Profiler) -> f64 {
    let (_b, l_w) = profiler.optimal_batch_full(&job.cost, job.requests);
    profiler
        .scaler
        .required_fraction(l_w.as_millis_f64(), job.slo.as_millis_f64())
        .max(1e-3)
}

/// The §6 joint `(fraction, batch)` choice of one job: for every batch
/// candidate, invert the regression from that batch's own full-GPU worst
/// case; keep the pair with the smallest fraction that meets the SLO.
pub fn joint_choice(job: &JobDemand, profiler: &Profiler) -> (f64, u32) {
    use adainf_gpusim::latency::BATCH_CANDIDATES;
    BATCH_CANDIDATES
        .iter()
        .map(|&b| {
            let full = profiler.worst_case_full(&job.cost, job.requests, b);
            let g = profiler
                .scaler
                .required_fraction(full.as_millis_f64(), job.slo.as_millis_f64())
                .max(1e-3);
            (g, b)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite fractions")) // simlint: allow(no-unwrap-in-lib) — fractions are clamped to [1e-3, ..], never NaN
        .expect("candidates non-empty") // simlint: allow(no-unwrap-in-lib) — BATCH_CANDIDATES is a non-empty const
}

/// Divides `total_gpus` among the session's jobs.
///
/// `avg_job_time` is the EWMA of recent job completion times (`T_a`);
/// `slo_aware = false` is the AdaInf/S ablation (even split).
pub fn divide_space(
    jobs: &[JobDemand],
    total_gpus: f64,
    avg_job_time: SimDuration,
    slo_aware: bool,
    profiler: &Profiler,
) -> Vec<JobSpace> {
    divide_space_inner(jobs, total_gpus, avg_job_time, slo_aware, profiler, None)
}

/// [`divide_space`] with the demand inversion and batch re-adjustment
/// memoised in `cache`. Bit-identical to the uncached division: the
/// cache stores the exact values the searches would produce.
pub fn divide_space_cached(
    jobs: &[JobDemand],
    total_gpus: f64,
    avg_job_time: SimDuration,
    slo_aware: bool,
    profiler: &Profiler,
    cache: &mut DecisionCache,
) -> Vec<JobSpace> {
    divide_space_inner(
        jobs,
        total_gpus,
        avg_job_time,
        slo_aware,
        profiler,
        Some(cache),
    )
}

fn divide_space_inner(
    jobs: &[JobDemand],
    total_gpus: f64,
    avg_job_time: SimDuration,
    slo_aware: bool,
    profiler: &Profiler,
    mut cache: Option<&mut DecisionCache>,
) -> Vec<JobSpace> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // Concurrent sessions: s = T_a / 5 ms, rounded up to a whole
    // session, at least 1. Partial sessions cannot overlap, and the
    // integer count keeps the derived gpu fractions on a small
    // recurrent set — the EWMA `T_a` varies continuously, and feeding
    // it through unrounded would make every period's fractions novel
    // bit patterns, defeating the decision cache's exact-key tables.
    let s = (avg_job_time.as_millis_f64() / SESSION.as_millis_f64())
        .ceil()
        .max(1.0);
    let session_pool = total_gpus / s;

    // Demand per job: fraction needed to meet the SLO from the best
    // full-GPU batch configuration.
    let demands: Vec<f64> = jobs
        .iter()
        .map(|j| {
            if !slo_aware {
                return 1.0;
            }
            match cache.as_deref_mut() {
                Some(c) => c.demand(j.app, j.requests, || slo_demand(j, profiler)),
                None => slo_demand(j, profiler),
            }
        })
        .collect();
    let total_demand: f64 = demands.iter().sum();

    jobs.iter()
        .zip(&demands)
        .map(|(j, d)| {
            let gpu = quantize_space((session_pool * d / total_demand).clamp(1e-3, 1.0));
            let batch = match cache.as_deref_mut() {
                Some(c) => c.batch_at(j.app, j.requests, gpu, || {
                    profiler.optimal_batch_at(&j.cost, j.requests, gpu).0
                }),
                None => profiler.optimal_batch_at(&j.cost, j.requests, gpu).0,
            };
            JobSpace {
                app: j.app,
                gpu,
                batch,
            }
        })
        .collect()
}

/// §6 "Design Challenge" extension: decide the batch size and required
/// fraction **jointly** — for every batch candidate, invert the
/// regression from that batch's own full-GPU worst case, and keep the
/// `(batch, fraction)` pair with the smallest fraction that meets the
/// SLO. No post-allocation re-adjustment is needed.
pub fn divide_space_joint(
    jobs: &[JobDemand],
    total_gpus: f64,
    avg_job_time: SimDuration,
    profiler: &Profiler,
) -> Vec<JobSpace> {
    divide_space_joint_inner(jobs, total_gpus, avg_job_time, profiler, None)
}

/// [`divide_space_joint`] with the per-job choice memoised in `cache`.
pub fn divide_space_joint_cached(
    jobs: &[JobDemand],
    total_gpus: f64,
    avg_job_time: SimDuration,
    profiler: &Profiler,
    cache: &mut DecisionCache,
) -> Vec<JobSpace> {
    divide_space_joint_inner(jobs, total_gpus, avg_job_time, profiler, Some(cache))
}

fn divide_space_joint_inner(
    jobs: &[JobDemand],
    total_gpus: f64,
    avg_job_time: SimDuration,
    profiler: &Profiler,
    mut cache: Option<&mut DecisionCache>,
) -> Vec<JobSpace> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // Whole concurrent sessions, as in `divide_space_inner`.
    let s = (avg_job_time.as_millis_f64() / SESSION.as_millis_f64())
        .ceil()
        .max(1.0);
    let session_pool = total_gpus / s;

    let choices: Vec<(f64, u32)> = jobs
        .iter()
        .map(|j| match cache.as_deref_mut() {
            Some(c) => c.joint(j.app, j.requests, || joint_choice(j, profiler)),
            None => joint_choice(j, profiler),
        })
        .collect();
    let total_demand: f64 = choices.iter().map(|(g, _)| g).sum();

    jobs.iter()
        .zip(&choices)
        .map(|(j, &(g, batch))| JobSpace {
            app: j.app,
            gpu: quantize_space((session_pool * g / total_demand).clamp(1e-3, 1.0)),
            batch,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(app: usize, requests: u32, flops: f64, slo_ms: u64) -> JobDemand {
        JobDemand {
            app,
            requests,
            cost: StructureCost {
                flops_per_sample: flops,
                activation_bytes: 2.0e6 * flops / 1.5e8,
                param_bytes: 3.0e7,
            },
            slo: SimDuration::from_millis(slo_ms),
        }
    }

    #[test]
    fn heavier_jobs_get_more_space() {
        let p = Profiler::default();
        let jobs = vec![
            demand(0, 32, 1.5e8, 400),
            demand(1, 32, 3.0e7, 400), // 5× lighter
        ];
        let div = divide_space(&jobs, 4.0, SimDuration::from_millis(100), true, &p);
        assert_eq!(div.len(), 2);
        assert!(
            div[0].gpu > div[1].gpu * 1.5,
            "heavy {} vs light {}",
            div[0].gpu,
            div[1].gpu
        );
    }

    #[test]
    fn tighter_slo_gets_more_space() {
        let p = Profiler::default();
        let jobs = vec![demand(0, 32, 1.5e8, 400), demand(1, 32, 1.5e8, 600)];
        let div = divide_space(&jobs, 4.0, SimDuration::from_millis(100), true, &p);
        assert!(div[0].gpu > div[1].gpu);
    }

    #[test]
    fn even_split_when_not_slo_aware() {
        let p = Profiler::default();
        let jobs = vec![demand(0, 32, 1.5e8, 400), demand(1, 32, 1.0e7, 600)];
        let div = divide_space(&jobs, 4.0, SimDuration::from_millis(100), false, &p);
        assert!((div[0].gpu - div[1].gpu).abs() < 1e-9);
    }

    #[test]
    fn more_concurrency_means_smaller_pool() {
        let p = Profiler::default();
        let jobs = vec![demand(0, 32, 1.5e8, 400)];
        let short = divide_space(&jobs, 4.0, SimDuration::from_millis(20), true, &p);
        let long = divide_space(&jobs, 4.0, SimDuration::from_millis(400), true, &p);
        assert!(short[0].gpu > long[0].gpu);
    }

    #[test]
    fn batch_adapts_to_allocation() {
        let p = Profiler::default();
        // A job alone on a big server gets a large fraction → batch 16;
        // squeezed among many concurrent sessions → smaller batch.
        let jobs = vec![demand(0, 64, 1.5e8, 400)];
        let roomy = divide_space(&jobs, 8.0, SimDuration::from_millis(10), true, &p);
        let tight = divide_space(&jobs, 1.0, SimDuration::from_millis(500), true, &p);
        assert!(roomy[0].batch >= tight[0].batch);
        assert!(tight[0].batch >= 1);
    }

    #[test]
    fn allocations_sit_on_the_centi_gpu_grid() {
        let p = Profiler::default();
        let jobs = vec![
            demand(0, 37, 1.5e8, 400),
            demand(1, 53, 3.0e7, 450),
            demand(2, 11, 6.0e7, 500),
        ];
        let div = divide_space(&jobs, 4.0, SimDuration::from_millis(137), true, &p);
        let joint = divide_space_joint(&jobs, 4.0, SimDuration::from_millis(137), &p);
        for d in div.iter().chain(&joint) {
            let centi = d.gpu * 100.0;
            assert!(
                (centi - centi.round()).abs() < 1e-9 || d.gpu == 1e-3,
                "app {} gpu {} is off-grid",
                d.app,
                d.gpu
            );
            assert!(d.gpu >= 1e-3 && d.gpu <= 1.0);
        }
        // The starvation floor itself is representable.
        assert_eq!(quantize_space(0.0001), 1e-3);
        assert_eq!(quantize_space(0.234567), 0.23);
    }

    #[test]
    fn empty_jobs_yield_empty_division() {
        let p = Profiler::default();
        assert!(divide_space(&[], 4.0, SimDuration::from_millis(100), true, &p).is_empty());
        assert!(divide_space_joint(&[], 4.0, SimDuration::from_millis(100), &p).is_empty());
    }

    #[test]
    fn joint_division_allocates_comparable_space() {
        // The one-shot decision should land near the two-step result for
        // typical jobs (the two approaches only diverge when the batch
        // re-adjustment would change the choice a lot).
        let p = Profiler::default();
        let jobs = vec![demand(0, 32, 1.5e8, 400), demand(1, 32, 6.0e7, 500)];
        let two_step = divide_space(&jobs, 4.0, SimDuration::from_millis(100), true, &p);
        let joint = divide_space_joint(&jobs, 4.0, SimDuration::from_millis(100), &p);
        for (a, b) in two_step.iter().zip(&joint) {
            assert_eq!(a.app, b.app);
            assert!(b.gpu > 0.0 && b.gpu <= 1.0);
            assert!(
                (a.gpu - b.gpu).abs() < a.gpu.max(b.gpu),
                "two-step {} vs joint {}",
                a.gpu,
                b.gpu
            );
        }
    }
}
