//! Graceful-degradation decisions for overloaded sessions.
//!
//! AdaInf's time allocation (§3.3.2) assumes the planned work fits the
//! SLO; under injected faults (request bursts, device stalls, memory
//! pressure — see `adainf-driftgen`'s `faultgen`) it does not, and a
//! scheduler that keeps executing doomed plans wastes GPU time making
//! every job late. This module holds the pure decision functions the
//! harness applies on impaired sessions:
//!
//! * **SLO-aware admission control** ([`admit_within_slo`]) — extend the
//!   serial-queue frame-shedding logic to overload: admit only the
//!   request prefix whose batches can still finish inside the SLO and
//!   shed the rest up front, freeing their service time.
//! * **Inference-only fallback** ([`should_shed_retraining`]) — when the
//!   spare time a plan reserved for retraining has collapsed, drop the
//!   retraining slices (their samples stay in the pool for calmer
//!   sessions) rather than blow the inference SLO.
//! * **Bounded reload retry** ([`ReloadState`]) — under memory pressure,
//!   evicted parameters are re-fetched at most
//!   [`DegradePolicy::max_reload_retries`] consecutive times; after
//!   that the app serves in a degraded steady state instead of
//!   thrashing the PCIe bus every session.
//!
//! All functions are deterministic and allocation-free; the harness
//! calls them only on sessions with an active fault window, so runs
//! without faults are bit-identical to runs without the machinery.

use adainf_simcore::SimDuration;

/// Knobs of the degradation behaviour. `Copy` so it can ride inside the
/// harness run configuration's functional updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Shed requests that cannot finish within the SLO instead of
    /// running batches that are doomed to miss.
    pub admission_control: bool,
    /// Drop planned retraining slices when spare time collapses.
    pub inference_only_under_pressure: bool,
    /// Consecutive failed parameter reloads tolerated under memory
    /// pressure before the app gives up and serves degraded.
    pub max_reload_retries: u32,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            admission_control: true,
            inference_only_under_pressure: true,
            max_reload_retries: 3,
        }
    }
}

/// Outcome of admission control for one job: `admitted + shed`
/// reconstructs the arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// Requests admitted for service.
    pub admitted: u32,
    /// Requests shed up front (counted as SLO misses, but consuming no
    /// service time).
    pub shed: u32,
}

/// Admits the largest request prefix whose sequential batches all
/// finish within the SLO.
///
/// `fixed` is the latency already committed before the first batch
/// completes (queueing wait + retraining time + reload communication);
/// `per_batch` the service time of one batch of `batch` requests. Since
/// batches complete sequentially, batch `i` finishes at
/// `fixed + per_batch·(i+1)`: the number of batches that fit is
/// `⌊(slo − fixed) / per_batch⌋`, and partial batches past that point
/// would miss, so admission is rounded down to whole batches.
pub fn admit_within_slo(
    n: u32,
    batch: u32,
    per_batch: SimDuration,
    fixed: SimDuration,
    slo: SimDuration,
) -> Admission {
    if n == 0 {
        return Admission {
            admitted: 0,
            shed: 0,
        };
    }
    let budget = slo.saturating_sub(fixed);
    let per_batch_us = per_batch.as_micros().max(1);
    let max_batches = budget.as_micros() / per_batch_us;
    let cap = max_batches.saturating_mul(batch.max(1) as u64);
    let admitted = (n as u64).min(cap) as u32;
    Admission {
        admitted,
        shed: n - admitted,
    }
}

/// True when running the planned retraining ahead of inference would
/// push the job past its SLO — the spare time the plan assumed has
/// collapsed, so the session falls back to inference-only serving.
pub fn should_shed_retraining(
    fixed: SimDuration,
    retrain: SimDuration,
    inference: SimDuration,
    slo: SimDuration,
) -> bool {
    retrain > SimDuration::ZERO && fixed + retrain + inference > slo
}

/// Per-application bounded-retry bookkeeping for reloading evicted
/// content under memory pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReloadState {
    attempts: u32,
    gave_up: bool,
}

impl ReloadState {
    /// True once the retry budget is exhausted: the app serves degraded
    /// until the pressure window ends.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// Consecutive failures so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Records one failed reload (the parameters were evicted again
    /// before the next session). Returns `false` exactly when this
    /// failure exhausts the budget of `max_retries`.
    pub fn record_failure(&mut self, max_retries: u32) -> bool {
        self.attempts = self.attempts.saturating_add(1);
        if self.attempts > max_retries {
            self.gave_up = true;
        }
        !self.gave_up
    }

    /// Records a reload that stuck (parameters still resident): the
    /// consecutive-failure count resets.
    pub fn record_success(&mut self) {
        *self = ReloadState::default();
    }

    /// Clears all state (pressure window closed).
    pub fn reset(&mut self) {
        *self = ReloadState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn admission_is_exact_at_batch_edges() {
        // 10 ms per batch of 16, 100 ms budget after 20 ms fixed →
        // 10 whole batches fit → 160 requests.
        let adm = admit_within_slo(200, 16, ms(10), ms(20), ms(120));
        assert_eq!(adm.admitted, 160);
        assert_eq!(adm.shed, 40);
        // One microsecond short of the budget drops a whole batch.
        let adm2 = admit_within_slo(
            200,
            16,
            ms(10),
            ms(20),
            ms(120) - SimDuration::from_micros(1),
        );
        assert_eq!(adm2.admitted, 144);
    }

    #[test]
    fn admission_passes_through_when_everything_fits() {
        let adm = admit_within_slo(40, 16, ms(10), ms(0), ms(400));
        assert_eq!(adm.admitted, 40);
        assert_eq!(adm.shed, 0);
    }

    #[test]
    fn admission_sheds_everything_when_fixed_exceeds_slo() {
        let adm = admit_within_slo(40, 16, ms(10), ms(500), ms(400));
        assert_eq!(adm.admitted, 0);
        assert_eq!(adm.shed, 40);
    }

    #[test]
    fn zero_arrivals_admit_nothing() {
        let adm = admit_within_slo(0, 16, ms(10), ms(0), ms(400));
        assert_eq!((adm.admitted, adm.shed), (0, 0));
    }

    #[test]
    fn retraining_sheds_only_when_it_breaks_the_slo() {
        assert!(!should_shed_retraining(ms(0), ms(100), ms(200), ms(400)));
        assert!(should_shed_retraining(ms(0), ms(300), ms(200), ms(400)));
        // No retraining planned → nothing to shed even when late.
        assert!(!should_shed_retraining(ms(300), ms(0), ms(200), ms(400)));
    }

    #[test]
    fn reload_retry_is_bounded_and_resets_on_success() {
        let mut s = ReloadState::default();
        assert!(s.record_failure(3));
        assert!(s.record_failure(3));
        s.record_success();
        assert_eq!(s.attempts(), 0);
        // Three tolerated failures, the fourth gives up.
        assert!(s.record_failure(3));
        assert!(s.record_failure(3));
        assert!(s.record_failure(3));
        assert!(!s.record_failure(3));
        assert!(s.gave_up());
        s.reset();
        assert!(!s.gave_up());
    }
}
