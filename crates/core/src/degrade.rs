//! Graceful-degradation decisions for overloaded sessions.
//!
//! AdaInf's time allocation (§3.3.2) assumes the planned work fits the
//! SLO; under injected faults (request bursts, device stalls, memory
//! pressure — see `adainf-driftgen`'s `faultgen`) it does not, and a
//! scheduler that keeps executing doomed plans wastes GPU time making
//! every job late. This module holds the pure decision functions the
//! harness applies on impaired sessions:
//!
//! * **SLO-aware admission control** ([`admit_within_slo`]) — extend the
//!   serial-queue frame-shedding logic to overload: admit the request
//!   prefix whose batches — including a final *partial* batch, whose
//!   service time is proportionally shorter — still finish inside the
//!   SLO, and shed the rest up front, freeing their service time. The
//!   `fixed`/`per_batch` inputs are analytic by default; with
//!   [`AdaInfConfig::predicted_latency`](crate::AdaInfConfig) on, the
//!   harness feeds learned forecasts from [`crate::predict`] instead.
//! * **Inference-only fallback** ([`should_shed_retraining`]) — when the
//!   spare time a plan reserved for retraining has collapsed, drop the
//!   retraining slices (their samples stay in the pool for calmer
//!   sessions) rather than blow the inference SLO.
//! * **Bounded reload retry** ([`ReloadState`]) — under memory pressure,
//!   evicted parameters are re-fetched at most
//!   [`DegradePolicy::max_reload_retries`] consecutive times; after
//!   that the app serves in a degraded steady state instead of
//!   thrashing the PCIe bus every session.
//!
//! All functions are deterministic and allocation-free; the harness
//! calls them only on sessions with an active fault window, so runs
//! without faults are bit-identical to runs without the machinery.

use adainf_simcore::SimDuration;

/// Knobs of the degradation behaviour. `Copy` so it can ride inside the
/// harness run configuration's functional updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Shed requests that cannot finish within the SLO instead of
    /// running batches that are doomed to miss.
    pub admission_control: bool,
    /// Drop planned retraining slices when spare time collapses.
    pub inference_only_under_pressure: bool,
    /// Consecutive failed parameter reloads tolerated under memory
    /// pressure before the app gives up and serves degraded.
    pub max_reload_retries: u32,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            admission_control: true,
            inference_only_under_pressure: true,
            max_reload_retries: 3,
        }
    }
}

/// Outcome of admission control for one job: `admitted + shed`
/// reconstructs the arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// Requests admitted for service.
    pub admitted: u32,
    /// Requests shed up front (counted as SLO misses, but consuming no
    /// service time).
    pub shed: u32,
}

/// Admits the largest request prefix whose sequential batches all
/// finish within the SLO.
///
/// `fixed` is the latency already committed before the first batch
/// completes (queueing wait + retraining time + reload communication);
/// `per_batch` the service time of one *full* batch of `batch`
/// requests. Since batches complete sequentially, full batch `i`
/// finishes at `fixed + per_batch·(i+1)`: `⌊(slo − fixed) / per_batch⌋`
/// whole batches fit. A final partial batch of `k < batch` requests
/// takes only `per_batch·k/batch`, so after the whole batches the
/// remaining budget admits up to `⌊rem·batch/per_batch⌋` tail requests
/// — admission is *not* rounded down to whole batches.
///
/// Degenerate profiles: when `fixed` alone exceeds the SLO everything
/// is shed, and a zero `per_batch` (a profile whose service time
/// rounds to nothing) admits everything that survives the `fixed`
/// check instead of being silently clamped to 1 µs.
pub fn admit_within_slo(
    n: u32,
    batch: u32,
    per_batch: SimDuration,
    fixed: SimDuration,
    slo: SimDuration,
) -> Admission {
    if n == 0 {
        return Admission {
            admitted: 0,
            shed: 0,
        };
    }
    if fixed > slo {
        // Even a zero-service job finishes late: shed everything.
        return Admission {
            admitted: 0,
            shed: n,
        };
    }
    let budget_us = slo.saturating_sub(fixed).as_micros();
    let per_batch_us = per_batch.as_micros();
    if per_batch_us == 0 {
        // Zero service time per batch: every request fits.
        return Admission {
            admitted: n,
            shed: 0,
        };
    }
    let batch = batch.max(1) as u64;
    let whole_batches = budget_us / per_batch_us;
    let rem_us = budget_us - whole_batches * per_batch_us;
    // Partial tail: k requests of a final short batch fit when
    // per_batch·k/batch ≤ rem, i.e. k ≤ rem·batch/per_batch (and
    // k < batch by construction, since rem < per_batch).
    let tail = rem_us.saturating_mul(batch) / per_batch_us;
    let cap = whole_batches.saturating_mul(batch).saturating_add(tail);
    let admitted = (n as u64).min(cap) as u32;
    Admission {
        admitted,
        shed: n - admitted,
    }
}

/// True when running the planned retraining ahead of inference would
/// push the job past its SLO — the spare time the plan assumed has
/// collapsed, so the session falls back to inference-only serving.
pub fn should_shed_retraining(
    fixed: SimDuration,
    retrain: SimDuration,
    inference: SimDuration,
    slo: SimDuration,
) -> bool {
    retrain > SimDuration::ZERO && fixed + retrain + inference > slo
}

/// Per-application bounded-retry bookkeeping for reloading evicted
/// content under memory pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReloadState {
    attempts: u32,
    gave_up: bool,
}

impl ReloadState {
    /// True once the retry budget is exhausted: the app serves degraded
    /// until the pressure window ends.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// Consecutive failures so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Records one failed reload (the parameters were evicted again
    /// before the next session). Returns `false` exactly when *this*
    /// failure exhausts the budget of `max_retries` — the give-up
    /// transition edge, so callers counting give-ups count each one
    /// once. Failures recorded after the budget is already exhausted
    /// (callers normally gate on [`Self::gave_up`] and never do this)
    /// are not a new transition and return `true`; the degraded state
    /// itself is queried through [`Self::gave_up`], not the return
    /// value.
    pub fn record_failure(&mut self, max_retries: u32) -> bool {
        let already_gave_up = self.gave_up;
        self.attempts = self.attempts.saturating_add(1);
        if self.attempts > max_retries {
            self.gave_up = true;
        }
        !self.gave_up || already_gave_up
    }

    /// Records a reload that stuck (parameters still resident): the
    /// consecutive-failure count resets.
    pub fn record_success(&mut self) {
        *self = ReloadState::default();
    }

    /// Clears all state (pressure window closed).
    pub fn reset(&mut self) {
        *self = ReloadState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn admission_is_exact_at_batch_edges() {
        // 10 ms per batch of 16, 100 ms budget after 20 ms fixed →
        // 10 whole batches fit exactly → 160 requests, no tail room.
        let adm = admit_within_slo(200, 16, ms(10), ms(20), ms(120));
        assert_eq!(adm.admitted, 160);
        assert_eq!(adm.shed, 40);
        // One microsecond short: 9 whole batches (144) plus the partial
        // tail that fits the 9999 µs remainder — ⌊9999·16/10000⌋ = 15
        // requests at 625 µs each.
        let adm2 = admit_within_slo(
            200,
            16,
            ms(10),
            ms(20),
            ms(120) - SimDuration::from_micros(1),
        );
        assert_eq!(adm2.admitted, 159);
        assert_eq!(adm2.shed, 41);
    }

    #[test]
    fn admission_admits_the_partial_tail_that_fits() {
        // 10 ms per batch of 16, 95 ms budget → 9 whole batches (144)
        // plus ⌊5000·16/10000⌋ = 8 tail requests.
        let adm = admit_within_slo(200, 16, ms(10), ms(0), ms(95));
        assert_eq!(adm.admitted, 152);
        assert_eq!(adm.shed, 48);
        // The arrivals may end inside the tail: 150 arrivals all fit.
        let adm2 = admit_within_slo(150, 16, ms(10), ms(0), ms(95));
        assert_eq!(adm2.admitted, 150);
        assert_eq!(adm2.shed, 0);
        // A budget below one full batch still admits the prefix that
        // fits: ⌊2500·16/10000⌋ = 4 requests.
        let adm3 = admit_within_slo(200, 16, ms(10), ms(0), SimDuration::from_micros(2500));
        assert_eq!(adm3.admitted, 4);
    }

    #[test]
    fn admission_boundary_budgets_are_exact() {
        // Tail request boundary: k requests fit iff per_batch·k/batch ≤
        // rem. With per_batch 16 ms, batch 16 → 1 ms per request.
        let adm = admit_within_slo(40, 16, ms(16), ms(0), ms(19));
        assert_eq!(adm.admitted, 19, "exactly 1 whole batch + 3 tail");
        let adm2 = admit_within_slo(
            40,
            16,
            ms(16),
            ms(0),
            ms(19) - SimDuration::from_micros(1),
        );
        assert_eq!(adm2.admitted, 18, "1 µs short drops one tail request");
        // Fixed exactly at the SLO: zero budget, everything sheds.
        let adm3 = admit_within_slo(40, 16, ms(10), ms(400), ms(400));
        assert_eq!((adm3.admitted, adm3.shed), (0, 40));
    }

    #[test]
    fn zero_per_batch_profiles_admit_within_fixed() {
        // A degenerate profile whose batch service time rounds to zero:
        // everything the fixed check admits fits (no silent 1 µs clamp).
        let adm = admit_within_slo(200, 16, SimDuration::ZERO, ms(10), ms(400));
        assert_eq!((adm.admitted, adm.shed), (200, 0));
        // Zero budget left but also zero service time: still all admitted.
        let adm2 = admit_within_slo(200, 16, SimDuration::ZERO, ms(400), ms(400));
        assert_eq!((adm2.admitted, adm2.shed), (200, 0));
        // Fixed alone late: all shed, even with zero service time.
        let adm3 = admit_within_slo(
            200,
            16,
            SimDuration::ZERO,
            ms(400) + SimDuration::from_micros(1),
            ms(400),
        );
        assert_eq!((adm3.admitted, adm3.shed), (0, 200));
    }

    #[test]
    fn admission_passes_through_when_everything_fits() {
        let adm = admit_within_slo(40, 16, ms(10), ms(0), ms(400));
        assert_eq!(adm.admitted, 40);
        assert_eq!(adm.shed, 0);
    }

    #[test]
    fn admission_sheds_everything_when_fixed_exceeds_slo() {
        let adm = admit_within_slo(40, 16, ms(10), ms(500), ms(400));
        assert_eq!(adm.admitted, 0);
        assert_eq!(adm.shed, 40);
    }

    #[test]
    fn zero_arrivals_admit_nothing() {
        let adm = admit_within_slo(0, 16, ms(10), ms(0), ms(400));
        assert_eq!((adm.admitted, adm.shed), (0, 0));
    }

    #[test]
    fn retraining_sheds_only_when_it_breaks_the_slo() {
        assert!(!should_shed_retraining(ms(0), ms(100), ms(200), ms(400)));
        assert!(should_shed_retraining(ms(0), ms(300), ms(200), ms(400)));
        // No retraining planned → nothing to shed even when late.
        assert!(!should_shed_retraining(ms(300), ms(0), ms(200), ms(400)));
    }

    #[test]
    fn reload_retry_is_bounded_and_resets_on_success() {
        let mut s = ReloadState::default();
        assert!(s.record_failure(3));
        assert!(s.record_failure(3));
        s.record_success();
        assert_eq!(s.attempts(), 0);
        // Three tolerated failures, the fourth gives up.
        assert!(s.record_failure(3));
        assert!(s.record_failure(3));
        assert!(s.record_failure(3));
        assert!(!s.record_failure(3));
        assert!(s.gave_up());
        s.reset();
        assert!(!s.gave_up());
    }

    #[test]
    fn post_give_up_failures_are_not_new_transitions() {
        let mut s = ReloadState::default();
        // One tolerated failure within the budget of one retry...
        assert!(s.record_failure(1));
        // ...then the second failure exhausts it: the one `false`.
        assert!(!s.record_failure(1));
        assert!(s.gave_up());
        // Failures recorded after give-up stay given-up but are not the
        // exhausting transition — a caller counting give-ups by the
        // `false` return counts exactly one.
        for _ in 0..3 {
            assert!(s.record_failure(1));
            assert!(s.gave_up());
        }
        assert_eq!(s.attempts(), 5);
    }
}
