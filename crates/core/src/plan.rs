//! The scheduler interface shared by AdaInf and every baseline.
//!
//! The harness drives a scheduler through two hooks:
//!
//! * [`Scheduler::on_period_start`] — once per 50 s retraining period,
//!   with mutable access to the application runtimes (drift detection
//!   needs model features and pool samples). Returns a [`PeriodPlan`]:
//!   the retraining-inference DAGs for incremental schedulers, and/or
//!   bulk retraining tasks for period-level schedulers (Ekya) and
//!   cloud-offloading schedulers (Scrooge).
//! * [`Scheduler::on_session`] — once per 5 ms session, with the
//!   predicted per-application request counts. Returns one [`JobPlan`]
//!   per application job: GPU fraction, request batch size, per-model
//!   structure cuts and retraining slices.

use crate::predict::{LatencyFeatures, PredictedLatency};
use adainf_apps::AppRuntime;
use adainf_gpusim::{EvictionPolicyKind, ExecMode, GpuSpec};
use adainf_simcore::{SimDuration, SimTime};

/// One vertex of a retraining plan within a job: retrain `node` for
/// `time`, on `samples` samples in batches of `batch` for `epochs` epochs
/// (the "retraining setting" of §3.3.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetrainSlice {
    /// DAG node (model) to retrain.
    pub node: usize,
    /// GPU time allocated to the slice.
    pub time: SimDuration,
    /// Retraining samples to consume from the pool.
    pub samples: u32,
    /// Retraining batch size.
    pub batch: u32,
    /// Epochs over the slice's samples.
    pub epochs: u32,
}

/// Per-job allocation decided for one session.
#[derive(Clone, Debug)]
pub struct JobPlan {
    /// Application index.
    pub app: usize,
    /// Allocated GPU amount, in GPU units (≤ number of GPUs).
    pub gpu: f64,
    /// Request batch size.
    pub batch: u32,
    /// Structure cut per DAG node (full cut = full structure).
    pub cuts: Vec<usize>,
    /// Retraining slices to run before the inference tasks they feed.
    pub retrain: Vec<RetrainSlice>,
    /// Execution strategy (§3.4.1; `LayerGrouped` for AdaInf).
    pub exec: ExecMode,
    /// Eviction policy (§3.4.2; `Priority` for AdaInf).
    pub eviction: EvictionPolicyKind,
    /// Serial-queue semantics: the job runs on the application's
    /// continuous share and must wait for the app's previous job to
    /// finish (period-level schedulers like Ekya serve this way; AdaInf
    /// and Scrooge space-divide instead).
    pub serial: bool,
    /// Execute the inference on the host CPU instead of the GPU (§6:
    /// worthwhile for low request counts; the job then holds no GPU
    /// space and runs no retraining slices).
    pub cpu: bool,
}

/// A period-level bulk retraining task (Ekya retrains on the edge in one
/// go; Scrooge offloads to the cloud and pays the transfer).
#[derive(Clone, Copy, Debug)]
pub struct BulkRetrain {
    /// Application index.
    pub app: usize,
    /// DAG node to retrain.
    pub node: usize,
    /// GPU amount the retraining occupies on the edge server
    /// (0 for cloud retraining).
    pub gpu: f64,
    /// When the retrained model becomes available to inference.
    pub available_at: SimTime,
    /// Edge GPU occupancy ends at this time (equals `available_at` for
    /// edge retraining; earlier for cloud, which only pays transfer).
    pub busy_until: SimTime,
    /// Maximum pool samples this retraining consumes (0 = the whole
    /// pool). Period-level schedulers cap this to what fits their
    /// retraining window.
    pub sample_cap: u32,
}

/// The entry of a retraining-inference DAG: a model to retrain this
/// period and how hard drift hit it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RiEntry {
    /// DAG node index.
    pub node: usize,
    /// Impact degree `I_m − I'_m` (§3.2).
    pub impact: f64,
}

/// Per-application retraining decisions for the current period.
#[derive(Clone, Debug, Default)]
pub struct AppPeriodPlan {
    /// Models to retrain incrementally, with impact degrees (the
    /// retraining vertices of the RI-DAG, §3.2). Empty for schedulers
    /// that do not retrain incrementally.
    pub ri_entries: Vec<RiEntry>,
}

/// Everything a scheduler decides at a period boundary.
#[derive(Clone, Debug, Default)]
pub struct PeriodPlan {
    /// Per-application incremental-retraining DAGs.
    pub apps: Vec<AppPeriodPlan>,
    /// Bulk/cloud retraining tasks.
    pub bulk: Vec<BulkRetrain>,
    /// CPU time this planning step took (Table 1, "Periodical DAG
    /// update" / "Scheduling" columns). Runs on the CPU and does not
    /// block job execution (§5.1).
    pub overhead: SimDuration,
    /// Bytes shipped between edge and cloud by this plan (Scrooge).
    pub edge_cloud_bytes: u64,
}

/// Read-only context for session scheduling.
#[derive(Clone, Debug)]
pub struct SessionCtx<'a> {
    /// Session start time.
    pub now: SimTime,
    /// Predicted request count per application for this session
    /// ("predicted based on request rate as in \[10\]").
    pub predicted: &'a [u32],
    /// The edge server hardware.
    pub server: &'a GpuSpec,
    /// GPU amount not currently held by in-flight jobs or bulk retraining.
    pub free_gpus: f64,
    /// EWMA of recent job completion times (drives the session-pool
    /// division of §3.3.1). Maintained by the harness.
    pub avg_job_time: SimDuration,
    /// Remaining retraining-pool samples, per application per node.
    pub pool_remaining: &'a [Vec<usize>],
}

/// The scheduling interface implemented by AdaInf and all baselines.
pub trait Scheduler {
    /// Human-readable method name ("AdaInf", "Ekya", …).
    fn name(&self) -> String;

    /// Period-boundary hook (drift detection, DAG generation, bulk
    /// retraining plans). `now` is the period start.
    fn on_period_start(
        &mut self,
        apps: &mut [AppRuntime],
        server: &GpuSpec,
        now: SimTime,
    ) -> PeriodPlan;

    /// Session hook: one [`JobPlan`] per application with predicted
    /// requests > 0.
    fn on_session(&mut self, ctx: &SessionCtx<'_>) -> Vec<JobPlan>;

    /// `(hits, misses, evictions)` of the scheduler's decision cache, if
    /// it has one. Reported by the bench harness alongside wall-clock
    /// numbers.
    fn cache_stats(&self) -> (u64, u64, u64) {
        (0, 0, 0)
    }

    /// Wall-clock nanoseconds the scheduler spent in drift detection and
    /// retraining-order selection across the run, if it tracks them.
    fn drift_overhead_ns(&self) -> u128 {
        0
    }

    /// Wall-clock nanoseconds of drift work per period boundary, in
    /// period order, if tracked — the per-sample view behind the p99
    /// drift latency the harness reports.
    fn drift_period_ns(&self) -> &[u64] {
        &[]
    }

    /// Wall-clock nanoseconds the serving loop actually *stalled* on
    /// drift work — the drift critical path. For inline schedulers this
    /// equals [`Self::drift_overhead_ns`]; overlapped schedulers report
    /// only snapshot/spawn/sweep time plus join waits, excluding the
    /// background builds that ran concurrently with serving.
    fn drift_blocked_ns(&self) -> u128 {
        0
    }

    /// Largest resolved worker-thread count the scheduler's parallel
    /// fan-outs actually ran with (after the ambient
    /// `available_parallelism` fallback), or `None` if this scheduler
    /// has no worker pool at all. Bench rows record it so results
    /// document their host parallelism, and omit the column for
    /// pool-less schedulers instead of printing a misleading 0.
    fn worker_threads(&self) -> Option<usize> {
        None
    }

    /// Whether this scheduler runs an online latency predictor (see
    /// [`crate::predict`]). When `false` — the default — the harness
    /// builds no feature vectors and makes no predictor calls, so runs
    /// stay bit-identical to builds without the machinery.
    fn predictor_enabled(&self) -> bool {
        false
    }

    /// Forecasts the latency of one job shape from the scheduler's
    /// online model, or `None` when the scheduler has no predictor or
    /// the app's model is still warming up (callers then fall back to
    /// their analytic inputs).
    fn predict_latency(
        &self,
        app: usize,
        feats: &LatencyFeatures,
    ) -> Option<PredictedLatency> {
        let _ = (app, feats);
        None
    }

    /// Streams one completed job's observed latency split
    /// (`per_batch_us` service time of a full batch, `fixed_us`
    /// pre-batch overhead) into the scheduler's online model. No-op for
    /// schedulers without a predictor.
    fn observe_latency(
        &mut self,
        app: usize,
        feats: &LatencyFeatures,
        per_batch_us: f64,
        fixed_us: f64,
    ) {
        let _ = (app, feats, per_batch_us, fixed_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_types_construct() {
        let slice = RetrainSlice {
            node: 1,
            time: SimDuration::from_millis(100),
            samples: 64,
            batch: 32,
            epochs: 1,
        };
        let plan = JobPlan {
            app: 0,
            gpu: 0.25,
            batch: 16,
            cuts: vec![12, 17, 15],
            retrain: vec![slice],
            exec: ExecMode::LayerGrouped,
            eviction: EvictionPolicyKind::Priority,
            serial: false,
            cpu: false,
        };
        assert_eq!(plan.retrain[0].samples, 64);
        let period = PeriodPlan::default();
        assert!(period.apps.is_empty());
        assert_eq!(period.edge_cloud_bytes, 0);
    }
}
