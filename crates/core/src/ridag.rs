//! Retraining-inference DAG generation (§3.2, Fig 15).
//!
//! AdaInf augments an application's inference DAG with one retraining
//! vertex per drift-impacted model; the retraining vertex points to the
//! model's inference vertex, carries the model's impact degree, and is
//! absent for unimpacted models. During a session, a job's tasks execute
//! in the DAG order: a model's retraining slice (if any) immediately
//! precedes its inference task, which follows its upstream model's
//! inference.

use crate::drift_detect::DriftReport;
use crate::plan::RiEntry;
use adainf_apps::AppSpec;

/// One vertex of the retraining-inference DAG.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RiVertex {
    /// Retraining task of a model, with its impact degree.
    Retrain {
        /// DAG node (model) index.
        node: usize,
        /// Impact degree from drift detection.
        impact: f64,
    },
    /// Inference task of a model.
    Inference {
        /// DAG node (model) index.
        node: usize,
    },
}

/// The retraining-inference DAG of one application for one period.
#[derive(Clone, Debug, Default)]
pub struct RiDag {
    /// Vertices in execution order (retraining immediately before the
    /// same model's inference; upstream inference before downstream).
    pub order: Vec<RiVertex>,
    /// The retraining entries (node, impact), ascending node.
    pub entries: Vec<RiEntry>,
}

impl RiDag {
    /// Builds the DAG for `app` from a drift report. Models absent from
    /// the report get no retraining vertex.
    pub fn build(app: &AppSpec, report: &DriftReport) -> RiDag {
        let mut impact = vec![None; app.nodes.len()];
        for (node, deg) in &report.impacted {
            impact[*node] = Some(*deg);
        }
        let mut order = Vec::new();
        // Nodes are stored topologically, so iterating in index order
        // respects upstream-before-downstream.
        for (node, deg) in impact.iter().enumerate().take(app.nodes.len()) {
            if let Some(deg) = deg {
                order.push(RiVertex::Retrain { node, impact: *deg });
            }
            order.push(RiVertex::Inference { node });
        }
        let entries = report
            .impacted
            .iter()
            .map(|&(node, impact)| RiEntry { node, impact })
            .collect();
        RiDag { order, entries }
    }

    /// Whether `node` has a retraining vertex this period.
    pub fn retrains(&self, node: usize) -> bool {
        self.entries.iter().any(|e| e.node == node)
    }

    /// Sum of impact degrees (the denominator of the §3.3.2 time split).
    pub fn total_impact(&self) -> f64 {
        self.entries.iter().map(|e| e.impact).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adainf_apps::catalog;

    fn report(impacted: Vec<(usize, f64)>) -> DriftReport {
        DriftReport {
            impacted,
            final_s: 0.18,
            trace: Vec::new(),
        }
    }

    #[test]
    fn builds_fig15_shape() {
        // Vehicle (1) and person (2) impacted, detection (0) not — the
        // Fig 15 configuration.
        let app = catalog::video_surveillance(0);
        let dag = RiDag::build(&app, &report(vec![(1, 0.12), (2, 0.05)]));
        assert_eq!(
            dag.order,
            vec![
                RiVertex::Inference { node: 0 },
                RiVertex::Retrain { node: 1, impact: 0.12 },
                RiVertex::Inference { node: 1 },
                RiVertex::Retrain { node: 2, impact: 0.05 },
                RiVertex::Inference { node: 2 },
            ]
        );
        assert!(!dag.retrains(0));
        assert!(dag.retrains(1));
        assert!((dag.total_impact() - 0.17).abs() < 1e-12);
    }

    #[test]
    fn no_drift_means_inference_only() {
        let app = catalog::video_surveillance(0);
        let dag = RiDag::build(&app, &report(vec![]));
        assert_eq!(dag.order.len(), 3);
        assert!(dag.entries.is_empty());
        assert_eq!(dag.total_impact(), 0.0);
    }
}
