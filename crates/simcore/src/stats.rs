//! Online statistics, histograms and empirical CDFs.
//!
//! These are the primitives behind every reported metric: per-period
//! accuracy averages, finish-rate windows, latency breakdowns and the
//! reuse-time CDFs of Figs 12–13.

/// Numerically stable online mean/variance (Welford) with min/max.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 =
            self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && hi > lo, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Total number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts (excluding under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate quantile from the histogram (`q` in `\[0, 1\]`). Returns
    /// the lower edge of the bucket containing the quantile. Under/overflow
    /// mass clamps to the bounds.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return self.lo;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.lo + i as f64 * width;
            }
        }
        self.hi
    }
}

/// An exact empirical CDF built from raw samples.
///
/// Used for the content reuse-time distributions (Figs 12–13), where the
/// paper reports full CDFs. Samples are stored and sorted lazily.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF accumulator.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                // simlint: allow(no-unwrap-in-lib) — callers record finite metric samples; NaN here means a corrupted metric pipeline
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in CDF"));
            self.sorted = true;
        }
    }

    /// Exact quantile (`q` in `\[0, 1\]`); 0.0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = ((q.clamp(0.0, 1.0) * (self.samples.len() - 1) as f64).round())
            as usize;
        self.samples[idx]
    }

    /// Fraction of samples `<= x`; 0.0 when empty.
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|s| *s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// Emits `(value, cumulative_fraction)` points suitable for plotting,
    /// down-sampled to at most `max_points`.
    pub fn points(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || max_points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let step = (n / max_points).max(1);
        let mut out = Vec::with_capacity(n / step + 1);
        let mut i = step - 1;
        while i < n {
            out.push((self.samples[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|p| p.1) != Some(1.0) {
            out.push((self.samples[n - 1], 1.0));
        }
        out
    }

    /// Minimum sample (0.0 when empty).
    pub fn min(&mut self) -> f64 {
        self.quantile(0.0)
    }

    /// Maximum sample (0.0 when empty).
    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_var() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, x) in data.iter().enumerate() {
            all.add(*x);
            if i % 2 == 0 {
                a.add(*x)
            } else {
                b.add(*x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.add(i as f64 + 0.5);
        }
        assert_eq!(h.total(), 100);
        assert!((h.quantile(0.5) - 49.0).abs() <= 1.0);
        assert!((h.quantile(0.99) - 98.0).abs() <= 1.0);
        h.add(-5.0);
        h.add(1000.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn cdf_quantiles_and_points() {
        let mut c = Cdf::new();
        for i in (1..=100).rev() {
            c.add(i as f64);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 100.0);
        assert!((c.quantile(0.5) - 50.0).abs() <= 1.0);
        assert!((c.fraction_below(25.0) - 0.25).abs() < 0.02);
        let pts = c.points(10);
        assert!(pts.len() <= 11);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn cdf_empty_is_safe() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), 0.0);
        assert_eq!(c.fraction_below(1.0), 0.0);
        assert!(c.points(5).is_empty());
    }
}
