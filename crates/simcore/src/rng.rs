//! Deterministic, splittable pseudo-random numbers.
//!
//! Experiments must be replayable from a single seed, and sub-systems
//! (workload generator, drift generator, per-model initialisation, …) must
//! be able to draw numbers without perturbing each other's streams. We use
//! xoshiro256++ seeded through SplitMix64 — the textbook combination — and
//! expose [`Prng::split`] to derive independent child generators.
//!
//! The distribution samplers implemented here (normal via Box–Muller,
//! Poisson via Knuth/normal approximation, exponential via inversion) keep
//! us from needing `rand_distr` as a dependency.

/// xoshiro256++ PRNG with convenience distribution samplers.
///
/// ```
/// use adainf_simcore::Prng;
/// let mut a = Prng::new(42);
/// let mut b = Prng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());        // reproducible
/// let mut child = a.split(7);                    // independent stream
/// assert_ne!(child.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    gauss_spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s, gauss_spare: None }
    }

    /// Derives an independent child generator. The child stream is a
    /// deterministic function of the parent state and `label`, so two
    /// subsystems splitting with different labels never correlate, and the
    /// parent stream is not advanced.
    pub fn split(&self, label: u64) -> Prng {
        // Mix the full parent state with the label through SplitMix64.
        let mut acc = label ^ 0xA076_1D64_78BD_642F;
        for w in self.s {
            acc = splitmix64(&mut acc) ^ w.rotate_left(17);
        }
        // simlint: allow(prng-stream-discipline) — split() IS the sanctioned child-derivation the rule points everyone at; the mixed state is seed-derived, not ambient
        Prng::new(acc)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 significant bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn gauss(&mut self) -> f64 {
        if let Some(v) = self.gauss_spare.take() {
            return v;
        }
        // Avoid u == 0 so ln(u) is finite.
        let u = 1.0 - self.f64();
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gauss()
    }

    /// Poisson draw with rate `lambda >= 0`. Uses Knuth's method for small
    /// rates and a normal approximation above 64 (accurate to well under a
    /// percent there, and the workloads only care about aggregate rates).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 64.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.normal(lambda, lambda.sqrt());
            if x < 0.0 {
                0
            } else {
                x.round() as u64
            }
        }
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -(1.0 - self.f64()).ln() / rate
    }

    /// Samples an index from a discrete distribution given by non-negative
    /// weights. Returns `None` when all weights are zero or the slice is
    /// empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 && w.is_finite() {
                if x < *w {
                    return Some(i);
                }
                x -= *w;
            }
        }
        // Floating-point slop: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Perturbs a probability simplex in place: each component receives
    /// multiplicative log-normal noise of scale `sigma`, then the vector is
    /// re-normalised. This is the drift-step primitive of the data
    /// generator (a cheap stand-in for a Dirichlet random walk).
    pub fn perturb_simplex(&mut self, probs: &mut [f64], sigma: f64) {
        if probs.is_empty() {
            return;
        }
        for p in probs.iter_mut() {
            let noise = (self.gauss() * sigma).exp();
            *p = (*p).max(1e-9) * noise;
        }
        let total: f64 = probs.iter().sum();
        for p in probs.iter_mut() {
            *p /= total;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_differ_and_are_stable() {
        let root = Prng::new(7);
        let mut c1 = root.split(1);
        let mut c2 = root.split(2);
        let mut c1b = root.split(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
        let _ = c1b.next_u64();
        assert_eq!(c1.next_u64(), c1b.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Prng::new(1);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.below(17);
            assert!(y < 17);
        }
    }

    #[test]
    fn gauss_moments() {
        let mut r = Prng::new(3);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.gauss();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = Prng::new(4);
        for &lambda in &[0.5, 5.0, 200.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| r.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Prng::new(5);
        let w = [0.0, 3.0, 1.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn perturb_simplex_stays_normalised() {
        let mut r = Prng::new(6);
        let mut p = vec![0.25; 4];
        for _ in 0..100 {
            r.perturb_simplex(&mut p, 0.3);
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|x| *x > 0.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
