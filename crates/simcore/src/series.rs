//! Windowed time series.
//!
//! Two shapes of series recur throughout the evaluation:
//!
//! * [`PeriodSeries`] — one aggregate per 50 s retraining period
//!   (accuracy in Figs 4, 5, 7, 18, 22).
//! * [`WindowSeries`] — one aggregate per fixed window of arbitrary width
//!   (the 1 s finish-rate windows of Fig 19 and the per-second GPU
//!   utilization of Fig 21).

use crate::stats::OnlineStats;
use crate::time::{SimDuration, SimTime, PERIOD};

/// Ratio accumulator: `hits / total` per window (finish rates, accuracy).
#[derive(Clone, Copy, Debug, Default)]
pub struct Ratio {
    /// Numerator (e.g. requests that met their SLO).
    pub hits: f64,
    /// Denominator (e.g. all requests in the window).
    pub total: f64,
}

impl Ratio {
    /// The ratio value; `None` when the window saw no traffic.
    pub fn value(&self) -> Option<f64> {
        if self.total > 0.0 {
            Some(self.hits / self.total)
        } else {
            None
        }
    }
}

/// A series with one slot per fixed-width window of simulated time.
#[derive(Clone, Debug)]
pub struct WindowSeries {
    width: SimDuration,
    slots: Vec<Ratio>,
}

impl WindowSeries {
    /// Creates a series of `width`-wide windows.
    ///
    /// # Panics
    /// Panics on a zero-width window.
    pub fn new(width: SimDuration) -> Self {
        assert!(width.as_micros() > 0, "window width must be positive");
        WindowSeries {
            width,
            slots: Vec::new(),
        }
    }

    fn slot_mut(&mut self, at: SimTime) -> &mut Ratio {
        let idx = (at.as_micros() / self.width.as_micros()) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, Ratio::default());
        }
        &mut self.slots[idx]
    }

    /// Records `hits` successes out of `total` attempts at time `at`.
    pub fn record(&mut self, at: SimTime, hits: f64, total: f64) {
        let slot = self.slot_mut(at);
        slot.hits += hits;
        slot.total += total;
    }

    /// Per-window ratios, skipping empty windows (`None`).
    pub fn ratios(&self) -> Vec<Option<f64>> {
        self.slots.iter().map(|s| s.value()).collect()
    }

    /// Mean of the non-empty per-window ratios — this matches how the
    /// paper averages finish rate "across all time periods".
    pub fn mean_ratio(&self) -> f64 {
        let mut stats = OnlineStats::new();
        for s in &self.slots {
            if let Some(v) = s.value() {
                stats.add(v);
            }
        }
        stats.mean()
    }

    /// Overall ratio pooling every window (total hits / total attempts).
    pub fn pooled_ratio(&self) -> f64 {
        let (mut h, mut t) = (0.0, 0.0);
        for s in &self.slots {
            h += s.hits;
            t += s.total;
        }
        if t > 0.0 {
            h / t
        } else {
            0.0
        }
    }

    /// Number of windows touched so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A series with one ratio slot per retraining period (50 s).
#[derive(Clone, Debug)]
pub struct PeriodSeries {
    inner: WindowSeries,
}

impl Default for PeriodSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl PeriodSeries {
    /// Creates a per-period series.
    pub fn new() -> Self {
        PeriodSeries {
            inner: WindowSeries::new(PERIOD),
        }
    }

    /// Records `hits` out of `total` at time `at`.
    pub fn record(&mut self, at: SimTime, hits: f64, total: f64) {
        self.inner.record(at, hits, total);
    }

    /// Ratio of period `idx`, if it saw traffic.
    pub fn period(&self, idx: usize) -> Option<f64> {
        self.inner.ratios().get(idx).copied().flatten()
    }

    /// All per-period ratios.
    pub fn ratios(&self) -> Vec<Option<f64>> {
        self.inner.ratios()
    }

    /// Mean across non-empty periods.
    pub fn mean(&self) -> f64 {
        self.inner.mean_ratio()
    }

    /// Pooled ratio across all periods.
    pub fn pooled(&self) -> f64 {
        self.inner.pooled_ratio()
    }

    /// Number of periods touched.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_bucket_by_time() {
        let mut w = WindowSeries::new(SimDuration::from_secs(1));
        w.record(SimTime::from_millis(100), 1.0, 2.0);
        w.record(SimTime::from_millis(900), 1.0, 2.0);
        w.record(SimTime::from_millis(1500), 3.0, 3.0);
        let r = w.ratios();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], Some(0.5));
        assert_eq!(r[1], Some(1.0));
        assert!((w.mean_ratio() - 0.75).abs() < 1e-12);
        assert!((w.pooled_ratio() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut w = WindowSeries::new(SimDuration::from_secs(1));
        w.record(SimTime::from_secs(5), 1.0, 1.0);
        let r = w.ratios();
        assert_eq!(r.len(), 6);
        assert!(r[..5].iter().all(|x| x.is_none()));
        assert_eq!(w.mean_ratio(), 1.0);
    }

    #[test]
    fn mean_and_pooled_diverge_under_skewed_traffic() {
        // One tiny window at 100 % and one huge window at 0 %: the mean
        // of window ratios is 0.5, the pooled ratio is ~0.
        let mut w = WindowSeries::new(SimDuration::from_secs(1));
        w.record(SimTime::from_millis(100), 1.0, 1.0);
        w.record(SimTime::from_millis(1500), 0.0, 1000.0);
        assert!((w.mean_ratio() - 0.5).abs() < 1e-12);
        assert!(w.pooled_ratio() < 0.01);
    }

    #[test]
    fn period_series_uses_50s_periods() {
        let mut p = PeriodSeries::new();
        p.record(SimTime::from_secs(10), 8.0, 10.0);
        p.record(SimTime::from_secs(60), 9.0, 10.0);
        assert_eq!(p.period(0), Some(0.8));
        assert_eq!(p.period(1), Some(0.9));
        assert_eq!(p.period(2), None);
        assert_eq!(p.len(), 2);
    }
}
