//! # adainf-simcore
//!
//! Deterministic discrete-event simulation kernel used by every other crate
//! in the AdaInf workspace.
//!
//! The crate provides four building blocks:
//!
//! * [`time`] — a microsecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) plus the scheduling constants of the paper (50 s
//!   retraining periods, 5 ms sessions, 2 ms scheduling lead).
//! * [`rng`] — a small, seedable, splittable PRNG ([`rng::Prng`]) with the
//!   distributions the workloads need (uniform, normal, Poisson,
//!   exponential, simplex perturbation). Determinism matters: every
//!   experiment in the paper reproduction is replayable from a seed.
//! * [`event`] — a time-ordered event queue with stable FIFO tie-breaking
//!   and a minimal engine loop.
//! * [`stats`] / [`series`] — online statistics, histograms, empirical CDFs
//!   and windowed time series used by the metric pipeline (finish rate per
//!   1 s window, accuracy per 50 s period, GPU utilization per second).
//! * [`walltime`] — the single sanctioned host-clock boundary, used only
//!   for reporting scheduler overhead metrics (never simulated time).
//! * [`parallel`] — a deterministic scoped-thread fan-out (atomic
//!   work-index pool + per-slot `OnceLock` writes) for batches of
//!   independent jobs; results are bit-identical to a sequential loop.
//!
//! Nothing in this crate knows about GPUs, DNNs or schedulers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod parallel;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod walltime;

pub use event::{Engine, EventQueue};
pub use rng::Prng;
pub use series::{PeriodSeries, WindowSeries};
pub use stats::{Cdf, Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
