//! Time-ordered event queue and a minimal discrete-event engine.
//!
//! The detailed GPU-memory simulation (Figs 11–13) and the end-to-end
//! harness both advance simulated time by draining a queue of `(time,
//! event)` pairs. Ties are broken FIFO by an insertion sequence number so
//! that simulation runs are fully deterministic regardless of heap
//! internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry; ordered so the *earliest* time pops first, and FIFO
/// within a timestamp.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want a min-heap.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — scheduling into the
    /// past is always a logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

/// A tiny engine wrapper: drains an [`EventQueue`], handing each event to a
/// handler that may schedule follow-up events.
///
/// The handler receives the queue so it can schedule; returning `false`
/// stops the run early (used by bounded-horizon experiments).
pub struct Engine<E> {
    queue: EventQueue<E>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with an empty queue.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
        }
    }

    /// Access to the underlying queue for initial event seeding.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Runs until the queue is empty, `until` is passed, or the handler
    /// returns `false`. Returns the number of events processed.
    pub fn run<F>(&mut self, until: Option<SimTime>, mut handler: F) -> u64
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>) -> bool,
    {
        let mut processed = 0;
        while let Some(next) = self.queue.peek_time() {
            if let Some(limit) = until {
                if next > limit {
                    break;
                }
            }
            let Some((at, event)) = self.queue.pop() else { break };
            processed += 1;
            if !handler(at, event, &mut self.queue) {
                break;
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "b");
        q.schedule(SimTime::from_micros(5), "a");
        q.schedule(SimTime::from_micros(10), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), 1);
        q.pop();
        q.schedule(SimTime::from_millis(1), 2);
    }

    #[test]
    fn engine_cascades_and_respects_horizon() {
        let mut engine: Engine<u32> = Engine::new();
        engine.queue_mut().schedule(SimTime::ZERO, 0);
        // Each event n schedules n+1 one millisecond later, up to 10.
        let processed = engine.run(Some(SimTime::from_millis(4)), |at, n, q| {
            if n < 10 {
                q.schedule(at + SimDuration::from_millis(1), n + 1);
            }
            true
        });
        // Events at 0,1,2,3,4 ms processed; 5 ms is beyond the horizon.
        assert_eq!(processed, 5);
        assert_eq!(engine.now(), SimTime::from_millis(4));
    }

    #[test]
    fn engine_early_stop() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..10 {
            engine.queue_mut().schedule(SimTime::from_micros(i), i as u32);
        }
        let processed = engine.run(None, |_, n, _| n < 3);
        assert_eq!(processed, 4); // events 0,1,2 continue; 3 stops.
    }
}
