//! Simulated time.
//!
//! All simulated clocks in the workspace use microsecond resolution stored
//! in a `u64`. A microsecond tick is fine enough to express the paper's
//! smallest quantities (0.01 ms content-reuse latencies are stored as 10 µs)
//! while a `u64` lasts ~584 000 years of simulated time, so overflow is not
//! a practical concern.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// One microsecond, the base tick of the simulation.
pub const MICROSECOND: u64 = 1;
/// Microseconds per millisecond.
pub const MILLISECOND: u64 = 1_000;
/// Microseconds per second.
pub const SECOND: u64 = 1_000_000;

/// Length of one retraining period `T` (§3.1): 50 s.
pub const PERIOD: SimDuration = SimDuration::from_secs(50);
/// Length of one scheduling time session (§3.1): 5 ms.
pub const SESSION: SimDuration = SimDuration::from_millis(5);
/// Scheduling lead time (§3.1): at `τ` AdaInf schedules `[τ+2, τ+7) ms`.
pub const SCHED_LEAD: SimDuration = SimDuration::from_millis(2);

/// An instant on the simulated clock (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * SECOND)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MILLISECOND)
    }

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MILLISECOND as f64
    }

    /// This instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECOND as f64
    }

    /// Duration since an earlier instant; saturates to zero if `earlier`
    /// is actually later (callers treat clock skew as "no time passed").
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Index of the retraining period containing this instant.
    pub fn period_index(self) -> u64 {
        self.0 / PERIOD.0
    }

    /// Index of the scheduling session containing this instant.
    pub fn session_index(self) -> u64 {
        self.0 / SESSION.0
    }

    /// Start of the retraining period containing this instant.
    pub fn period_start(self) -> SimTime {
        SimTime(self.period_index() * PERIOD.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * SECOND)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MILLISECOND)
    }

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from fractional milliseconds, rounding to the
    /// nearest microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * MILLISECOND as f64).round() as u64)
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MILLISECOND as f64
    }

    /// This duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECOND as f64
    }

    /// Subtraction that saturates at zero instead of underflowing; used to
    /// compute "spare time" budgets (`SLO − inference time`) that may be
    /// negative when a job is overloaded.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_millis_f64(self.as_millis_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SECOND {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(PERIOD.as_secs_f64(), 50.0);
        assert_eq!(SESSION.as_millis_f64(), 5.0);
        assert_eq!(SCHED_LEAD.as_millis_f64(), 2.0);
    }

    #[test]
    fn period_and_session_indexing() {
        let t = SimTime::from_secs(125);
        assert_eq!(t.period_index(), 2);
        assert_eq!(t.period_start(), SimTime::from_secs(100));
        assert_eq!(SimTime::from_millis(14).session_index(), 2);
        assert_eq!(SimTime::ZERO.session_index(), 0);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_millis(5);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_millis(3));
        assert_eq!(SimTime::ZERO - b, SimTime::ZERO);
    }

    #[test]
    fn fractional_conversions_round_trip() {
        let d = SimDuration::from_millis_f64(0.015);
        assert_eq!(d.as_micros(), 15);
        assert!((d.as_millis_f64() - 0.015).abs() < 1e-12);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_humanizes() {
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.00s");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.50s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(400);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(200));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }
}
