//! Deterministic scoped-thread fan-out over an indexed job set.
//!
//! The atomic work-index pool pattern used by the harness's experiment
//! runner (`run_many`) generalises to any batch of independent jobs:
//! workers claim job indices from one shared atomic counter and each
//! writes its result into a dedicated `OnceLock` slot, so results return
//! in input order without a queue or a results lock. Extracted here so
//! the drift pipeline's per-`(app, node)` artifact builds can fan out
//! through the same machinery.
//!
//! Determinism: each job's result is a pure function of its index (the
//! caller guarantees jobs are independent), every index is claimed by
//! exactly one worker, and the output vector is assembled by index — so
//! the result is bit-identical to a sequential `(0..n).map(f)` loop
//! regardless of thread count or OS scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runs `work(index, state)` for every index in `0..n`, fanning out
/// across up to `threads` worker threads (0 = one per job, capped at the
/// available parallelism). Each worker owns one `make_state()` value for
/// its lifetime, so per-thread scratch buffers are built once per worker
/// rather than once per job. Results return in index order.
///
/// With `threads <= 1` or `n <= 1` the jobs run inline on the caller's
/// thread — same results, no spawn cost.
pub fn fan_out_indexed<T, S, M, F>(n: usize, threads: usize, make_state: M, work: F) -> Vec<T>
where
    T: Send + Sync,
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let max_threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n)
    } else {
        threads.min(n)
    };
    if max_threads <= 1 || n == 1 {
        let mut state = make_state();
        return (0..n).map(|i| work(i, &mut state)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for _ in 0..max_threads {
            scope.spawn(|| {
                let mut state = make_state();
                loop {
                    // Each index is claimed by exactly one worker, so the
                    // matching slot write can never collide.
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let result = work(idx, &mut state);
                    if slots[idx].set(result).is_err() {
                        unreachable!("slot {idx} claimed twice");
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        // simlint: allow(no-unwrap-in-lib) — the scoped threads above joined, so every slot was filled
        .map(|slot| slot.into_inner().expect("every job completed"))
        .collect()
}

/// [`fan_out_indexed`] without per-worker state.
pub fn fan_out<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    fan_out_indexed(n, threads, || (), |i, ()| work(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_in_order() {
        let seq: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(31)).collect();
        for threads in [0, 1, 2, 5, 64] {
            let par = fan_out(97, threads, |i| (i as u64).wrapping_mul(31));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_are_fine() {
        assert!(fan_out(0, 4, |i| i).is_empty());
        assert_eq!(fan_out(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Each worker's state counts the jobs it ran; the total over all
        // returned (job, state-before) pairs must cover every job once.
        let results = fan_out_indexed(
            50,
            4,
            || 0usize,
            |i, ran: &mut usize| {
                *ran += 1;
                i
            },
        );
        let mut sorted = results.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_eq!(results, (0..50).collect::<Vec<_>>(), "input order kept");
    }
}
