//! Deterministic scoped-thread fan-out over an indexed job set.
//!
//! The atomic work-index pool pattern used by the harness's experiment
//! runner (`run_many`) generalises to any batch of independent jobs:
//! workers claim job indices from one shared atomic counter and each
//! writes its result into a dedicated `OnceLock` slot, so results return
//! in input order without a queue or a results lock. Extracted here so
//! the drift pipeline's per-`(app, node)` artifact builds can fan out
//! through the same machinery. [`spawn_background`] is the detached
//! variant of the same discipline: the fan-out runs on real threads
//! while the caller keeps executing, and results are joined lazily
//! through an index-addressed [`BackgroundTasks`] handle whose ledger
//! (execute exactly once, join exactly once) is verified at retirement.
//!
//! Determinism: each job's result is a pure function of its index (the
//! caller guarantees jobs are independent), every index is claimed by
//! exactly one worker, and the output vector is assembled by index — so
//! the result is bit-identical to a sequential `(0..n).map(f)` loop
//! regardless of thread count or OS scheduling.
//!
//! This module is the **only** sanctioned home for thread spawning in
//! the workspace (simlint's `no-adhoc-threading` rule): every parallel
//! construct must route through one of the fan-outs here so the
//! claim/slot discipline — and the checking below — covers it.
//!
//! # Race checking
//!
//! Two layers close the loop on the discipline the comments above only
//! promise:
//!
//! * the `race-check` cargo feature instruments [`fan_out_indexed`] with
//!   a claim bitmap — one atomic claim counter per index — and asserts,
//!   after the scoped threads join, that every index was claimed exactly
//!   once and no slot was lost;
//! * [`fan_out_check`] is a seeded adversarial schedule-replay harness:
//!   it derives K deterministic claim-order permutations from a
//!   [`Prng`] seed, replays the job set under each permutation at every
//!   requested thread count (worker `w` deterministically executes
//!   permuted positions `w, w+W, w+2W, …`), and asserts each replay is
//!   bit-equal to the sequential loop. A job set that secretly depends
//!   on claim order or worker assignment fails loudly instead of
//!   passing because the OS happened to schedule benignly.

use crate::rng::Prng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The worker-thread count a fan-out over `n` jobs actually uses:
/// `threads` capped at the job count, with `threads == 0` falling back
/// to the host's available parallelism (the ambient default the
/// schedulers run under). Exposed so callers can *record* the resolved
/// count — bench rows document the host parallelism they ran under.
pub fn resolved_threads(n: usize, threads: usize) -> usize {
    if n == 0 {
        return 0;
    }
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n)
    } else {
        threads.min(n)
    }
}

/// One claim counter per job index, armed by the `race-check` feature:
/// [`fan_out_indexed`] bumps an index's counter when a worker claims it
/// and [`verify`](ClaimLedger::verify) asserts — after the scoped
/// threads joined — that every index was claimed exactly once. A double
/// claim (two workers running the same job) or a lost slot (an index no
/// worker ran) is a broken work-index pool, never a benign race: both
/// would silently desynchronise the parallel result from the
/// sequential loop. ([`fan_out_check`]'s forced replays verify a ledger
/// unconditionally — it is a checking harness; only the production
/// [`fan_out_indexed`] instrumentation is behind the feature.)
struct ClaimLedger {
    claims: Vec<AtomicUsize>,
}

impl ClaimLedger {
    fn new(n: usize) -> Self {
        ClaimLedger {
            claims: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Records that a worker claimed `idx`.
    fn claim(&self, idx: usize) {
        self.claims[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Asserts the exactly-once claim discipline. Called after the
    /// scoped threads joined, so all claim counters are quiescent.
    fn verify(&self, context: &str) {
        for (idx, c) in self.claims.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            assert!(
                n == 1,
                "race-check: {context}: index {idx} claimed {n} times (expected exactly once)"
            );
        }
    }
}

/// Runs `work(index, state)` for every index in `0..n`, fanning out
/// across up to `threads` worker threads (0 = one per job, capped at the
/// available parallelism). Each worker owns one `make_state()` value for
/// its lifetime, so per-thread scratch buffers are built once per worker
/// rather than once per job. Results return in index order.
///
/// With `threads <= 1` or `n <= 1` the jobs run inline on the caller's
/// thread — same results, no spawn cost.
pub fn fan_out_indexed<T, S, M, F>(n: usize, threads: usize, make_state: M, work: F) -> Vec<T>
where
    T: Send + Sync,
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let max_threads = resolved_threads(n, threads);
    if max_threads <= 1 || n == 1 {
        let mut state = make_state();
        return (0..n).map(|i| work(i, &mut state)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    #[cfg(feature = "race-check")]
    let ledger = ClaimLedger::new(n);

    std::thread::scope(|scope| {
        for _ in 0..max_threads {
            scope.spawn(|| {
                let mut state = make_state();
                loop {
                    // Each index is claimed by exactly one worker, so the
                    // matching slot write can never collide.
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    #[cfg(feature = "race-check")]
                    ledger.claim(idx);
                    let result = work(idx, &mut state);
                    if slots[idx].set(result).is_err() {
                        unreachable!("slot {idx} claimed twice");
                    }
                }
            });
        }
    });

    #[cfg(feature = "race-check")]
    ledger.verify("fan_out_indexed");

    slots
        .into_iter()
        // simlint: allow(no-unwrap-in-lib) — the scoped threads above joined, so every slot was filled
        .map(|slot| slot.into_inner().expect("every job completed"))
        .collect()
}

/// [`fan_out_indexed`] without per-worker state.
pub fn fan_out<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    fan_out_indexed(n, threads, || (), |i, ()| work(i))
}

/// Runs `work(index, job, state)` for every job in `jobs`, handing each
/// worker **ownership** of the jobs it executes. Results return in
/// input order, bit-identical to the sequential
/// `jobs.into_iter().enumerate().map(…)` loop at any thread count.
///
/// Ownership changes the distribution scheme: the indexed fan-outs
/// share their (borrowed) inputs and let workers claim indices
/// dynamically, but an owned job must be *moved* to exactly one worker,
/// and doing that through shared slots would need a lock per handoff
/// (the `Vec<Mutex<_>>` pattern this function replaces). Instead the
/// caller's thread deals jobs round-robin — worker `w` owns jobs
/// `w, w+W, w+2W, …` — so every handoff is a plain move before the
/// workers start, and each result still lands in its own index-addressed
/// `OnceLock` slot. The static deal gives up the atomic pool's dynamic
/// load balancing, which is irrelevant for the near-uniform job sets
/// this serves (per-`(app, node)` artifact builds of equal-sized
/// pools); determinism is untouched because results are a pure function
/// of the job, never of the worker or claim order.
pub fn fan_out_indexed_owned<J, T, S, M, F>(
    jobs: Vec<J>,
    threads: usize,
    make_state: M,
    work: F,
) -> Vec<T>
where
    J: Send,
    T: Send + Sync,
    M: Fn() -> S + Sync,
    F: Fn(usize, J, &mut S) -> T + Sync,
{
    let n = jobs.len();
    let max_threads = resolved_threads(n, threads);
    if max_threads <= 1 || n == 1 {
        let mut state = make_state();
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| work(i, job, &mut state))
            .collect();
    }

    // Deal the owned jobs round-robin into per-worker lists on the
    // caller's thread; each list moves into its worker wholesale.
    let mut deals: Vec<Vec<(usize, J)>> = (0..max_threads).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deals[i % max_threads].push((i, job));
    }
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for deal in deals {
            let slots = &slots;
            let make_state = &make_state;
            let work = &work;
            scope.spawn(move || {
                let mut state = make_state();
                for (idx, job) in deal {
                    let result = work(idx, job, &mut state);
                    if slots[idx].set(result).is_err() {
                        unreachable!("slot {idx} dealt twice");
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        // simlint: allow(no-unwrap-in-lib) — the scoped threads above joined and every index was dealt to exactly one worker
        .map(|slot| slot.into_inner().expect("every job completed"))
        .collect()
}

/// Per-slot completion state shared between a background stage's
/// workers and the caller holding its [`BackgroundTasks`] handle.
struct BackgroundShared<T> {
    /// `None` = pending, `Some` = completed and not yet joined. A
    /// joined result is moved out under the same lock, so pending and
    /// taken are distinguished by the handle's own `taken` bitmap.
    slots: Mutex<BackgroundSlots<T>>,
    /// Signalled on every slot completion and on worker exit.
    cv: Condvar,
}

struct BackgroundSlots<T> {
    results: Vec<Option<T>>,
    /// Workers still running. Guarded by the same lock as `results` so
    /// a join can distinguish "not yet" from "never coming": a worker
    /// that dies (panics) decrements this on unwind, and a waiter whose
    /// slot is empty with no producers left must fail loudly instead of
    /// sleeping forever.
    workers_alive: usize,
}

/// Decrements `workers_alive` (and wakes waiters) when a worker exits —
/// including by panic, so a caller blocked in [`BackgroundTasks::take`]
/// fails loudly instead of deadlocking on a slot that will never fill.
struct WorkerExitGuard<T>(Arc<BackgroundShared<T>>);

impl<T> Drop for WorkerExitGuard<T> {
    fn drop(&mut self) {
        // simlint: allow(no-unwrap-in-lib) — a poisoned lock here means another worker panicked mid-insert; propagating the panic is the correct outcome
        let mut slots = self.0.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.workers_alive -= 1;
        self.0.cv.notify_all();
    }
}

/// Handle to a detached background fan-out started by
/// [`spawn_background`]: the jobs run on real (non-scoped) worker
/// threads while the caller keeps executing, and each result is joined
/// lazily — [`take`](Self::take) one index, [`drain`](Self::drain) the
/// rest, then [`finish`](Self::finish) to retire the stage.
///
/// Determinism is the fan-out contract unchanged: jobs are dealt
/// round-robin exactly like [`fan_out_indexed_owned`], every result is
/// a pure function of its job, and results are index-addressed — so
/// *when* the caller joins a slot affects wall-clock only, never the
/// value. The ledger discipline is enforced unconditionally (not just
/// under `race-check`): workers record an execute-exactly-once claim
/// per index, the handle records a join-exactly-once bitmap, and
/// [`finish`](Self::finish) verifies both — a double join or an
/// abandoned slot is a broken pipeline, never a benign outcome.
pub struct BackgroundTasks<T> {
    shared: Arc<BackgroundShared<T>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Join-exactly-once bitmap, caller-side (the handle is `!Sync`-ish
    /// by use: joins happen on one thread).
    taken: Vec<bool>,
    /// Execute-exactly-once claims, worker-side.
    ledger: Arc<ClaimLedger>,
}

/// Launches `work(index, job, state)` for every job in `jobs` on up to
/// `threads` detached worker threads (0 = available parallelism) and
/// returns immediately with a [`BackgroundTasks`] handle; results are
/// joined lazily through it. At least one worker is spawned for a
/// non-empty job set even when the host reports a single core — the
/// point of a *background* stage is to overlap the caller, and on one
/// core the OS timeslices the overlap instead.
///
/// Jobs are owned and moved to their workers before any run (the
/// round-robin deal of [`fan_out_indexed_owned`]), so the handoff needs
/// no queue lock; `make_state` builds one per-worker scratch value, so
/// per-thread buffers warm once per worker, not once per job.
pub fn spawn_background<J, T, S, M, F>(
    jobs: Vec<J>,
    threads: usize,
    make_state: M,
    work: F,
) -> BackgroundTasks<T>
where
    J: Send + 'static,
    T: Send + 'static,
    M: Fn() -> S + Send + Sync + 'static,
    F: Fn(usize, J, &mut S) -> T + Send + Sync + 'static,
{
    let n = jobs.len();
    let shared = Arc::new(BackgroundShared {
        slots: Mutex::new(BackgroundSlots {
            results: (0..n).map(|_| None).collect(),
            workers_alive: 0,
        }),
        cv: Condvar::new(),
    });
    let ledger = Arc::new(ClaimLedger::new(n));
    if n == 0 {
        return BackgroundTasks {
            shared,
            workers: Vec::new(),
            taken: Vec::new(),
            ledger,
        };
    }

    let max_threads = resolved_threads(n, threads).max(1);
    let mut deals: Vec<Vec<(usize, J)>> = (0..max_threads).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deals[i % max_threads].push((i, job));
    }

    // simlint: allow(no-unwrap-in-lib) — the workers have not started yet, so the lock cannot be poisoned or contended
    shared.slots.lock().unwrap().workers_alive = max_threads;
    let ctx = Arc::new((make_state, work));
    let workers = deals
        .into_iter()
        .map(|deal| {
            let shared = Arc::clone(&shared);
            let ledger = Arc::clone(&ledger);
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || {
                let _exit = WorkerExitGuard(Arc::clone(&shared));
                let (make_state, work) = &*ctx;
                let mut state = make_state();
                for (idx, job) in deal {
                    ledger.claim(idx);
                    let result = work(idx, job, &mut state);
                    // simlint: allow(no-unwrap-in-lib) — poisoning requires a panic inside this short insert section; propagating it is correct
                    let mut slots = shared.slots.lock().unwrap();
                    debug_assert!(slots.results[idx].is_none(), "slot {idx} dealt twice");
                    slots.results[idx] = Some(result);
                    shared.cv.notify_all();
                }
            })
        })
        .collect();

    BackgroundTasks {
        shared,
        workers,
        taken: vec![false; n],
        ledger,
    }
}

impl<T> BackgroundTasks<T> {
    /// Number of jobs in the stage.
    pub fn len(&self) -> usize {
        self.taken.len()
    }

    /// Whether the stage was spawned over zero jobs.
    pub fn is_empty(&self) -> bool {
        self.taken.is_empty()
    }

    /// Joins slot `idx`, blocking until its worker has produced the
    /// result, and moves the value out.
    ///
    /// # Panics
    /// Panics if `idx` was already taken (the join-exactly-once ledger)
    /// or if every worker exited without producing it (a worker panic —
    /// surfaced here instead of deadlocking).
    pub fn take(&mut self, idx: usize) -> T {
        assert!(
            !self.taken[idx],
            "background ledger: slot {idx} joined twice"
        );
        // simlint: allow(no-unwrap-in-lib) — a poisoned lock means a worker panicked mid-insert; propagating is correct
        let mut slots = self.shared.slots.lock().unwrap();
        loop {
            if let Some(result) = slots.results[idx].take() {
                self.taken[idx] = true;
                return result;
            }
            assert!(
                slots.workers_alive > 0,
                "background ledger: slot {idx} abandoned (worker died before producing it)"
            );
            // simlint: allow(no-unwrap-in-lib) — same poisoning argument as the lock above
            slots = self.shared.cv.wait(slots).unwrap();
        }
    }

    /// Joins every not-yet-taken slot in index order and returns the
    /// `(index, result)` pairs — the backstop join at a stage boundary.
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::new();
        for idx in 0..self.taken.len() {
            if !self.taken[idx] {
                out.push((idx, self.take(idx)));
            }
        }
        out
    }

    /// Retires the stage: joins the worker threads and verifies the
    /// full ledger — every job executed exactly once (worker claims)
    /// and every result joined exactly once (caller bitmap).
    ///
    /// # Panics
    /// Panics if a worker panicked or any slot was never joined.
    pub fn finish(mut self) {
        for handle in self.workers.drain(..) {
            // simlint: allow(no-unwrap-in-lib) — a worker panic must propagate to the caller, not vanish
            handle.join().expect("background worker panicked");
        }
        self.ledger.verify("spawn_background");
        for (idx, taken) in self.taken.iter().enumerate() {
            assert!(
                taken,
                "background ledger: slot {idx} spawned but never joined"
            );
        }
    }
}

impl<T> Drop for BackgroundTasks<T> {
    /// Joins any still-running workers so a handle dropped on an error
    /// path never leaves detached threads mutating shared state. No
    /// ledger assertions here — [`finish`](Self::finish) is the checked
    /// retirement; double-panicking an unwind helps nobody.
    fn drop(&mut self) {
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Seeded adversarial schedule-replay check for a [`fan_out_indexed`]
/// job set. Returns the sequential reference result after asserting
/// that every adversarial execution reproduces it bit-for-bit:
///
/// 1. the production [`fan_out_indexed`] pool at every thread count in
///    `thread_counts` (racy claim order, whatever the OS does);
/// 2. for each of `permutations` seeds split from `seed`, a **forced**
///    deterministic schedule at every thread count: the claim order is
///    a seeded permutation of `0..n`, and worker `w` executes exactly
///    the permuted positions `w, w+W, w+2W, …` — so which worker runs
///    which job, and in what order, is fully pinned and replayable.
///    A claim ledger asserts every index ran exactly once per replay.
///
/// Together the two layers catch both failure classes of the pool
/// pattern: results that depend on *claim order* (shared mutable
/// capture, order-sensitive accumulation) and results that depend on
/// *worker identity* (per-worker state leaking between jobs).
///
/// `work` takes the job index plus the worker's state, exactly like
/// [`fan_out_indexed`]; `make_state` builds one state per worker per
/// replay. Panics (with the offending schedule named) on any mismatch.
pub fn fan_out_check<T, S, M, F>(
    seed: u64,
    permutations: usize,
    thread_counts: &[usize],
    n: usize,
    make_state: M,
    work: F,
) -> Vec<T>
where
    T: Send + Sync + Clone + PartialEq + std::fmt::Debug,
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    // Sequential reference: one state, ascending index order.
    let mut state = make_state();
    let reference: Vec<T> = (0..n).map(|i| work(i, &mut state)).collect();

    for &threads in thread_counts {
        // Layer 1: the production pool, OS-scheduled claim order.
        let pooled = fan_out_indexed(n, threads, &make_state, &work);
        assert_eq!(
            pooled, reference,
            "fan_out_check(seed {seed}): production pool at {threads} thread(s) \
             diverged from the sequential loop"
        );
    }

    // simlint: allow(prng-stream-discipline) — fan_out_check is a test harness entry point: its `seed` parameter is the root of the replay-permutation stream
    let root = Prng::new(seed);
    for p in 0..permutations {
        // A deterministic claim-order permutation per replay, from a
        // stably-keyed child stream so replays never correlate.
        let mut perm: Vec<usize> = (0..n).collect();
        root.split(p as u64).shuffle(&mut perm);

        for &threads in thread_counts {
            let replayed = replay_schedule(&perm, threads.max(1), &make_state, &work);
            assert_eq!(
                replayed, reference,
                "fan_out_check(seed {seed}): forced schedule (permutation {p}, \
                 {threads} thread(s)) diverged from the sequential loop"
            );
        }
    }
    reference
}

/// Executes one forced schedule: worker `w` of `threads` runs the
/// permuted positions `w, w+threads, …` of `perm`, in that order, with
/// its own state — a fully deterministic claim order and worker
/// assignment. Verifies the exactly-once claim ledger before returning
/// the index-ordered results.
fn replay_schedule<T, S, M, F>(perm: &[usize], threads: usize, make_state: &M, work: &F) -> Vec<T>
where
    T: Send + Sync,
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let n = perm.len();
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    let ledger = ClaimLedger::new(n);

    std::thread::scope(|scope| {
        for w in 0..threads.min(n.max(1)) {
            let slots = &slots;
            let ledger = &ledger;
            scope.spawn(move || {
                let mut state = make_state();
                let mut pos = w;
                while pos < n {
                    let idx = perm[pos];
                    ledger.claim(idx);
                    let result = work(idx, &mut state);
                    if slots[idx].set(result).is_err() {
                        unreachable!("forced schedule dealt index {idx} twice");
                    }
                    pos += threads;
                }
            });
        }
    });

    ledger.verify("replay_schedule");
    slots
        .into_iter()
        // simlint: allow(no-unwrap-in-lib) — the ledger above verified every index was claimed exactly once
        .map(|slot| slot.into_inner().expect("every position executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_in_order() {
        let seq: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(31)).collect();
        for threads in [0, 1, 2, 5, 64] {
            let par = fan_out(97, threads, |i| (i as u64).wrapping_mul(31));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_are_fine() {
        assert!(fan_out(0, 4, |i| i).is_empty());
        assert_eq!(fan_out(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Each worker's state counts the jobs it ran; the total over all
        // returned (job, state-before) pairs must cover every job once.
        let results = fan_out_indexed(
            50,
            4,
            || 0usize,
            |i, ran: &mut usize| {
                *ran += 1;
                i
            },
        );
        let mut sorted = results.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_eq!(results, (0..50).collect::<Vec<_>>(), "input order kept");
    }

    #[test]
    fn resolved_threads_caps_and_falls_back() {
        assert_eq!(resolved_threads(0, 8), 0);
        assert_eq!(resolved_threads(5, 8), 5);
        assert_eq!(resolved_threads(8, 3), 3);
        let ambient = resolved_threads(1024, 0);
        assert!((1..=1024).contains(&ambient));
    }

    #[test]
    fn owned_fan_out_moves_each_job_exactly_once() {
        // Jobs are owned Strings; results carry the job back out, so the
        // order + content check proves every job was moved to exactly
        // one worker and its result landed in its own slot.
        for threads in [0, 1, 2, 3, 7, 64] {
            let jobs: Vec<String> = (0..41).map(|i| format!("job-{i}")).collect();
            let out = fan_out_indexed_owned(jobs, threads, || 0usize, |i, job, ran| {
                *ran += 1;
                (i, job)
            });
            for (i, (idx, job)) in out.iter().enumerate() {
                assert_eq!(*idx, i, "threads={threads}");
                assert_eq!(job, &format!("job-{i}"), "threads={threads}");
            }
        }
    }

    #[test]
    fn owned_fan_out_empty_and_single() {
        assert!(fan_out_indexed_owned(Vec::<u8>::new(), 4, || (), |i, j, ()| (i, j)).is_empty());
        assert_eq!(
            fan_out_indexed_owned(vec![9u8], 4, || (), |i, j, ()| (i, j)),
            vec![(0, 9u8)]
        );
    }

    #[test]
    fn fan_out_check_accepts_pure_jobs() {
        let reference = fan_out_check(
            42,
            3,
            &[1, 2, 4, 8],
            37,
            || 0u64,
            |i, acc: &mut u64| {
                // Worker-local state mutation is fine: the result only
                // depends on the index.
                *acc = acc.wrapping_add(1);
                (i as u64).wrapping_mul(0x9E37_79B9)
            },
        );
        assert_eq!(reference.len(), 37);
        assert_eq!(reference[3], 3u64.wrapping_mul(0x9E37_79B9));
    }

    #[test]
    #[should_panic(expected = "diverged from the sequential loop")]
    fn fan_out_check_rejects_state_dependent_jobs() {
        // A job whose result depends on how many jobs its worker ran
        // before it — exactly the per-worker-state leak the forced
        // schedules are built to expose.
        fan_out_check(
            7,
            2,
            &[2, 4],
            16,
            || 0usize,
            |i, ran: &mut usize| {
                *ran += 1;
                i + *ran
            },
        );
    }

    #[test]
    fn background_matches_sequential_at_any_thread_count() {
        let seq: Vec<u64> = (0..53).map(|i| (i as u64).wrapping_mul(97) ^ 5).collect();
        for threads in [0, 1, 2, 4, 8] {
            let jobs: Vec<u64> = (0..53).collect();
            let mut stage = spawn_background(jobs, threads, || (), |_, j, ()| {
                j.wrapping_mul(97) ^ 5
            });
            let joined: Vec<u64> = (0..53).map(|i| stage.take(i)).collect();
            assert_eq!(joined, seq, "threads={threads}");
            stage.finish();
        }
    }

    #[test]
    fn background_join_order_is_immaterial() {
        // Adversarial replay over the handoff: join the slots in seeded
        // permuted orders, at several thread counts, and assert the
        // joined values always equal the sequential reference — the
        // background analogue of fan_out_check's forced schedules.
        let n = 37;
        let reference: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let root = Prng::new(1213);
        for p in 0..4u64 {
            let mut order: Vec<usize> = (0..n).collect();
            root.split(p).shuffle(&mut order);
            for threads in [1, 2, 4, 8] {
                let jobs: Vec<u64> = (0..n as u64).collect();
                let mut stage =
                    spawn_background(jobs, threads, || (), |_, j, ()| {
                        j.wrapping_mul(0x9E37_79B9)
                    });
                let mut joined = vec![0u64; n];
                for &idx in &order {
                    joined[idx] = stage.take(idx);
                }
                stage.finish();
                assert_eq!(joined, reference, "permutation {p}, threads={threads}");
            }
        }
    }

    #[test]
    fn background_drain_collects_the_rest_in_index_order() {
        let mut stage = spawn_background((0..9u64).collect(), 3, || (), |_, j, ()| j * 3);
        assert_eq!(stage.len(), 9);
        assert_eq!(stage.take(4), 12);
        let rest = stage.drain();
        let idxs: Vec<usize> = rest.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3, 5, 6, 7, 8]);
        for (i, v) in &rest {
            assert_eq!(*v, *i as u64 * 3);
        }
        stage.finish();
    }

    #[test]
    fn background_empty_stage_retires_cleanly() {
        let mut stage = spawn_background(Vec::<u8>::new(), 4, || (), |i, _, ()| i);
        assert!(stage.is_empty());
        assert!(stage.drain().is_empty());
        stage.finish();
    }

    #[test]
    fn background_worker_state_warms_once_per_worker() {
        // Results only depend on the job, even though each worker's
        // scratch accumulates across the jobs it was dealt.
        let mut stage = spawn_background(
            (0..24u64).collect(),
            4,
            || 0u64,
            |_, j, ran: &mut u64| {
                *ran += 1;
                j + 100
            },
        );
        let out: Vec<u64> = (0..24).map(|i| stage.take(i)).collect();
        stage.finish();
        assert_eq!(out, (100..124).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn background_double_join_panics() {
        let mut stage = spawn_background(vec![1u8, 2, 3], 2, || (), |_, j, ()| j);
        let _ = stage.take(1);
        let _ = stage.take(1);
    }

    #[test]
    #[should_panic(expected = "never joined")]
    fn background_abandoned_slot_fails_finish() {
        let mut stage = spawn_background(vec![1u8, 2, 3], 2, || (), |_, j, ()| j);
        let _ = stage.take(0);
        stage.finish();
    }

    #[test]
    fn forced_schedules_cover_every_index_once() {
        // Direct replay_schedule exercise: an adversarial permutation
        // still executes each index exactly once (the ledger inside
        // would panic otherwise) and returns in index order.
        let perm: Vec<usize> = (0..20).rev().collect();
        let out = replay_schedule(&perm, 3, &|| (), &|i, ()| i * 2);
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }
}
