//! Host wall-clock measurement — the **only** module in the simulation
//! crates allowed to read the real clock.
//!
//! The paper reports scheduler decision *overheads* (Table 1) as
//! measured wall time, so the harness and the schedulers need a
//! stopwatch. But wall-clock readings must never leak into simulated
//! behaviour: a simulation that branches on host timing is not
//! replayable, and every golden test in this workspace would become
//! flaky. Concentrating the capability here makes the boundary
//! auditable — `simlint`'s `no-wall-clock` rule bans `Instant`/
//! `SystemTime` everywhere else (the bench harness and the vendored
//! criterion stub are the only other allowlisted modules), so "who can
//! see the host clock" is a one-line `simlint.toml` entry, not a code
//! review question.
//!
//! By construction a [`WallTimer`] can only produce *elapsed* spans,
//! never absolute times, and nothing in this module converts a reading
//! back into a [`crate::SimTime`] — overhead metrics stay milliseconds
//! of host time, reported next to (never added to) the simulated clock.

use std::time::Instant;

/// A started stopwatch over the host clock.
///
/// ```
/// use adainf_simcore::walltime::WallTimer;
/// let timer = WallTimer::start();
/// let ms = timer.elapsed_ms();
/// assert!(ms >= 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WallTimer {
    started: Instant,
}

impl WallTimer {
    /// Starts a stopwatch.
    pub fn start() -> Self {
        WallTimer { started: Instant::now() }
    }

    /// Host milliseconds since [`WallTimer::start`]. For overhead
    /// *metrics* only — never feed this into simulated time.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Host seconds since [`WallTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Host nanoseconds since [`WallTimer::start`], for accumulating
    /// many short spans without float rounding.
    pub fn elapsed_nanos(&self) -> u128 {
        self.started.elapsed().as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_and_non_negative() {
        let t = WallTimer::start();
        let a = t.elapsed_ms();
        let b = t.elapsed_ms();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert!((t.elapsed_secs() * 1e3 - t.elapsed_ms()).abs() < 1e3);
    }
}
